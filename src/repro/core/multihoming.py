"""Neutralizer selection for multi-homed sites (§3.5).

A multi-homed site publishes one neutralizer anycast address per provider in
its DNS records; *sources* then decide which provider a given flow enters
through, so "the ISP-level path of the site's incoming and outgoing traffic is
controlled by how other sources pick the neutralizers".  The selectors here
are the source-side policies experiment E10 sweeps: deterministic first
choice, round robin, weighted split, and a latency/health-aware policy fed by
observed setup RTTs and failures (the paper's "two hosts may always use
trial-and-error to find a path that's working for them").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..exceptions import NeutralizerError
from ..packet.addresses import IPv4Address


class NeutralizerSelector:
    """Interface: choose one neutralizer address out of the published set."""

    def select(self, candidates: Sequence[IPv4Address]) -> IPv4Address:
        raise NotImplementedError

    def record_outcome(self, address: IPv4Address, *, rtt: Optional[float] = None,
                       failed: bool = False) -> None:
        """Feed back an observation (default: ignored)."""


class FirstChoiceSelector(NeutralizerSelector):
    """Always pick the first published address (the single-homed common case)."""

    def select(self, candidates: Sequence[IPv4Address]) -> IPv4Address:
        if not candidates:
            raise NeutralizerError("no neutralizer addresses to choose from")
        return candidates[0]


class RoundRobinSelector(NeutralizerSelector):
    """Rotate through the published addresses flow by flow."""

    def __init__(self) -> None:
        self._counter = 0

    def select(self, candidates: Sequence[IPv4Address]) -> IPv4Address:
        if not candidates:
            raise NeutralizerError("no neutralizer addresses to choose from")
        choice = candidates[self._counter % len(candidates)]
        self._counter += 1
        return choice


class WeightedSelector(NeutralizerSelector):
    """Split flows across providers according to configured weights.

    Unknown addresses get weight 1.  This models a site steering inbound load
    (e.g. 80/20) purely through what sources are told to prefer.
    """

    def __init__(self, weights: Dict[IPv4Address, float],
                 rng: Optional[RandomSource] = None) -> None:
        if any(weight < 0 for weight in weights.values()):
            raise NeutralizerError("selector weights cannot be negative")
        self._weights = dict(weights)
        self._rng = rng or DEFAULT_SOURCE

    def select(self, candidates: Sequence[IPv4Address]) -> IPv4Address:
        if not candidates:
            raise NeutralizerError("no neutralizer addresses to choose from")
        weights = [max(self._weights.get(address, 1.0), 0.0) for address in candidates]
        total = sum(weights)
        if total <= 0:
            return candidates[0]
        draw = self._rng.random_float() * total
        cumulative = 0.0
        for address, weight in zip(candidates, weights):
            cumulative += weight
            if draw <= cumulative:
                return address
        return candidates[-1]


@dataclass
class _PathObservation:
    rtt_sum: float = 0.0
    rtt_count: int = 0
    failures: int = 0

    @property
    def mean_rtt(self) -> float:
        if self.rtt_count == 0:
            return float("inf")
        return self.rtt_sum / self.rtt_count


class AdaptiveSelector(NeutralizerSelector):
    """Trial-and-error selection driven by observed RTTs and failures.

    Unprobed candidates are always tried first; among probed candidates the
    one with the lowest mean RTT wins, and candidates with recent failures are
    penalized.  This implements the paper's pragmatic "find a path that's
    working for them" remark and the failover story when one provider's
    neutralizer goes dark.
    """

    def __init__(self, failure_penalty_seconds: float = 1.0) -> None:
        self._observations: Dict[IPv4Address, _PathObservation] = {}
        self.failure_penalty_seconds = failure_penalty_seconds

    def select(self, candidates: Sequence[IPv4Address]) -> IPv4Address:
        if not candidates:
            raise NeutralizerError("no neutralizer addresses to choose from")
        unprobed = [c for c in candidates if c not in self._observations]
        if unprobed:
            return unprobed[0]
        return min(candidates, key=self._score)

    def _score(self, address: IPv4Address) -> float:
        observation = self._observations[address]
        return observation.mean_rtt + observation.failures * self.failure_penalty_seconds

    def record_outcome(self, address: IPv4Address, *, rtt: Optional[float] = None,
                       failed: bool = False) -> None:
        observation = self._observations.setdefault(address, _PathObservation())
        if rtt is not None:
            observation.rtt_sum += rtt
            observation.rtt_count += 1
        if failed:
            observation.failures += 1

    def mean_rtt(self, address: IPv4Address) -> float:
        """Observed mean RTT toward one neutralizer (inf when never probed)."""
        if address not in self._observations:
            return float("inf")
        return self._observations[address].mean_rtt


@dataclass
class MultihomedSite:
    """A site's published multihoming configuration (what goes into DNS)."""

    name: str
    address: IPv4Address
    #: Neutralizer anycast addresses, one per provider, in preference order.
    neutralizer_addresses: List[IPv4Address] = field(default_factory=list)

    def add_provider(self, neutralizer_address: IPv4Address) -> None:
        """Publish an additional provider's neutralizer address."""
        if neutralizer_address not in self.neutralizer_addresses:
            self.neutralizer_addresses.append(neutralizer_address)

    @property
    def is_multihomed(self) -> bool:
        """``True`` when more than one provider is published."""
        return len(self.neutralizer_addresses) > 1
