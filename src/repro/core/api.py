"""High-level facade for the most common deployment patterns.

Examples and experiments repeat the same few moves: deploy the neutralizer
service for a neutral ISP, attach server stacks to its customers, attach
client stacks to outside hosts, publish the customers' bootstrap records, and
wire clients to destinations.  :class:`NetNeutralityDeployment` bundles those
moves behind a small API so a quickstart fits on one screen while the
underlying pieces stay independently usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..crypto.randomness import DEFAULT_SOURCE, DeterministicRandom, RandomSource
from ..dns.records import BootstrapInfo
from ..dns.zone import Zone
from ..e2e.session import STRONG_KEY_BITS, generate_host_keypair
from ..exceptions import NeutralizerError
from ..netsim.node import Host
from ..netsim.topology import Topology
from ..packet.addresses import IPv4Address
from .anycast import NeutralizerDeployment, deploy_neutralizer_service
from .client import DestinationInfo, NeutralizedClientStack
from .multihoming import NeutralizerSelector
from .offload import OffloadHelper, register_helper
from .server import NeutralizedServerStack


@dataclass
class NetNeutralityDeployment:
    """A deployed neutralizer service plus the host stacks using it."""

    topology: Topology
    deployment: NeutralizerDeployment
    zone: Zone = field(default_factory=Zone)
    rng: RandomSource = field(default_factory=lambda: DeterministicRandom(2006))
    backend: Optional[str] = None
    use_e2e: bool = True
    servers: Dict[str, NeutralizedServerStack] = field(default_factory=dict)
    clients: Dict[str, NeutralizedClientStack] = field(default_factory=dict)
    helpers: Dict[str, OffloadHelper] = field(default_factory=dict)

    # -- server side -----------------------------------------------------------------

    def attach_server(
        self, host: Host, *, dns_name: Optional[str] = None, key_bits: int = STRONG_KEY_BITS
    ) -> NeutralizedServerStack:
        """Attach a server stack to a customer host and publish its records."""
        if not self.deployment.domain.is_customer_address(host.address):
            raise NeutralizerError(
                f"{host.name} ({host.address}) is not a customer of "
                f"{self.deployment.isp_name} and cannot sit behind its neutralizer"
            )
        keypair = generate_host_keypair(key_bits, self.rng)
        server = NeutralizedServerStack(
            host,
            keypair,
            self.deployment.anycast_address,
            rng=self.rng,
            backend=self.backend,
        )
        self.servers[host.name] = server
        name = dns_name or f"{host.name}.example"
        self.zone.register_host(
            name,
            host.address,
            public_key=keypair.public,
            neutralizer_addresses=[self.deployment.anycast_address],
        )
        return server

    def attach_offload_helper(self, host: Host) -> OffloadHelper:
        """Volunteer a customer host to perform offloaded RSA encryptions."""
        helper = register_helper(self.deployment.domain, host, rng=self.rng)
        self.helpers[host.name] = helper
        return helper

    # -- client side ------------------------------------------------------------------------

    def attach_client(
        self,
        host: Host,
        *,
        selector: Optional[NeutralizerSelector] = None,
        one_time_key_bits: int = 512,
        publish_key: bool = False,
        dns_name: Optional[str] = None,
    ) -> NeutralizedClientStack:
        """Attach a client stack to an outside host.

        ``publish_key=True`` additionally generates and publishes the host's
        own key pair so that customers inside the neutral domain can initiate
        reverse-direction sessions to it (§3.3).
        """
        host_keypair = None
        if publish_key:
            host_keypair = generate_host_keypair(STRONG_KEY_BITS, self.rng)
            self.zone.register_host(
                dns_name or f"{host.name}.example", host.address, public_key=host_keypair.public
            )
        client = NeutralizedClientStack(
            host,
            rng=self.rng,
            backend=self.backend,
            use_e2e=self.use_e2e,
            selector=selector,
            one_time_key_bits=one_time_key_bits,
            host_keypair=host_keypair,
        )
        self.clients[host.name] = client
        return client

    # -- wiring -------------------------------------------------------------------------------

    def bootstrap_client(self, client_host_name: str, server_host_name: str) -> DestinationInfo:
        """Register a server as a neutralized destination at a client (no DNS traffic).

        This is the in-process equivalent of the DNS bootstrap: experiments
        that are not about DNS latency use it to skip the lookup round trip.
        The DNS-path equivalent is exercised by the dedicated bootstrap
        example and tests.
        """
        client = self.clients[client_host_name]
        server = self.servers[server_host_name]
        info = DestinationInfo(
            address=server.host.address,
            neutralizer_addresses=[self.deployment.anycast_address],
            public_key=server.public_key if self.use_e2e else None,
            name=server_host_name,
        )
        client.register_destination(info)
        return info

    def bootstrap_from_zone(self, client_host_name: str, dns_name: str) -> DestinationInfo:
        """Register a destination at a client from the locally held zone data."""
        client = self.clients[client_host_name]
        records = self.zone.lookup(dns_name)
        info = BootstrapInfo.from_records(dns_name, records)
        return client.register_from_bootstrap(info)

    # -- reporting ---------------------------------------------------------------------------------

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Aggregate counters from the neutralizers and every attached stack."""
        report: Dict[str, Dict[str, int]] = {
            "neutralizers": self.deployment.total_counters()
        }
        for name, client in self.clients.items():
            report[f"client:{name}"] = dict(client.counters)
        for name, server in self.servers.items():
            report[f"server:{name}"] = dict(server.counters)
        for name, helper in self.helpers.items():
            report[f"helper:{name}"] = dict(helper.counters)
        return report


def neutralize_isp(
    topology: Topology,
    isp_name: str,
    anycast_address: IPv4Address,
    *,
    rng: Optional[RandomSource] = None,
    backend: Optional[str] = None,
    use_e2e: bool = True,
    verify_tags: bool = True,
    master_key_lifetime_seconds: Optional[float] = None,
) -> NetNeutralityDeployment:
    """Deploy the neutralizer service for ``isp_name`` and return the facade.

    When no ``backend`` is requested the accelerated AES backend is used if
    available, so simulation-scale experiments are not dominated by the
    pure-Python reference cipher.  Pass ``backend="pure"`` to force the
    reference implementation.
    """
    from ..crypto.backend import fast_backend_available

    if backend is None and fast_backend_available():
        backend = "fast"
    random_source = rng or DEFAULT_SOURCE
    deployment = deploy_neutralizer_service(
        topology,
        isp_name,
        anycast_address,
        rng=random_source,
        backend=backend,
        verify_tags=verify_tags,
        master_key_lifetime_seconds=master_key_lifetime_seconds,
    )
    return NetNeutralityDeployment(
        topology=topology,
        deployment=deployment,
        rng=random_source,
        backend=backend,
        use_e2e=use_e2e,
    )
