"""Master-key management for a neutralizer domain.

Every neutralizer of a domain shares the master key ``KM`` so that "any
neutralizer can decrypt the destination address and forward the packet"
(§3.2) — this is what preserves the stateless, fault-tolerant character of IP
routing under anycast.  The paper assumes the master key expires periodically
("If we assume a neutralizer's master key lasts for an hour..."), bounding
both how long a derived ``Ks`` stays valid and how many key setups a source
needs per hour (the E1 calculation).

:class:`MasterKeyManager` keeps the current epoch's key plus a configurable
number of previous epochs for graceful rollover (packets in flight during a
rotation still decrypt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..crypto.kdf import derive_symmetric_key
from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..exceptions import MasterKeyExpiredError
from ..packet.addresses import IPv4Address
from ..units import hours

#: The paper's working assumption for the master-key lifetime.
DEFAULT_EPOCH_LIFETIME_SECONDS = hours(1)

MASTER_KEY_LEN = 16


@dataclass
class MasterKeyEpoch:
    """One epoch of the domain master key."""

    epoch: int
    key: bytes
    created_at: float


class MasterKeyManager:
    """Holds the rolling master key of one neutralizer domain."""

    def __init__(
        self,
        rng: Optional[RandomSource] = None,
        *,
        lifetime_seconds: float = DEFAULT_EPOCH_LIFETIME_SECONDS,
        retained_epochs: int = 1,
        initial_epoch: int = 1,
    ) -> None:
        if lifetime_seconds <= 0:
            raise ValueError("master key lifetime must be positive")
        if retained_epochs < 0:
            raise ValueError("retained_epochs cannot be negative")
        self._rng = rng or DEFAULT_SOURCE
        self.lifetime_seconds = float(lifetime_seconds)
        self.retained_epochs = retained_epochs
        self._epochs: Dict[int, MasterKeyEpoch] = {}
        self._current_epoch = initial_epoch
        self._epochs[initial_epoch] = MasterKeyEpoch(
            epoch=initial_epoch, key=self._rng.random_bytes(MASTER_KEY_LEN), created_at=0.0
        )

    # -- epoch management ----------------------------------------------------------

    @property
    def current_epoch(self) -> int:
        """The epoch number new key setups are issued under."""
        return self._current_epoch

    @property
    def current_key(self) -> bytes:
        """The current epoch's master key ``KM``."""
        return self._epochs[self._current_epoch].key

    def key_for_epoch(self, epoch: int) -> bytes:
        """Return the master key of ``epoch`` or raise if it has been retired."""
        try:
            return self._epochs[epoch].key
        except KeyError as exc:
            raise MasterKeyExpiredError(
                f"master key epoch {epoch} is no longer available "
                f"(current epoch is {self._current_epoch})"
            ) from exc

    def has_epoch(self, epoch: int) -> bool:
        """``True`` if the epoch's key is still held."""
        return epoch in self._epochs

    def rotate(self, now: float = 0.0) -> int:
        """Advance to a fresh epoch, discarding epochs beyond the retention window."""
        self._current_epoch += 1
        self._epochs[self._current_epoch] = MasterKeyEpoch(
            epoch=self._current_epoch,
            key=self._rng.random_bytes(MASTER_KEY_LEN),
            created_at=now,
        )
        minimum_kept = self._current_epoch - self.retained_epochs
        for epoch in [e for e in self._epochs if e < minimum_kept]:
            del self._epochs[epoch]
        return self._current_epoch

    def schedule_rotation(self, sim) -> None:
        """Install periodic rotation on a simulator (used by long experiments)."""

        def rotate_and_reschedule() -> None:
            self.rotate(now=sim.now)
            sim.schedule(self.lifetime_seconds, rotate_and_reschedule)

        sim.schedule(self.lifetime_seconds, rotate_and_reschedule)

    # -- key derivation -------------------------------------------------------------

    def derive_key(self, nonce: bytes, source_address: IPv4Address,
                   epoch: Optional[int] = None) -> bytes:
        """Derive ``Ks = hash(KM, nonce, srcIP)`` for the given (or current) epoch."""
        chosen = self._current_epoch if epoch is None else epoch
        master = self.key_for_epoch(chosen)
        return derive_symmetric_key(master, nonce, source_address.packed)

    @property
    def retained_epoch_count(self) -> int:
        """Number of epochs currently held (current + retained old ones)."""
        return len(self._epochs)

    def key_setups_per_source_per_day(self) -> float:
        """How many key setups one source needs per day given the lifetime.

        The E1 "88 million sources" figure follows from one setup per source
        per master-key lifetime; this helper makes the arithmetic explicit for
        the report generator.
        """
        return 86_400.0 / self.lifetime_seconds
