"""The neutralizer: a stateless anonymizing box at a neutral ISP's border.

This is the paper's core contribution (§3.2).  A neutralizer:

* answers **key-setup requests** from outside sources by choosing a nonce,
  deriving ``Ks = hash(KM, nonce, srcIP)`` from its domain master key, and
  returning ``E_S(nonce, Ks)`` under the source's short one-time RSA key —
  the cheap public-key *encryption* stays at the neutralizer, the expensive
  decryption stays at the source;
* forwards **neutralized data packets** by recomputing ``Ks`` from the
  clear-text nonce and source address (no per-flow state), decrypting the
  destination address from the shim, and swapping the outer destination from
  its own anycast address to the real customer address; when the source asked
  for a key refresh it stamps a fresh ``(nonce', Ks')`` into the shim for the
  destination to echo back under strong end-to-end encryption;
* anonymizes **return packets** from its customers by encrypting the
  customer's address under ``Ks`` and sourcing the packet from the anycast
  address, so the initiator can recover who answered but the ISPs in between
  cannot;
* hands out ``(nonce, Ks)`` pairs in clear text to customers *inside* the
  trusted domain that initiate communication to the outside (§3.3);
* optionally **offloads** the RSA encryption of key-setup responses to a
  willing customer (§3.2), keeping only the cheap hash at the box.

Statelessness is structural: the class keeps counters but no per-source or
per-flow tables, and any neutralizer constructed over the same
:class:`NeutralizerDomain` (same master key) processes any packet
interchangeably — that is what makes the anycast deployment work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..crypto.backend import get_cipher
from ..crypto.kdf import constant_time_equal, integrity_tag
from ..crypto.modes import ctr_decrypt, ctr_encrypt
from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..exceptions import MasterKeyExpiredError, NeutralizerError, ShimError
from ..packet.addresses import IPv4Address, Prefix
from ..packet.headers import (
    IPv4Header,
    PROTO_NEUTRALIZER_SHIM,
    SHIM_TYPE_KEY_SETUP_REQUEST,
    SHIM_TYPE_KEY_SETUP_RESPONSE,
    SHIM_TYPE_NEUTRALIZED_DATA,
    SHIM_TYPE_RETURN_DATA,
    SHIM_TYPE_REVERSE_KEY_REQUEST,
)
from ..packet.packet import Packet
from ..qos.intserv import DynamicAddressPool
from .master_key import MasterKeyManager
from .shim import (
    FLAG_KEY_REQUEST,
    NONCE_LEN,
    TAG_LEN,
    KeySetupRequestBody,
    KeySetupResponseBody,
    NeutralizedDataBody,
    ReturnDataBody,
    ReverseKeyRequestBody,
)

#: Tweak applied to the CTR nonce when encrypting the *source* address on the
#: return path, so forward and return directions never share a keystream.
_RETURN_NONCE_TWEAK = 0xAA


def encrypt_address(key: bytes, nonce: bytes, address: IPv4Address,
                    *, return_direction: bool = False, backend: Optional[str] = None) -> bytes:
    """Encrypt a 4-byte address under ``Ks`` with the per-packet nonce."""
    cipher = get_cipher(key, backend=backend)
    effective = _tweaked_nonce(nonce) if return_direction else nonce
    return ctr_encrypt(cipher, effective, address.packed)


def decrypt_address(key: bytes, nonce: bytes, ciphertext: bytes,
                    *, return_direction: bool = False, backend: Optional[str] = None) -> IPv4Address:
    """Decrypt a 4-byte address field produced by :func:`encrypt_address`."""
    cipher = get_cipher(key, backend=backend)
    effective = _tweaked_nonce(nonce) if return_direction else nonce
    return IPv4Address.from_bytes(ctr_decrypt(cipher, effective, ciphertext))


def _tweaked_nonce(nonce: bytes) -> bytes:
    return nonce[:-1] + bytes([nonce[-1] ^ _RETURN_NONCE_TWEAK])


@dataclass
class NeutralizerConfig:
    """Domain-wide configuration shared by every neutralizer of an ISP."""

    anycast_address: IPv4Address
    served_prefix: Prefix
    #: AES backend for the data path ("pure" reference or "fast").
    backend: Optional[str] = None
    #: When True, key-setup RSA encryptions are offloaded to helper customers.
    offload_enabled: bool = False
    #: Verify the shim integrity tag on the data path (can be disabled to
    #: reproduce the paper's leaner 112-byte packet cost model).
    verify_tags: bool = True


class NeutralizerDomain:
    """Everything the neutralizers of one ISP share: master key, config, pools."""

    def __init__(
        self,
        config: NeutralizerConfig,
        *,
        master_keys: Optional[MasterKeyManager] = None,
        rng: Optional[RandomSource] = None,
        dynamic_address_pool: Optional[DynamicAddressPool] = None,
    ) -> None:
        self.config = config
        self.rng = rng or DEFAULT_SOURCE
        self.master_keys = master_keys or MasterKeyManager(self.rng)
        self.dynamic_addresses = dynamic_address_pool
        self.neutralizers: List["Neutralizer"] = []
        #: Customer hosts that volunteered to perform offloaded RSA encryptions.
        self.offload_helpers: List[IPv4Address] = []
        self._next_helper = 0

    @property
    def anycast_address(self) -> IPv4Address:
        """The service address all customers publish in DNS."""
        return self.config.anycast_address

    def is_customer_address(self, address: IPv4Address) -> bool:
        """``True`` if ``address`` belongs to the served (neutral) ISP."""
        return self.config.served_prefix.contains(address)

    def register_offload_helper(self, address: IPv4Address) -> None:
        """Record a customer willing to perform RSA encryptions for the domain."""
        if address not in self.offload_helpers:
            self.offload_helpers.append(address)

    def next_offload_helper(self) -> Optional[IPv4Address]:
        """Round-robin over registered helpers (None when none registered)."""
        if not self.offload_helpers:
            return None
        helper = self.offload_helpers[self._next_helper % len(self.offload_helpers)]
        self._next_helper += 1
        return helper

    def create_neutralizer(self, name: str) -> "Neutralizer":
        """Create a neutralizer instance sharing this domain's master key."""
        neutralizer = Neutralizer(name=name, domain=self)
        self.neutralizers.append(neutralizer)
        return neutralizer

    def total_counters(self) -> Dict[str, int]:
        """Aggregate counters across every neutralizer of the domain."""
        totals: Dict[str, int] = {}
        for neutralizer in self.neutralizers:
            for key, value in neutralizer.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals


@dataclass
class _ProcessingResult:
    """Outcome of processing one packet (used by tests and the fast path)."""

    outputs: List[Packet] = field(default_factory=list)
    dropped: bool = False
    reason: str = ""


class Neutralizer:
    """One neutralizer box (or border-router function) of a domain."""

    def __init__(self, name: str, domain: NeutralizerDomain) -> None:
        self.name = name
        self.domain = domain
        self.counters: Dict[str, int] = {
            "key_setup_requests": 0,
            "key_setup_responses": 0,
            "rsa_encryptions": 0,
            "offloaded_requests": 0,
            "reverse_key_requests": 0,
            "data_packets_forwarded": 0,
            "return_packets_forwarded": 0,
            "refreshes_stamped": 0,
            "aes_operations": 0,
            "hash_operations": 0,
            "tag_failures": 0,
            "unknown_epoch": 0,
            "malformed": 0,
            "not_for_us": 0,
        }

    # -- properties ---------------------------------------------------------------

    @property
    def anycast_address(self) -> IPv4Address:
        """The anycast service address this box answers for."""
        return self.domain.anycast_address

    @property
    def backend(self) -> Optional[str]:
        """AES backend used on the data path."""
        return self.domain.config.backend

    def state_entries(self) -> int:
        """Per-flow/per-source state entries held — zero, by design.

        The onion-routing baseline reports per-circuit state here; the
        comparison is experiment E6.
        """
        return 0

    # -- key derivation (the stateless core) ------------------------------------------

    def derive_key(self, nonce: bytes, source_address: IPv4Address, epoch: int) -> bytes:
        """Recompute ``Ks = hash(KM, nonce, srcIP)`` for a given epoch."""
        self.counters["hash_operations"] += 1
        return self.domain.master_keys.derive_key(nonce, source_address, epoch)

    # -- packet processing ----------------------------------------------------------------

    def process(self, packet: Packet) -> List[Packet]:
        """Process one packet addressed to the neutralizer service.

        Returns the packets to inject back into the network (possibly empty
        when the packet was malformed or failed verification).  This is the
        pure fast path used directly by the throughput benchmarks; the router
        integration below simply injects the outputs.
        """
        return self._process(packet).outputs

    def _process(self, packet: Packet) -> _ProcessingResult:
        if packet.ip.protocol != PROTO_NEUTRALIZER_SHIM or packet.shim is None:
            self.counters["not_for_us"] += 1
            return _ProcessingResult(dropped=True, reason="no shim")
        handler = {
            SHIM_TYPE_KEY_SETUP_REQUEST: self._handle_key_setup,
            SHIM_TYPE_NEUTRALIZED_DATA: self._handle_forward_data,
            SHIM_TYPE_RETURN_DATA: self._handle_return_data,
            SHIM_TYPE_REVERSE_KEY_REQUEST: self._handle_reverse_key_request,
        }.get(packet.shim.shim_type)
        if handler is None:
            self.counters["malformed"] += 1
            return _ProcessingResult(dropped=True, reason="unexpected shim type")
        try:
            return handler(packet)
        except (ShimError, NeutralizerError) as exc:
            self.counters["malformed"] += 1
            return _ProcessingResult(dropped=True, reason=str(exc))

    # -- key setup (Figure 2a) ----------------------------------------------------------

    def _handle_key_setup(self, packet: Packet) -> _ProcessingResult:
        self.counters["key_setup_requests"] += 1
        body = KeySetupRequestBody.unpack(packet.shim.body)
        epoch = self.domain.master_keys.current_epoch
        nonce = self.domain.rng.nonce(NONCE_LEN)
        key = self.derive_key(nonce, packet.source, epoch)

        if self.domain.config.offload_enabled:
            helper = self.domain.next_offload_helper()
            if helper is not None:
                return self._offload_key_setup(packet, body, helper, nonce, key, epoch)

        ciphertext = body.public_key.encrypt(nonce + key, self.domain.rng)
        self.counters["rsa_encryptions"] += 1
        response_body = KeySetupResponseBody(epoch=epoch, ciphertext=ciphertext)
        response = self._build_shim_packet(
            source=self.anycast_address,
            destination=packet.source,
            shim=response_body.to_shim(),
            dscp=packet.dscp,
        )
        self.counters["key_setup_responses"] += 1
        return _ProcessingResult(outputs=[response])

    def _offload_key_setup(
        self,
        packet: Packet,
        body: KeySetupRequestBody,
        helper: IPv4Address,
        nonce: bytes,
        key: bytes,
        epoch: int,
    ) -> _ProcessingResult:
        """Forward the request to a helper customer, embedding nonce and key (§3.2)."""
        self.counters["offloaded_requests"] += 1
        offloaded_body = KeySetupRequestBody(
            public_key=body.public_key,
            epoch_hint=epoch,
            offload_nonce=nonce,
            offload_key=key,
        )
        forwarded = self._build_shim_packet(
            source=packet.source,  # preserved so the helper knows whom to answer
            destination=helper,
            shim=offloaded_body.to_shim(),
            dscp=packet.dscp,
        )
        return _ProcessingResult(outputs=[forwarded])

    # -- forward data (Figure 2b messages 3-4) -----------------------------------------------

    def _handle_forward_data(self, packet: Packet) -> _ProcessingResult:
        body = NeutralizedDataBody.unpack(packet.shim.body, packet.shim.next_protocol)
        try:
            key = self.derive_key(body.nonce, packet.source, body.epoch)
        except MasterKeyExpiredError:
            self.counters["unknown_epoch"] += 1
            return _ProcessingResult(dropped=True, reason="unknown master key epoch")

        if self.domain.config.verify_tags:
            expected = integrity_tag(key, body.tag_input(), TAG_LEN)
            if not constant_time_equal(expected, body.tag):
                self.counters["tag_failures"] += 1
                return _ProcessingResult(dropped=True, reason="integrity tag mismatch")

        destination = decrypt_address(
            key, body.nonce, body.encrypted_destination, backend=self.backend
        )
        self.counters["aes_operations"] += 1
        if not self.domain.is_customer_address(destination):
            # The neutralizer only blurs traffic for its own customers;
            # anything else is a protocol error (or probing) and is dropped.
            return _ProcessingResult(dropped=True, reason="destination is not a customer")

        forwarded_body = body
        if body.wants_key_refresh:
            refresh_nonce = self.domain.rng.nonce(NONCE_LEN)
            refresh_key = self.derive_key(refresh_nonce, packet.source,
                                          self.domain.master_keys.current_epoch)
            forwarded_body = body.with_refresh(refresh_nonce, refresh_key)
            self.counters["refreshes_stamped"] += 1

        forwarded = self._build_shim_packet(
            source=packet.source,
            destination=destination,
            shim=forwarded_body.to_shim(packet.shim.next_protocol),
            dscp=packet.dscp,
            payload=packet.payload,
            meta=packet.meta,
        )
        self.counters["data_packets_forwarded"] += 1
        return _ProcessingResult(outputs=[forwarded])

    # -- return data (Figure 2b messages 5-6) -------------------------------------------------

    def _handle_return_data(self, packet: Packet) -> _ProcessingResult:
        body = ReturnDataBody.unpack(packet.shim.body)
        if not self.domain.is_customer_address(packet.source):
            return _ProcessingResult(dropped=True, reason="return packet not from a customer")
        initiator = body.clear_address()
        try:
            key = self.derive_key(body.nonce, initiator, body.epoch)
        except MasterKeyExpiredError:
            self.counters["unknown_epoch"] += 1
            return _ProcessingResult(dropped=True, reason="unknown master key epoch")

        encrypted_customer = encrypt_address(
            key, body.nonce, packet.source, return_direction=True, backend=self.backend
        )
        self.counters["aes_operations"] += 1
        anonymized_body = ReturnDataBody(
            epoch=body.epoch,
            nonce=body.nonce,
            address_field=encrypted_customer,
            tag=b"\x00" * TAG_LEN,
            flags=body.flags,
        )
        anonymized_body = ReturnDataBody(
            epoch=anonymized_body.epoch,
            nonce=anonymized_body.nonce,
            address_field=anonymized_body.address_field,
            tag=integrity_tag(key, anonymized_body.tag_input(), TAG_LEN),
            flags=anonymized_body.flags,
        )
        outbound = self._build_shim_packet(
            source=self.anycast_address,
            destination=initiator,
            shim=anonymized_body.to_shim(packet.shim.next_protocol),
            dscp=packet.dscp,
            payload=packet.payload,
            meta=packet.meta,
        )
        self.counters["return_packets_forwarded"] += 1
        return _ProcessingResult(outputs=[outbound])

    # -- reverse-direction key request (§3.3) ----------------------------------------------------

    def _handle_reverse_key_request(self, packet: Packet) -> _ProcessingResult:
        if not self.domain.is_customer_address(packet.source):
            return _ProcessingResult(dropped=True, reason="reverse request not from a customer")
        self.counters["reverse_key_requests"] += 1
        body = ReverseKeyRequestBody.unpack(packet.shim.body)
        epoch = self.domain.master_keys.current_epoch
        nonce = self.domain.rng.nonce(NONCE_LEN)
        # The key is bound to the *outside peer's* address so the later
        # forward traffic from that peer derives the same Ks statelessly.
        key = self.derive_key(nonce, body.peer_address, epoch)
        response_body = KeySetupResponseBody(
            epoch=epoch, plaintext_nonce=nonce, plaintext_key=key
        )
        response = self._build_shim_packet(
            source=self.anycast_address,
            destination=packet.source,
            shim=response_body.to_shim(),
            dscp=packet.dscp,
        )
        return _ProcessingResult(outputs=[response])

    # -- helpers ----------------------------------------------------------------------------------

    @staticmethod
    def _build_shim_packet(
        *,
        source: IPv4Address,
        destination: IPv4Address,
        shim,
        dscp: int,
        payload: bytes = b"",
        meta: Optional[dict] = None,
    ) -> Packet:
        packet = Packet(
            ip=IPv4Header(
                source=source,
                destination=destination,
                protocol=PROTO_NEUTRALIZER_SHIM,
                dscp=dscp,  # §3.4: the neutralizer never touches the DSCP
            ),
            shim=shim,
            payload=payload,
        )
        if meta:
            packet.meta.update(meta)
        return packet

    # -- router integration --------------------------------------------------------------------------

    def as_local_service(self, router) -> Callable:
        """Return the router local-service callable for this neutralizer."""

        def service(packet: Packet, router_node, interface) -> None:
            for output in self.process(packet):
                router_node.inject(output)

        return service

    def attach_to_router(self, router) -> None:
        """Bind this neutralizer to a border router under the anycast address."""
        router.attach_local_service(self.anycast_address, self.as_local_service(router))
