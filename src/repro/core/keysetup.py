"""Source-side key-setup state machine (Figure 2a and the §3.2 refresh).

A source outside the neutral domain keeps one :class:`KeySetupContext` per
neutralizer (anycast address).  The context walks through three states:

``IDLE`` → ``PENDING`` (request sent, one-time RSA private key held) →
``ESTABLISHED`` (``Ks`` known; data packets can be built).

After establishment the context also tracks the *refreshed* key: the first
data packets carry the key-request flag, the neutralizer stamps ``(nonce',
Ks')`` toward the destination, and the destination echoes the pair back under
strong end-to-end encryption.  Once the echo arrives the context switches to
the refreshed key and stops requesting refreshes, which is the mechanism that
bounds the useful lifetime of the weak 512-bit one-time key to roughly two
round-trip times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..crypto.rsa import RsaKeyPair, generate_keypair
from ..exceptions import KeySetupError
from ..packet.addresses import IPv4Address
from ..packet.packet import Packet
from .shim import NONCE_LEN, SYMMETRIC_KEY_LEN, KeySetupRequestBody, KeySetupResponseBody

#: Size of the one-time key the paper suggests (512-bit RSA).
ONE_TIME_KEY_BITS = 512


class KeySetupState(Enum):
    """States of the source↔neutralizer key setup."""

    IDLE = "idle"
    PENDING = "pending"
    ESTABLISHED = "established"


@dataclass
class ActiveKey:
    """A usable (nonce, Ks) pair plus the epoch it belongs to."""

    nonce: bytes
    key: bytes
    epoch: int
    #: True when this pair was obtained through the strong e2e refresh rather
    #: than the weak one-time RSA exchange.
    refreshed: bool = False


@dataclass
class KeySetupContext:
    """Per-neutralizer key state kept by an outside source."""

    neutralizer_address: IPv4Address
    source_address: IPv4Address
    one_time_key_bits: int = ONE_TIME_KEY_BITS
    state: KeySetupState = KeySetupState.IDLE
    one_time_keypair: Optional[RsaKeyPair] = None
    active: Optional[ActiveKey] = None
    #: Packets the application tried to send before the key was ready.
    pending_packets: List[Packet] = field(default_factory=list)
    requests_sent: int = 0
    responses_received: int = 0
    refreshes_received: int = 0
    request_sent_at: float = 0.0

    # -- request construction -----------------------------------------------------

    def build_request(self, rng: Optional[RandomSource] = None) -> KeySetupRequestBody:
        """Generate the one-time key pair and the request body (Figure 2a, msg 1)."""
        source = rng or DEFAULT_SOURCE
        self.one_time_keypair = generate_keypair(self.one_time_key_bits, source)
        self.state = KeySetupState.PENDING
        self.requests_sent += 1
        return KeySetupRequestBody(public_key=self.one_time_keypair.public)

    # -- response processing ----------------------------------------------------------

    def process_response(self, body: KeySetupResponseBody) -> ActiveKey:
        """Decrypt/accept the neutralizer's response and establish the key."""
        if body.is_plaintext:
            nonce, key = body.plaintext_nonce, body.plaintext_key
        else:
            if self.one_time_keypair is None:
                raise KeySetupError("received a key-setup response without a pending request")
            plaintext = self.one_time_keypair.private.decrypt(body.ciphertext)
            if len(plaintext) != NONCE_LEN + SYMMETRIC_KEY_LEN:
                raise KeySetupError("malformed key-setup response plaintext")
            nonce, key = plaintext[:NONCE_LEN], plaintext[NONCE_LEN:]
        self.active = ActiveKey(nonce=nonce, key=key, epoch=body.epoch, refreshed=False)
        self.state = KeySetupState.ESTABLISHED
        self.responses_received += 1
        # The one-time key has served its purpose; drop it so nothing else can
        # be (mistakenly) protected with a 512-bit key.
        self.one_time_keypair = None
        return self.active

    def apply_refresh(self, refresh_nonce: bytes, refresh_key: bytes,
                      epoch: Optional[int] = None) -> ActiveKey:
        """Switch to the refreshed key echoed back by the destination (§3.2)."""
        if self.state != KeySetupState.ESTABLISHED or self.active is None:
            raise KeySetupError("cannot refresh a key before establishment")
        self.active = ActiveKey(
            nonce=refresh_nonce,
            key=refresh_key,
            epoch=self.active.epoch if epoch is None else epoch,
            refreshed=True,
        )
        self.refreshes_received += 1
        return self.active

    def install_external_key(self, nonce: bytes, key: bytes, epoch: int) -> ActiveKey:
        """Adopt a key learned out-of-band (reverse-direction hello, §3.3)."""
        self.active = ActiveKey(nonce=nonce, key=key, epoch=epoch, refreshed=True)
        self.state = KeySetupState.ESTABLISHED
        return self.active

    # -- queries -----------------------------------------------------------------------

    @property
    def is_established(self) -> bool:
        """``True`` when data packets can be built."""
        return self.state == KeySetupState.ESTABLISHED and self.active is not None

    @property
    def needs_refresh(self) -> bool:
        """``True`` while the active key still derives from the weak one-time exchange."""
        return self.is_established and not self.active.refreshed

    def queue_packet(self, packet: Packet) -> None:
        """Hold an application packet until the key is established."""
        self.pending_packets.append(packet)

    def drain_pending(self) -> List[Packet]:
        """Return and clear the queued packets (called on establishment)."""
        drained, self.pending_packets = self.pending_packets, []
        return drained

    def setup_rtt(self, now: float) -> float:
        """Elapsed time since the request was sent (for latency experiments)."""
        if self.request_sent_at == 0.0:
            return 0.0
        return now - self.request_sent_at


def attacker_window_seconds(rtt_seconds: float) -> float:
    """The time an attacker has to factor the one-time key before it is useless.

    "As long as a discriminatory ISP does not factor the short RSA key before
    K's is returned to the source (which takes two round trip times), the
    discriminatory ISP cannot decrypt the destination address" — so the window
    is two RTTs.  E7 compares this window against factoring-cost estimates.
    """
    return 2.0 * rtt_seconds
