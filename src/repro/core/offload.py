"""RSA offloading: customers help the neutralizer with key-setup encryptions.

Section 3.2: "if a neutralizer cannot support RSA encryption at line speed, it
can offload the encryption operation to any customer in its domain that is
willing to help.  The neutralizer inserts the nonce and the symmetric key Ks
in the source's key request packet and forwards the packet to the customer to
encrypt using the public key in the request packet.  A customer (e.g. Google)
would have incentive to help because the source may intend to communicate
with it."

:class:`OffloadHelper` is the customer-side piece: attached to a customer
host, it recognizes forwarded key-setup requests carrying the embedded
``(nonce, Ks)``, performs the RSA encryption, and sends the key-setup response
directly to the original source.  The neutralizer side (embedding the fields
and picking a helper) lives in :class:`repro.core.neutralizer.Neutralizer`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..exceptions import OffloadError, ShimError
from ..netsim.node import Host
from ..packet.addresses import IPv4Address
from ..packet.headers import (
    IPv4Header,
    PROTO_NEUTRALIZER_SHIM,
    SHIM_TYPE_KEY_SETUP_REQUEST,
)
from ..packet.packet import Packet
from .shim import KeySetupRequestBody, KeySetupResponseBody


class OffloadHelper:
    """A willing customer that performs offloaded RSA encryptions."""

    def __init__(
        self,
        host: Host,
        anycast_address: IPv4Address,
        *,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.host = host
        self.anycast_address = anycast_address
        self._rng = rng or DEFAULT_SOURCE
        self.counters: Dict[str, int] = {
            "requests_handled": 0,
            "rsa_encryptions": 0,
            "malformed": 0,
        }
        host.ingress_hooks.append(self._ingress_hook)

    def _ingress_hook(self, packet: Packet, host: Host) -> Optional[Packet]:
        if packet.shim is None or packet.shim.shim_type != SHIM_TYPE_KEY_SETUP_REQUEST:
            return packet
        try:
            body = KeySetupRequestBody.unpack(packet.shim.body)
        except ShimError:
            self.counters["malformed"] += 1
            return None
        if body.offload_nonce is None or body.offload_key is None:
            # A key-setup request without embedded key material is not an
            # offload job; leave it to other handlers.
            return packet
        self._answer(packet, body)
        return None

    def _answer(self, packet: Packet, body: KeySetupRequestBody) -> None:
        ciphertext = body.public_key.encrypt(body.offload_nonce + body.offload_key, self._rng)
        self.counters["rsa_encryptions"] += 1
        self.counters["requests_handled"] += 1
        response_body = KeySetupResponseBody(epoch=body.epoch_hint, ciphertext=ciphertext)
        # The response is sourced from the anycast address so that, to the
        # requesting source, an offloaded setup is indistinguishable from a
        # locally answered one.
        response = Packet(
            ip=IPv4Header(
                source=self.anycast_address,
                destination=packet.source,
                protocol=PROTO_NEUTRALIZER_SHIM,
                dscp=packet.dscp,
            ),
            shim=response_body.to_shim(),
        )
        self.host.send_raw(response)


def register_helper(domain, helper_host: Host, rng: Optional[RandomSource] = None) -> OffloadHelper:
    """Attach an :class:`OffloadHelper` to a host and register it with a domain.

    ``domain`` is a :class:`repro.core.neutralizer.NeutralizerDomain`; the
    helper's address is added to the domain's round-robin helper list and the
    domain's offloading is switched on.
    """
    if not domain.is_customer_address(helper_host.address):
        raise OffloadError(
            f"host {helper_host.name} ({helper_host.address}) is not a customer "
            "of the neutralizer's domain and cannot volunteer"
        )
    helper = OffloadHelper(helper_host, domain.anycast_address, rng=rng)
    domain.register_offload_helper(helper_host.address)
    domain.config.offload_enabled = True
    return helper
