"""Core contribution of the paper: the neutralizer protocol and host stacks."""

from .anycast import ConsistentHashRing, NeutralizerDeployment, deploy_neutralizer_service
from .api import NetNeutralityDeployment, neutralize_isp
from .client import DestinationInfo, NeutralizedClientStack
from .envelope import (
    ENVELOPE_DATA,
    ENVELOPE_HANDSHAKE_DATA,
    ENVELOPE_PLAINTEXT,
    ENVELOPE_REVERSE_HELLO,
    InnerPayload,
    pack_envelope,
    pack_inner,
    parse_envelope,
    parse_inner,
)
from .keysetup import (
    ONE_TIME_KEY_BITS,
    ActiveKey,
    KeySetupContext,
    KeySetupState,
    attacker_window_seconds,
)
from .master_key import DEFAULT_EPOCH_LIFETIME_SECONDS, MasterKeyManager
from .multihoming import (
    AdaptiveSelector,
    FirstChoiceSelector,
    MultihomedSite,
    NeutralizerSelector,
    RoundRobinSelector,
    WeightedSelector,
)
from .neutralizer import (
    Neutralizer,
    NeutralizerConfig,
    NeutralizerDomain,
    decrypt_address,
    encrypt_address,
)
from .offload import OffloadHelper, register_helper
from .server import NeutralizedServerStack
from .shim import (
    FLAG_KEY_REQUEST,
    FLAG_REFRESH_PRESENT,
    FLAG_REVERSE_HELLO,
    NONCE_LEN,
    SYMMETRIC_KEY_LEN,
    TAG_LEN,
    KeySetupRequestBody,
    KeySetupResponseBody,
    NeutralizedDataBody,
    ReturnDataBody,
    ReverseKeyRequestBody,
    expected_data_overhead_bytes,
    parse_shim_body,
)

__all__ = [
    "ConsistentHashRing",
    "NeutralizerDeployment",
    "deploy_neutralizer_service",
    "NetNeutralityDeployment",
    "neutralize_isp",
    "DestinationInfo",
    "NeutralizedClientStack",
    "ENVELOPE_DATA",
    "ENVELOPE_HANDSHAKE_DATA",
    "ENVELOPE_PLAINTEXT",
    "ENVELOPE_REVERSE_HELLO",
    "InnerPayload",
    "pack_envelope",
    "pack_inner",
    "parse_envelope",
    "parse_inner",
    "ONE_TIME_KEY_BITS",
    "ActiveKey",
    "KeySetupContext",
    "KeySetupState",
    "attacker_window_seconds",
    "DEFAULT_EPOCH_LIFETIME_SECONDS",
    "MasterKeyManager",
    "AdaptiveSelector",
    "FirstChoiceSelector",
    "MultihomedSite",
    "NeutralizerSelector",
    "RoundRobinSelector",
    "WeightedSelector",
    "Neutralizer",
    "NeutralizerConfig",
    "NeutralizerDomain",
    "decrypt_address",
    "encrypt_address",
    "OffloadHelper",
    "register_helper",
    "NeutralizedServerStack",
    "FLAG_KEY_REQUEST",
    "FLAG_REFRESH_PRESENT",
    "FLAG_REVERSE_HELLO",
    "NONCE_LEN",
    "SYMMETRIC_KEY_LEN",
    "TAG_LEN",
    "KeySetupRequestBody",
    "KeySetupResponseBody",
    "NeutralizedDataBody",
    "ReturnDataBody",
    "ReverseKeyRequestBody",
    "expected_data_overhead_bytes",
    "parse_shim_body",
]
