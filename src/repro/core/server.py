"""The customer-side host stack for hosts inside the neutral domain.

:class:`NeutralizedServerStack` is what runs on Google/Yahoo/Vonage-style
customers of the neutral ISP.  Incoming neutralized packets are unwrapped
(e2e handshake accepted, transport header restored) before the application
sees them; outgoing replies are wrapped into return packets addressed to the
neutralizer's anycast address, carrying the initiator's address and nonce in
the shim so the stateless neutralizer can anonymize them (Figure 2b, messages
5–6).  When the neutralizer stamped a key refresh into a forward packet, the
stack echoes it back inside the end-to-end protected payload of the next
reply, completing the §3.2 refresh loop.

The stack also implements the reverse direction (§3.3): a customer can
*initiate* a connection to an outside host by requesting a ``(nonce, Ks)``
pair from its neutralizer (no encryption needed inside the trusted domain),
transporting the pair to the peer under the peer's public key, and then using
the ordinary return path for data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..crypto.rsa import RsaKeyPair, RsaPublicKey
from ..e2e.session import E2eResponder, E2eSession, sessions_from_secret
from ..exceptions import NeutralizerError, ShimError
from ..netsim.node import Host
from ..packet.addresses import IPv4Address
from ..packet.headers import (
    IPv4Header,
    PROTO_NEUTRALIZER_SHIM,
    PROTO_UDP,
    SHIM_TYPE_KEY_SETUP_RESPONSE,
    SHIM_TYPE_NEUTRALIZED_DATA,
    UdpHeader,
)
from ..packet.packet import Packet
from .envelope import (
    ENVELOPE_DATA,
    ENVELOPE_HANDSHAKE_DATA,
    ENVELOPE_PLAINTEXT,
    ENVELOPE_REVERSE_HELLO,
    pack_envelope,
    pack_inner,
    parse_envelope,
    parse_inner,
)
from .shim import (
    FLAG_REVERSE_HELLO,
    KeySetupResponseBody,
    NeutralizedDataBody,
    ReturnDataBody,
    ReverseKeyRequestBody,
    TAG_LEN,
)


@dataclass
class _PeerContext:
    """State kept per outside peer."""

    peer_address: IPv4Address
    nonce: Optional[bytes] = None
    epoch: int = 0
    session: Optional[E2eSession] = None
    #: Refresh pair stamped by the neutralizer, waiting to be echoed back.
    pending_refresh: Optional[Tuple[bytes, bytes]] = None
    #: Reverse-direction state: the shared key and whether the hello was sent.
    reverse_key: Optional[bytes] = None
    reverse_hello_sent: bool = False
    reverse_peer_public_key: Optional[RsaPublicKey] = None
    #: Packets queued while the reverse key request is outstanding.
    pending_packets: List[Packet] = field(default_factory=list)
    packets_received: int = 0
    packets_sent: int = 0


class NeutralizedServerStack:
    """Transparent neutralizer + e2e server for one inside (customer) host."""

    def __init__(
        self,
        host: Host,
        keypair: RsaKeyPair,
        neutralizer_address: IPv4Address,
        *,
        rng: Optional[RandomSource] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.host = host
        self.keypair = keypair
        self.neutralizer_address = neutralizer_address
        self._rng = rng or DEFAULT_SOURCE
        self._backend = backend
        self._responder = E2eResponder(keypair, backend=backend)
        self._peers: Dict[IPv4Address, _PeerContext] = {}
        self.counters: Dict[str, int] = {
            "forward_packets_unwrapped": 0,
            "returns_sent": 0,
            "refresh_echoes_sent": 0,
            "reverse_requests_sent": 0,
            "reverse_hellos_sent": 0,
            "passed_through": 0,
            "undecodable": 0,
        }
        host.ingress_hooks.append(self._ingress_hook)
        host.egress_hooks.append(self._egress_hook)

    @property
    def public_key(self) -> RsaPublicKey:
        """The key the site publishes in its DNS KEY record."""
        return self.keypair.public

    def known_peers(self) -> List[IPv4Address]:
        """Addresses of outside peers with established state."""
        return list(self._peers)

    # -- ingress: unwrap forward packets -------------------------------------------------

    def _ingress_hook(self, packet: Packet, host: Host) -> Optional[Packet]:
        if packet.shim is None:
            return packet
        if packet.shim.shim_type == SHIM_TYPE_NEUTRALIZED_DATA:
            return self._handle_forward(packet)
        if packet.shim.shim_type == SHIM_TYPE_KEY_SETUP_RESPONSE:
            handled = self._handle_reverse_key_response(packet)
            return None if handled else packet
        return packet

    def _handle_forward(self, packet: Packet) -> Optional[Packet]:
        try:
            body = NeutralizedDataBody.unpack(packet.shim.body, packet.shim.next_protocol)
        except ShimError:
            self.counters["undecodable"] += 1
            return None
        peer = self._peers.setdefault(packet.source, _PeerContext(peer_address=packet.source))
        peer.nonce = body.nonce
        peer.epoch = body.epoch
        if body.has_refresh and body.refresh_nonce is not None:
            peer.pending_refresh = (body.refresh_nonce, body.refresh_key)

        try:
            envelope = parse_envelope(packet.payload)
        except ShimError:
            self.counters["undecodable"] += 1
            return None
        inner_bytes = self._open_envelope(envelope, peer)
        if inner_bytes is None:
            self.counters["undecodable"] += 1
            return None
        inner = parse_inner(inner_bytes)
        peer.packets_received += 1
        self.counters["forward_packets_unwrapped"] += 1
        return Packet(
            ip=IPv4Header(
                source=packet.source,
                destination=self.host.address,
                protocol=PROTO_UDP if inner.udp is not None else 0,
                dscp=packet.dscp,
            ),
            udp=inner.udp,
            payload=inner.payload,
            meta=dict(packet.meta),
            hops=list(packet.hops),
        )

    def _open_envelope(self, envelope, peer: _PeerContext) -> Optional[bytes]:
        if envelope.envelope_type == ENVELOPE_PLAINTEXT:
            return envelope.body
        if envelope.envelope_type == ENVELOPE_HANDSHAKE_DATA:
            try:
                peer.session = self._responder.accept_handshake(envelope.prefix)
            except Exception:
                return None
            return self._unprotect(envelope.body, peer)
        if envelope.envelope_type == ENVELOPE_DATA:
            return self._unprotect(envelope.body, peer)
        return None

    def _unprotect(self, body: bytes, peer: _PeerContext) -> Optional[bytes]:
        if peer.session is None:
            return None
        try:
            return peer.session.unprotect(body)
        except Exception:
            return None

    # -- egress: wrap replies into return packets ----------------------------------------------

    def _egress_hook(self, packet: Packet, host: Host) -> Optional[Packet]:
        if packet.shim is not None:
            return packet
        peer = self._peers.get(packet.destination)
        if peer is None:
            self.counters["passed_through"] += 1
            return packet
        if peer.reverse_key is not None and peer.nonce is None:
            # Reverse key requested but response not here yet; queue.
            peer.pending_packets.append(packet)
            return None
        return self._wrap_return(packet, peer)

    def _wrap_return(self, packet: Packet, peer: _PeerContext) -> Packet:
        refresh = peer.pending_refresh
        peer.pending_refresh = None
        if refresh is not None:
            self.counters["refresh_echoes_sent"] += 1
        inner = pack_inner(packet.payload, udp=packet.udp, refresh=refresh)
        flags = 0
        if peer.session is not None:
            protected = peer.session.protect(inner, self._rng)
            if peer.reverse_key is not None and not peer.reverse_hello_sent:
                assert peer.reverse_peer_public_key is not None
                key_blob = peer.reverse_peer_public_key.encrypt(
                    peer.nonce + peer.reverse_key, self._rng
                )
                envelope = pack_envelope(ENVELOPE_REVERSE_HELLO, protected, prefix=key_blob)
                peer.reverse_hello_sent = True
                flags |= FLAG_REVERSE_HELLO
                self.counters["reverse_hellos_sent"] += 1
            else:
                envelope = pack_envelope(ENVELOPE_DATA, protected)
        else:
            envelope = pack_envelope(ENVELOPE_PLAINTEXT, inner)
        body = ReturnDataBody(
            epoch=peer.epoch,
            nonce=peer.nonce,
            address_field=peer.peer_address.packed,
            tag=b"\x00" * TAG_LEN,
            flags=flags,
        )
        wrapped = Packet(
            ip=IPv4Header(
                source=self.host.address,
                destination=self.neutralizer_address,
                protocol=PROTO_NEUTRALIZER_SHIM,
                dscp=packet.dscp,
                ttl=packet.ip.ttl,
            ),
            shim=body.to_shim(PROTO_UDP if packet.udp is not None else 0),
            payload=envelope,
            meta=dict(packet.meta),
        )
        peer.packets_sent += 1
        self.counters["returns_sent"] += 1
        return wrapped

    # -- reverse-direction initiation (§3.3) -----------------------------------------------------------

    def initiate_to(self, peer_address: IPv4Address, peer_public_key: RsaPublicKey) -> None:
        """Start a customer-initiated session toward an outside peer.

        The stack requests a ``(nonce, Ks)`` pair from the neutralizer; once
        it arrives, application packets queued for ``peer_address`` are sent
        with a reverse hello carrying the key under the peer's public key.
        """
        peer = self._peers.setdefault(peer_address, _PeerContext(peer_address=peer_address))
        peer.reverse_peer_public_key = peer_public_key
        peer.reverse_key = b""  # marks "requested, waiting for the response"
        request = ReverseKeyRequestBody(peer_address=peer_address)
        packet = Packet(
            ip=IPv4Header(
                source=self.host.address,
                destination=self.neutralizer_address,
                protocol=PROTO_NEUTRALIZER_SHIM,
            ),
            shim=request.to_shim(),
        )
        self.counters["reverse_requests_sent"] += 1
        self.host.send_raw(packet)

    def _handle_reverse_key_response(self, packet: Packet) -> bool:
        try:
            body = KeySetupResponseBody.unpack(packet.shim.body)
        except ShimError:
            return False
        if not body.is_plaintext:
            return False
        # Find the peer waiting for a reverse key (requested but not filled).
        waiting = [
            peer for peer in self._peers.values()
            if peer.reverse_key == b"" and peer.reverse_peer_public_key is not None
        ]
        if not waiting:
            return False
        peer = waiting[0]
        peer.reverse_key = body.plaintext_key
        peer.nonce = body.plaintext_nonce
        peer.epoch = body.epoch
        initiator_session, _responder_session = sessions_from_secret(
            body.plaintext_key, self._backend
        )
        peer.session = initiator_session
        pending, peer.pending_packets = peer.pending_packets, []
        for queued in pending:
            self.host.send(queued)
        return True
