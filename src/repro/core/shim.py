"""Wire formats of the neutralizer shim bodies (Figure 2).

The paper puts the protocol's extra fields "in a shim layer between IP and an
upper layer".  The generic container (type / next protocol / length) lives in
:mod:`repro.packet.headers`; this module defines the five body formats the
neutralizer protocol uses and their byte encodings:

* :class:`KeySetupRequestBody` — the source's short one-time RSA public key
  (Figure 2a, message 1).
* :class:`KeySetupResponseBody` — the neutralizer's reply carrying
  ``E_S(nonce, Ks)``; in the reverse direction (§3.3, requests from inside
  the trusted domain) the same body can carry the pair in clear text.
* :class:`NeutralizedDataBody` — forward data packets: clear-text nonce,
  encrypted destination address, a short integrity tag, a *key request* flag,
  and (only after the neutralizer stamps it, inside the neutral domain) a
  fresh ``(nonce', Ks')`` refresh block (Figure 2b, messages 3–4).
* :class:`ReturnDataBody` — return packets: the initiator's address (clear
  from the customer to the neutralizer, then swapped for the encrypted
  customer address toward the initiator) and the nonce identifying ``Ks``
  (Figure 2b, messages 5–6).
* :class:`ReverseKeyRequestBody` — an inside customer asking its neutralizer
  for a ``(nonce, Ks)`` pair bound to an outside peer (§3.3).

All encodings are fixed-layout ``struct`` formats so the benchmark harness can
report honest packet sizes (the paper's 112-byte neutralized packet, E2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..crypto.rsa import RsaPublicKey
from ..exceptions import ShimError
from ..packet.addresses import IPv4Address
from ..packet.headers import (
    SHIM_TYPE_KEY_SETUP_REQUEST,
    SHIM_TYPE_KEY_SETUP_RESPONSE,
    SHIM_TYPE_NEUTRALIZED_DATA,
    SHIM_TYPE_RETURN_DATA,
    SHIM_TYPE_REVERSE_KEY_REQUEST,
    ShimHeader,
)

NONCE_LEN = 8
SYMMETRIC_KEY_LEN = 16
#: Short per-packet integrity tag over the shim fields (see kdf.integrity_tag).
TAG_LEN = 4

# Flag bits used by data/return bodies.
FLAG_KEY_REQUEST = 0x01
FLAG_REFRESH_PRESENT = 0x02
FLAG_REVERSE_HELLO = 0x04

# Flag bits used by the key-setup response body.
RESPONSE_FLAG_PLAINTEXT = 0x01


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ShimError(message)


@dataclass(frozen=True)
class KeySetupRequestBody:
    """Body of a key-setup request: the one-time RSA public key.

    ``offload_nonce``/``offload_key`` are only ever filled in by a neutralizer
    that is delegating the RSA encryption to a willing customer (§3.2): the
    neutralizer appends the chosen nonce and derived key so the helper can
    build the response without knowing the master key.  These fields never
    appear on packets crossing the discriminatory ISP.
    """

    public_key: RsaPublicKey
    epoch_hint: int = 0
    offload_nonce: Optional[bytes] = None
    offload_key: Optional[bytes] = None

    def pack(self) -> bytes:
        flags = 0x01 if self.offload_nonce is not None else 0x00
        head = struct.pack("!HB", self.epoch_hint, flags)
        body = head + self.public_key.wire_bytes()
        if self.offload_nonce is not None:
            _require(self.offload_key is not None, "offload nonce without key")
            _require(len(self.offload_nonce) == NONCE_LEN, "bad offload nonce length")
            _require(len(self.offload_key) == SYMMETRIC_KEY_LEN, "bad offload key length")
            body += self.offload_nonce + self.offload_key
        return body

    @classmethod
    def unpack(cls, data: bytes) -> "KeySetupRequestBody":
        _require(len(data) >= 3, "truncated key-setup request")
        epoch_hint, flags = struct.unpack("!HB", data[:3])
        public_key, consumed = RsaPublicKey.from_wire(data[3:])
        offset = 3 + consumed
        offload_nonce = None
        offload_key = None
        if flags & 0x01:
            _require(
                len(data) >= offset + NONCE_LEN + SYMMETRIC_KEY_LEN,
                "truncated offload fields",
            )
            offload_nonce = data[offset:offset + NONCE_LEN]
            offload_key = data[offset + NONCE_LEN:offset + NONCE_LEN + SYMMETRIC_KEY_LEN]
        return cls(
            public_key=public_key,
            epoch_hint=epoch_hint,
            offload_nonce=offload_nonce,
            offload_key=offload_key,
        )

    def to_shim(self) -> ShimHeader:
        """Wrap the body in the generic shim container."""
        return ShimHeader(SHIM_TYPE_KEY_SETUP_REQUEST, 0, self.pack())


@dataclass(frozen=True)
class KeySetupResponseBody:
    """Body of a key-setup response.

    Encrypted mode (the normal outside-source case) carries
    ``E_S(nonce || Ks)``.  Plaintext mode serves §3.3 reverse-direction
    requests from customers *inside* the trusted domain, where "the customer
    may simply request a nonce and a symmetric key from a neutralizer without
    encryption".
    """

    epoch: int
    ciphertext: Optional[bytes] = None
    plaintext_nonce: Optional[bytes] = None
    plaintext_key: Optional[bytes] = None

    @property
    def is_plaintext(self) -> bool:
        """``True`` for the reverse-direction plaintext variant."""
        return self.plaintext_nonce is not None

    def pack(self) -> bytes:
        if self.is_plaintext:
            _require(self.plaintext_key is not None, "plaintext response missing key")
            return (
                struct.pack("!HB", self.epoch, RESPONSE_FLAG_PLAINTEXT)
                + self.plaintext_nonce
                + self.plaintext_key
            )
        _require(self.ciphertext is not None, "encrypted response missing ciphertext")
        return (
            struct.pack("!HBH", self.epoch, 0, len(self.ciphertext)) + self.ciphertext
        )

    @classmethod
    def unpack(cls, data: bytes) -> "KeySetupResponseBody":
        _require(len(data) >= 3, "truncated key-setup response")
        epoch, flags = struct.unpack("!HB", data[:3])
        if flags & RESPONSE_FLAG_PLAINTEXT:
            expected = 3 + NONCE_LEN + SYMMETRIC_KEY_LEN
            _require(len(data) >= expected, "truncated plaintext key-setup response")
            return cls(
                epoch=epoch,
                plaintext_nonce=data[3:3 + NONCE_LEN],
                plaintext_key=data[3 + NONCE_LEN:expected],
            )
        _require(len(data) >= 5, "truncated encrypted key-setup response")
        length = struct.unpack("!H", data[3:5])[0]
        _require(len(data) >= 5 + length, "truncated key-setup ciphertext")
        return cls(epoch=epoch, ciphertext=data[5:5 + length])

    def to_shim(self) -> ShimHeader:
        """Wrap the body in the generic shim container."""
        return ShimHeader(SHIM_TYPE_KEY_SETUP_RESPONSE, 0, self.pack())


@dataclass(frozen=True)
class NeutralizedDataBody:
    """Body of a forward-direction neutralized data packet.

    On the wire between the source and the neutralizer (i.e. what the
    discriminatory ISP can see) the body is: epoch, nonce, flags, the
    destination address encrypted under ``Ks``, and a short integrity tag.
    The refresh block (``nonce'``, ``Ks'``) is appended by the neutralizer
    only on packets that carried the key-request flag, and only travels inside
    the neutral ISP toward the destination.
    """

    epoch: int
    nonce: bytes
    encrypted_destination: bytes
    tag: bytes
    flags: int = 0
    refresh_nonce: Optional[bytes] = None
    refresh_key: Optional[bytes] = None
    next_protocol: int = 0

    _FIXED = struct.Struct(f"!H{NONCE_LEN}sB4s{TAG_LEN}s")

    def __post_init__(self) -> None:
        _require(len(self.nonce) == NONCE_LEN, "nonce must be 8 bytes")
        _require(len(self.encrypted_destination) == 4, "encrypted destination must be 4 bytes")
        _require(len(self.tag) == TAG_LEN, f"tag must be {TAG_LEN} bytes")

    @property
    def wants_key_refresh(self) -> bool:
        """``True`` when the source asked for a fresh key (Figure 2b message 3)."""
        return bool(self.flags & FLAG_KEY_REQUEST)

    @property
    def has_refresh(self) -> bool:
        """``True`` once the neutralizer stamped ``(nonce', Ks')`` into the body."""
        return bool(self.flags & FLAG_REFRESH_PRESENT)

    def with_refresh(self, refresh_nonce: bytes, refresh_key: bytes) -> "NeutralizedDataBody":
        """Return a copy carrying the stamped refresh block."""
        return NeutralizedDataBody(
            epoch=self.epoch,
            nonce=self.nonce,
            encrypted_destination=self.encrypted_destination,
            tag=self.tag,
            flags=self.flags | FLAG_REFRESH_PRESENT,
            refresh_nonce=refresh_nonce,
            refresh_key=refresh_key,
            next_protocol=self.next_protocol,
        )

    def tag_input(self) -> bytes:
        """The bytes covered by the integrity tag (everything except the tag/refresh)."""
        return struct.pack(
            f"!H{NONCE_LEN}sB4s", self.epoch, self.nonce, self.flags & FLAG_KEY_REQUEST,
            self.encrypted_destination,
        )

    def pack(self) -> bytes:
        body = self._FIXED.pack(
            self.epoch, self.nonce, self.flags, self.encrypted_destination, self.tag
        )
        if self.has_refresh:
            _require(self.refresh_nonce is not None and self.refresh_key is not None,
                     "refresh flag set without refresh fields")
            body += self.refresh_nonce + self.refresh_key
        return body

    @classmethod
    def unpack(cls, data: bytes, next_protocol: int = 0) -> "NeutralizedDataBody":
        _require(len(data) >= cls._FIXED.size, "truncated neutralized data body")
        epoch, nonce, flags, encrypted_destination, tag = cls._FIXED.unpack(
            data[:cls._FIXED.size]
        )
        refresh_nonce = None
        refresh_key = None
        if flags & FLAG_REFRESH_PRESENT:
            needed = cls._FIXED.size + NONCE_LEN + SYMMETRIC_KEY_LEN
            _require(len(data) >= needed, "truncated refresh block")
            refresh_nonce = data[cls._FIXED.size:cls._FIXED.size + NONCE_LEN]
            refresh_key = data[cls._FIXED.size + NONCE_LEN:needed]
        return cls(
            epoch=epoch,
            nonce=nonce,
            encrypted_destination=encrypted_destination,
            tag=tag,
            flags=flags,
            refresh_nonce=refresh_nonce,
            refresh_key=refresh_key,
            next_protocol=next_protocol,
        )

    def to_shim(self, next_protocol: int = 0) -> ShimHeader:
        """Wrap the body in the generic shim container."""
        return ShimHeader(SHIM_TYPE_NEUTRALIZED_DATA, next_protocol, self.pack())


@dataclass(frozen=True)
class ReturnDataBody:
    """Body of a return-direction packet.

    From the customer to the neutralizer, ``address_field`` holds the
    *initiator's* address in clear text (the neutralizer needs it to recompute
    ``Ks`` statelessly and to set the outer destination).  From the
    neutralizer to the initiator, ``address_field`` holds the *customer's*
    address encrypted under ``Ks`` and ``tag`` authenticates the swap.
    The :data:`FLAG_REVERSE_HELLO` flag marks §3.3 reverse-direction first
    packets whose payload carries the key transport for the outside peer.
    """

    epoch: int
    nonce: bytes
    address_field: bytes
    tag: bytes = b"\x00" * TAG_LEN
    flags: int = 0

    _FORMAT = struct.Struct(f"!H{NONCE_LEN}sB4s{TAG_LEN}s")

    def __post_init__(self) -> None:
        _require(len(self.nonce) == NONCE_LEN, "nonce must be 8 bytes")
        _require(len(self.address_field) == 4, "address field must be 4 bytes")
        _require(len(self.tag) == TAG_LEN, f"tag must be {TAG_LEN} bytes")

    @property
    def is_reverse_hello(self) -> bool:
        """``True`` for the first packet of a customer-initiated session."""
        return bool(self.flags & FLAG_REVERSE_HELLO)

    def tag_input(self) -> bytes:
        """The bytes covered by the integrity tag on the anonymized leg."""
        return struct.pack(
            f"!H{NONCE_LEN}sB4s", self.epoch, self.nonce, self.flags, self.address_field
        )

    def clear_address(self) -> IPv4Address:
        """Interpret the address field as a clear-text address (customer leg)."""
        return IPv4Address.from_bytes(self.address_field)

    def pack(self) -> bytes:
        return self._FORMAT.pack(self.epoch, self.nonce, self.flags, self.address_field, self.tag)

    @classmethod
    def unpack(cls, data: bytes) -> "ReturnDataBody":
        _require(len(data) >= cls._FORMAT.size, "truncated return data body")
        epoch, nonce, flags, address_field, tag = cls._FORMAT.unpack(data[:cls._FORMAT.size])
        return cls(epoch=epoch, nonce=nonce, address_field=address_field, tag=tag, flags=flags)

    def to_shim(self, next_protocol: int = 0) -> ShimHeader:
        """Wrap the body in the generic shim container."""
        return ShimHeader(SHIM_TYPE_RETURN_DATA, next_protocol, self.pack())


@dataclass(frozen=True)
class ReverseKeyRequestBody:
    """Body of a reverse-direction key request from an inside customer (§3.3).

    The customer names the outside peer it intends to talk to; the neutralizer
    binds the derived key to that peer's address so the later return traffic
    (peer → neutralizer → customer) can be processed statelessly.
    """

    peer_address: IPv4Address
    epoch_hint: int = 0

    _FORMAT = struct.Struct("!H4s")

    def pack(self) -> bytes:
        return self._FORMAT.pack(self.epoch_hint, self.peer_address.packed)

    @classmethod
    def unpack(cls, data: bytes) -> "ReverseKeyRequestBody":
        _require(len(data) >= cls._FORMAT.size, "truncated reverse key request")
        epoch_hint, peer = cls._FORMAT.unpack(data[:cls._FORMAT.size])
        return cls(peer_address=IPv4Address.from_bytes(peer), epoch_hint=epoch_hint)

    def to_shim(self) -> ShimHeader:
        """Wrap the body in the generic shim container."""
        return ShimHeader(SHIM_TYPE_REVERSE_KEY_REQUEST, 0, self.pack())


def parse_shim_body(shim: ShimHeader):
    """Dispatch a shim container to the right body parser."""
    parsers = {
        SHIM_TYPE_KEY_SETUP_REQUEST: KeySetupRequestBody.unpack,
        SHIM_TYPE_KEY_SETUP_RESPONSE: KeySetupResponseBody.unpack,
        SHIM_TYPE_RETURN_DATA: ReturnDataBody.unpack,
        SHIM_TYPE_REVERSE_KEY_REQUEST: ReverseKeyRequestBody.unpack,
    }
    if shim.shim_type == SHIM_TYPE_NEUTRALIZED_DATA:
        return NeutralizedDataBody.unpack(shim.body, next_protocol=shim.next_protocol)
    parser = parsers.get(shim.shim_type)
    if parser is None:
        raise ShimError(f"unknown shim type {shim.shim_type}")
    return parser(shim.body)


def expected_data_overhead_bytes() -> int:
    """Shim overhead of a forward data packet as seen by the access ISP.

    Generic shim container (4) + epoch (2) + nonce (8) + flags (1) +
    encrypted destination (4) + tag (4) = 23 bytes.  Together with the
    20-byte IP header, an 8-byte folded transport header and a 64-byte
    payload this lands within a few bytes of the paper's 112-byte figure.
    """
    return 4 + NeutralizedDataBody._FIXED.size
