"""Payload envelopes exchanged between the client and server host stacks.

The neutralizer never looks inside the payload; these formats are a contract
between the two modified end hosts (§2 assumes "host software can be modified
to support our design").  The envelope serves three needs:

* carry the end-to-end handshake piggybacked on the first data packet, so the
  extra key-setup round trip of §3.2 is the *only* extra round trip;
* fold the original transport header into the encrypted payload, so the
  access ISP cannot classify the application by port numbers;
* carry the key-refresh echo: the destination returns the ``(nonce', Ks')``
  the neutralizer stamped, "together with its packet payload", under the
  strong end-to-end encryption.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..exceptions import ShimError
from ..packet.headers import UdpHeader

# Envelope types (first byte of every shim-packet payload).
ENVELOPE_HANDSHAKE_DATA = 1
ENVELOPE_DATA = 2
ENVELOPE_PLAINTEXT = 3
ENVELOPE_REVERSE_HELLO = 4

# Inner-plaintext flag bits.
_INNER_HAS_UDP = 0x01
_INNER_HAS_REFRESH = 0x02

_REFRESH_LEN = 8 + 16


@dataclass(frozen=True)
class InnerPayload:
    """The decrypted contents of a data envelope."""

    payload: bytes
    udp: Optional[UdpHeader] = None
    refresh: Optional[Tuple[bytes, bytes]] = None  # (nonce', Ks')


def pack_inner(
    payload: bytes,
    udp: Optional[UdpHeader] = None,
    refresh: Optional[Tuple[bytes, bytes]] = None,
) -> bytes:
    """Encode the inner plaintext (transport header + refresh echo + data)."""
    flags = 0
    parts = [b""]
    if refresh is not None:
        nonce, key = refresh
        if len(nonce) != 8 or len(key) != 16:
            raise ShimError("refresh echo must be an 8-byte nonce and a 16-byte key")
        flags |= _INNER_HAS_REFRESH
        parts.append(nonce + key)
    if udp is not None:
        flags |= _INNER_HAS_UDP
        parts.append(udp.pack())
    parts[0] = struct.pack("!B", flags)
    parts.append(payload)
    return b"".join(parts)


def parse_inner(data: bytes) -> InnerPayload:
    """Decode bytes produced by :func:`pack_inner`."""
    if not data:
        raise ShimError("empty inner payload")
    flags = data[0]
    offset = 1
    refresh = None
    if flags & _INNER_HAS_REFRESH:
        if len(data) < offset + _REFRESH_LEN:
            raise ShimError("truncated refresh echo")
        refresh = (data[offset:offset + 8], data[offset + 8:offset + _REFRESH_LEN])
        offset += _REFRESH_LEN
    udp = None
    if flags & _INNER_HAS_UDP:
        udp = UdpHeader.unpack(data[offset:])
        offset += 8
    return InnerPayload(payload=data[offset:], udp=udp, refresh=refresh)


def pack_envelope(envelope_type: int, body: bytes, prefix: bytes = b"") -> bytes:
    """Encode an envelope.

    ``prefix`` carries the variable-length leading blob of handshake and
    reverse-hello envelopes (length-prefixed); plain data envelopes leave it
    empty.
    """
    if envelope_type in (ENVELOPE_DATA, ENVELOPE_PLAINTEXT):
        if prefix:
            raise ShimError("data envelopes take no prefix blob")
        return struct.pack("!B", envelope_type) + body
    if envelope_type in (ENVELOPE_HANDSHAKE_DATA, ENVELOPE_REVERSE_HELLO):
        if len(prefix) > 0xFFFF:
            raise ShimError("envelope prefix too long")
        return struct.pack("!BH", envelope_type, len(prefix)) + prefix + body
    raise ShimError(f"unknown envelope type {envelope_type}")


@dataclass(frozen=True)
class Envelope:
    """A parsed envelope."""

    envelope_type: int
    prefix: bytes
    body: bytes


def parse_envelope(data: bytes) -> Envelope:
    """Decode bytes produced by :func:`pack_envelope`."""
    if not data:
        raise ShimError("empty envelope")
    envelope_type = data[0]
    if envelope_type in (ENVELOPE_DATA, ENVELOPE_PLAINTEXT):
        return Envelope(envelope_type=envelope_type, prefix=b"", body=data[1:])
    if envelope_type in (ENVELOPE_HANDSHAKE_DATA, ENVELOPE_REVERSE_HELLO):
        if len(data) < 3:
            raise ShimError("truncated envelope header")
        prefix_len = struct.unpack("!H", data[1:3])[0]
        if len(data) < 3 + prefix_len:
            raise ShimError("truncated envelope prefix")
        return Envelope(
            envelope_type=envelope_type,
            prefix=data[3:3 + prefix_len],
            body=data[3 + prefix_len:],
        )
    raise ShimError(f"unknown envelope type {envelope_type}")
