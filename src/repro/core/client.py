"""The source-side host stack for hosts outside the neutral domain.

:class:`NeutralizedClientStack` installs itself into a host's egress/ingress
hooks so applications stay unmodified: they keep sending ordinary UDP packets
to the destination's real address, and the stack transparently

* runs the key setup with the destination's neutralizer (queueing application
  packets until ``Ks`` is established),
* encrypts the destination address into the shim and readdresses the packet
  to the neutralizer's anycast address,
* folds the transport header and payload into the end-to-end encryption
  (piggybacking the e2e handshake on the first data packet),
* asks for and adopts the key refresh (§3.2) so the weak one-time RSA key is
  retired after roughly two round-trip times,
* unwraps return packets (recovering the real peer address from the encrypted
  shim field) and handles reverse-direction hellos from customers inside the
  neutral domain (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.kdf import constant_time_equal, integrity_tag
from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..crypto.rsa import RsaKeyPair, RsaPublicKey
from ..dns.records import BootstrapInfo
from ..e2e.session import E2eInitiator, E2eSession, sessions_from_secret
from ..exceptions import KeySetupError, NeutralizerError, ShimError
from ..netsim.node import Host
from ..packet.addresses import IPv4Address
from ..packet.headers import (
    IPv4Header,
    PROTO_NEUTRALIZER_SHIM,
    PROTO_UDP,
    SHIM_TYPE_KEY_SETUP_RESPONSE,
    SHIM_TYPE_NEUTRALIZED_DATA,
    SHIM_TYPE_RETURN_DATA,
    UdpHeader,
)
from ..packet.packet import Packet
from .envelope import (
    ENVELOPE_DATA,
    ENVELOPE_HANDSHAKE_DATA,
    ENVELOPE_PLAINTEXT,
    ENVELOPE_REVERSE_HELLO,
    pack_envelope,
    pack_inner,
    parse_envelope,
    parse_inner,
)
from .keysetup import ActiveKey, KeySetupContext, KeySetupState
from .multihoming import FirstChoiceSelector, NeutralizerSelector
from .neutralizer import decrypt_address, encrypt_address
from .shim import (
    FLAG_KEY_REQUEST,
    NONCE_LEN,
    SYMMETRIC_KEY_LEN,
    TAG_LEN,
    KeySetupResponseBody,
    NeutralizedDataBody,
    ReturnDataBody,
)


@dataclass
class DestinationInfo:
    """What the client knows about a neutralized destination (from DNS, §3.1)."""

    address: IPv4Address
    neutralizer_addresses: List[IPv4Address] = field(default_factory=list)
    public_key: Optional[RsaPublicKey] = None
    name: str = ""

    @classmethod
    def from_bootstrap(cls, info: BootstrapInfo) -> "DestinationInfo":
        """Convert a DNS bootstrap result into destination info."""
        if info.address is None:
            raise NeutralizerError(f"bootstrap info for {info.name!r} has no address")
        return cls(
            address=info.address,
            neutralizer_addresses=list(info.neutralizer_addresses),
            public_key=info.public_key,
            name=info.name,
        )


@dataclass
class _PeerState:
    """Per-destination session state."""

    info: DestinationInfo
    neutralizer_address: Optional[IPv4Address] = None
    e2e_session: Optional[E2eSession] = None
    handshake_blob: Optional[bytes] = None
    #: Key override installed by a reverse-direction hello (§3.3): when set it
    #: is used instead of the per-neutralizer context key.
    key_override: Optional[ActiveKey] = None
    packets_sent: int = 0
    packets_received: int = 0


class NeutralizedClientStack:
    """Transparent neutralizer + e2e client for one outside host."""

    def __init__(
        self,
        host: Host,
        *,
        rng: Optional[RandomSource] = None,
        backend: Optional[str] = None,
        use_e2e: bool = True,
        selector: Optional[NeutralizerSelector] = None,
        one_time_key_bits: int = 512,
        host_keypair: Optional[RsaKeyPair] = None,
        key_setup_timeout_seconds: float = 1.0,
        key_setup_max_retries: int = 5,
    ) -> None:
        self.host = host
        self._rng = rng or DEFAULT_SOURCE
        self._backend = backend
        self.use_e2e = use_e2e
        self.selector = selector or FirstChoiceSelector()
        self.one_time_key_bits = one_time_key_bits
        self.key_setup_timeout_seconds = key_setup_timeout_seconds
        self.key_setup_max_retries = key_setup_max_retries
        #: The host's own long-term key pair, needed only to *receive*
        #: reverse-direction hellos (its public half is published in DNS).
        self.host_keypair = host_keypair
        self._destinations: Dict[IPv4Address, DestinationInfo] = {}
        self._peers: Dict[IPv4Address, _PeerState] = {}
        self._contexts: Dict[IPv4Address, KeySetupContext] = {}
        #: Every (neutralizer, nonce) -> key pair ever activated, so return
        #: packets keyed by an older nonce still decrypt after a refresh.
        self._nonce_keys: Dict[Tuple[IPv4Address, bytes], bytes] = {}
        self.counters: Dict[str, int] = {
            "packets_neutralized": 0,
            "packets_passed_through": 0,
            "packets_queued": 0,
            "key_setups_started": 0,
            "key_setups_completed": 0,
            "key_setup_retries": 0,
            "key_setups_abandoned": 0,
            "refreshes_adopted": 0,
            "returns_unwrapped": 0,
            "reverse_hellos_accepted": 0,
            "tag_failures": 0,
            "undecodable": 0,
        }
        host.egress_hooks.append(self._egress_hook)
        host.ingress_hooks.append(self._ingress_hook)

    # -- destination registration ---------------------------------------------------

    def register_destination(self, info: DestinationInfo) -> None:
        """Tell the stack that traffic to ``info.address`` must be neutralized."""
        if not info.neutralizer_addresses:
            raise NeutralizerError(
                f"destination {info.address} has no neutralizer addresses; "
                "traffic to it cannot be neutralized"
            )
        self._destinations[info.address] = info

    def register_from_bootstrap(self, bootstrap: BootstrapInfo) -> DestinationInfo:
        """Register a destination straight from a DNS bootstrap lookup."""
        info = DestinationInfo.from_bootstrap(bootstrap)
        self.register_destination(info)
        return info

    def is_neutralized_destination(self, address: IPv4Address) -> bool:
        """``True`` if traffic to ``address`` will be neutralized."""
        return address in self._destinations

    # -- key setup ------------------------------------------------------------------------

    def context_for(self, neutralizer_address: IPv4Address) -> KeySetupContext:
        """Return (creating if needed) the key context for one neutralizer."""
        if neutralizer_address not in self._contexts:
            self._contexts[neutralizer_address] = KeySetupContext(
                neutralizer_address=neutralizer_address,
                source_address=self.host.address,
                one_time_key_bits=self.one_time_key_bits,
            )
        return self._contexts[neutralizer_address]

    def _start_key_setup(self, context: KeySetupContext, *, attempt: int = 0) -> None:
        body = context.build_request(self._rng)
        context.request_sent_at = self.host.sim.now
        if attempt == 0:
            self.counters["key_setups_started"] += 1
        else:
            self.counters["key_setup_retries"] += 1
        request = Packet(
            ip=IPv4Header(
                source=self.host.address,
                destination=context.neutralizer_address,
                protocol=PROTO_NEUTRALIZER_SHIM,
            ),
            shim=body.to_shim(),
        )
        self.host.send_raw(request)
        # Key-setup packets can be lost (congestion, DoS floods, §3.6
        # discrimination against key setups); retry with a fixed timeout a
        # bounded number of times, then give up and report failure.
        self.host.sim.schedule(
            self.key_setup_timeout_seconds, self._maybe_retry_key_setup, context, attempt
        )

    def _maybe_retry_key_setup(self, context: KeySetupContext, attempt: int) -> None:
        if context.is_established or context.state != KeySetupState.PENDING:
            return
        if attempt + 1 >= self.key_setup_max_retries:
            self.counters["key_setups_abandoned"] += 1
            self.selector.record_outcome(context.neutralizer_address, failed=True)
            context.state = KeySetupState.IDLE
            context.pending_packets.clear()
            return
        self.selector.record_outcome(context.neutralizer_address, failed=True)
        self._start_key_setup(context, attempt=attempt + 1)

    def _handle_key_setup_response(self, packet: Packet) -> None:
        context = self._contexts.get(packet.source)
        if context is None or context.state != KeySetupState.PENDING:
            self.counters["undecodable"] += 1
            return
        body = KeySetupResponseBody.unpack(packet.shim.body)
        try:
            active = context.process_response(body)
        except KeySetupError:
            self.counters["undecodable"] += 1
            return
        self._nonce_keys[(context.neutralizer_address, active.nonce)] = active.key
        self.counters["key_setups_completed"] += 1
        self.selector.record_outcome(
            context.neutralizer_address, rtt=context.setup_rtt(self.host.sim.now)
        )
        for queued in context.drain_pending():
            self.host.send(queued)

    # -- egress path --------------------------------------------------------------------------

    def _egress_hook(self, packet: Packet, host: Host) -> Optional[Packet]:
        if packet.shim is not None or packet.destination not in self._destinations:
            self.counters["packets_passed_through"] += 1
            return packet
        info = self._destinations[packet.destination]
        peer = self._peers.setdefault(packet.destination, _PeerState(info=info))
        if peer.neutralizer_address is None:
            peer.neutralizer_address = self.selector.select(info.neutralizer_addresses)
        context = self.context_for(peer.neutralizer_address)

        if peer.key_override is None and not context.is_established:
            context.queue_packet(packet)
            self.counters["packets_queued"] += 1
            if context.state != KeySetupState.PENDING:
                self._start_key_setup(context)
            return None
        return self._wrap(packet, peer, context)

    def _wrap(self, packet: Packet, peer: _PeerState, context: KeySetupContext) -> Packet:
        active = peer.key_override or context.active
        assert active is not None
        envelope = self._build_envelope(packet, peer)
        flags = 0
        if peer.key_override is None and context.needs_refresh:
            flags |= FLAG_KEY_REQUEST
        encrypted_destination = encrypt_address(
            active.key, active.nonce, packet.destination, backend=self._backend
        )
        provisional = NeutralizedDataBody(
            epoch=active.epoch,
            nonce=active.nonce,
            encrypted_destination=encrypted_destination,
            tag=b"\x00" * TAG_LEN,
            flags=flags,
        )
        tag = integrity_tag(active.key, provisional.tag_input(), TAG_LEN)
        body = NeutralizedDataBody(
            epoch=active.epoch,
            nonce=active.nonce,
            encrypted_destination=encrypted_destination,
            tag=tag,
            flags=flags,
        )
        wrapped = Packet(
            ip=IPv4Header(
                source=self.host.address,
                destination=peer.neutralizer_address,
                protocol=PROTO_NEUTRALIZER_SHIM,
                dscp=packet.dscp,
                ttl=packet.ip.ttl,
            ),
            shim=body.to_shim(PROTO_UDP if packet.udp is not None else 0),
            payload=envelope,
            meta=dict(packet.meta),
        )
        peer.packets_sent += 1
        self.counters["packets_neutralized"] += 1
        return wrapped

    def _build_envelope(self, packet: Packet, peer: _PeerState) -> bytes:
        inner = pack_inner(packet.payload, udp=packet.udp)
        if not self.use_e2e or (peer.info.public_key is None and peer.e2e_session is None):
            return pack_envelope(ENVELOPE_PLAINTEXT, inner)
        if peer.e2e_session is None:
            initiator = E2eInitiator(rng=self._rng, backend=self._backend)
            peer.handshake_blob = initiator.create_handshake(peer.info.public_key)
            peer.e2e_session = initiator.establish()
        protected = peer.e2e_session.protect(inner, self._rng)
        if peer.handshake_blob is not None:
            blob, peer.handshake_blob = peer.handshake_blob, None
            return pack_envelope(ENVELOPE_HANDSHAKE_DATA, protected, prefix=blob)
        return pack_envelope(ENVELOPE_DATA, protected)

    # -- ingress path -------------------------------------------------------------------------------

    def _ingress_hook(self, packet: Packet, host: Host) -> Optional[Packet]:
        if packet.shim is None:
            return packet
        if packet.shim.shim_type == SHIM_TYPE_KEY_SETUP_RESPONSE:
            self._handle_key_setup_response(packet)
            return None
        if packet.shim.shim_type == SHIM_TYPE_RETURN_DATA:
            return self._handle_return_data(packet)
        if packet.shim.shim_type == SHIM_TYPE_NEUTRALIZED_DATA:
            # Outside hosts do not normally receive forward-direction packets;
            # leave them for other handlers (e.g. an offload helper).
            return packet
        return packet

    def _handle_return_data(self, packet: Packet) -> Optional[Packet]:
        try:
            body = ReturnDataBody.unpack(packet.shim.body)
        except ShimError:
            self.counters["undecodable"] += 1
            return None
        key = self._nonce_keys.get((packet.source, body.nonce))
        envelope = parse_envelope(packet.payload) if packet.payload else None

        if key is None and envelope is not None and (
            envelope.envelope_type == ENVELOPE_REVERSE_HELLO
        ):
            return self._handle_reverse_hello(packet, body, envelope)
        if key is None:
            self.counters["undecodable"] += 1
            return None

        expected = integrity_tag(key, body.tag_input(), TAG_LEN)
        if not constant_time_equal(expected, body.tag):
            self.counters["tag_failures"] += 1
            return None
        real_source = decrypt_address(
            key, body.nonce, body.address_field, return_direction=True, backend=self._backend
        )
        return self._deliver_inner(packet, envelope, real_source)

    def _deliver_inner(self, packet: Packet, envelope, real_source: IPv4Address) -> Optional[Packet]:
        peer = self._peers.get(real_source)
        if envelope is None:
            self.counters["undecodable"] += 1
            return None
        if envelope.envelope_type == ENVELOPE_PLAINTEXT:
            inner_bytes = envelope.body
        elif envelope.envelope_type in (ENVELOPE_DATA, ENVELOPE_HANDSHAKE_DATA):
            if peer is None or peer.e2e_session is None:
                self.counters["undecodable"] += 1
                return None
            inner_bytes = peer.e2e_session.unprotect(envelope.body)
        else:
            self.counters["undecodable"] += 1
            return None
        inner = parse_inner(inner_bytes)
        if inner.refresh is not None and peer is not None and peer.neutralizer_address is not None:
            self._adopt_refresh(peer.neutralizer_address, inner.refresh)
        if peer is not None:
            peer.packets_received += 1
        self.counters["returns_unwrapped"] += 1
        return self._rebuild_app_packet(packet, real_source, inner)

    def _adopt_refresh(self, neutralizer_address: IPv4Address,
                       refresh: Tuple[bytes, bytes]) -> None:
        context = self._contexts.get(neutralizer_address)
        if context is None or not context.is_established:
            return
        nonce, key = refresh
        if context.active is not None and context.active.nonce == nonce:
            return  # already adopted
        context.apply_refresh(nonce, key)
        self._nonce_keys[(neutralizer_address, nonce)] = key
        self.counters["refreshes_adopted"] += 1

    def _handle_reverse_hello(self, packet: Packet, body: ReturnDataBody, envelope) -> Optional[Packet]:
        """Accept a customer-initiated session (§3.3)."""
        if self.host_keypair is None:
            self.counters["undecodable"] += 1
            return None
        try:
            opened = self.host_keypair.private.decrypt(envelope.prefix)
        except Exception:
            self.counters["undecodable"] += 1
            return None
        if len(opened) != NONCE_LEN + SYMMETRIC_KEY_LEN:
            self.counters["undecodable"] += 1
            return None
        nonce, key = opened[:NONCE_LEN], opened[NONCE_LEN:]
        if nonce != body.nonce:
            self.counters["undecodable"] += 1
            return None
        real_source = decrypt_address(
            key, body.nonce, body.address_field, return_direction=True, backend=self._backend
        )
        # Register the peer so replies are neutralized via the same box/key.
        info = DestinationInfo(
            address=real_source, neutralizer_addresses=[packet.source]
        )
        self._destinations[real_source] = info
        _initiator_session, responder_session = sessions_from_secret(key, self._backend)
        peer = _PeerState(
            info=info,
            neutralizer_address=packet.source,
            e2e_session=responder_session,
            key_override=ActiveKey(nonce=nonce, key=key, epoch=body.epoch, refreshed=True),
        )
        self._peers[real_source] = peer
        self._nonce_keys[(packet.source, nonce)] = key
        self.counters["reverse_hellos_accepted"] += 1
        inner = parse_inner(responder_session.unprotect(envelope.body))
        peer.packets_received += 1
        return self._rebuild_app_packet(packet, real_source, inner)

    def _rebuild_app_packet(self, packet: Packet, real_source: IPv4Address, inner) -> Packet:
        rebuilt = Packet(
            ip=IPv4Header(
                source=real_source,
                destination=self.host.address,
                protocol=PROTO_UDP if inner.udp is not None else 0,
                dscp=packet.dscp,
            ),
            udp=inner.udp,
            payload=inner.payload,
            meta=dict(packet.meta),
            hops=list(packet.hops),
        )
        return rebuilt

    # -- introspection ---------------------------------------------------------------------------------

    def established_neutralizers(self) -> List[IPv4Address]:
        """Neutralizer addresses with an established key."""
        return [
            address for address, context in self._contexts.items() if context.is_established
        ]

    def active_key_for(self, neutralizer_address: IPv4Address) -> Optional[ActiveKey]:
        """Return the currently active key for one neutralizer (or None)."""
        context = self._contexts.get(neutralizer_address)
        return context.active if context is not None else None
