"""Deploying the neutralizer service into a topology.

The paper places neutralizers "at the boundary of [the neutral ISP's] domain";
"these neutralizers can either be inline boxes or part of a border router's
functionality", and "we use an anycast address to represent the neutralizer
service of an ISP".  :func:`deploy_neutralizer_service` does exactly that for
a simulated topology: it creates a :class:`NeutralizerDomain` with a shared
master key, instantiates one :class:`Neutralizer` per border router of the
named ISP, binds each to the anycast address as a router-local service, joins
them to the anycast group, and rebuilds routing so every other ISP routes the
anycast address to its *nearest* entry point into the neutral domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..exceptions import TopologyError
from ..netsim.topology import Topology
from ..packet.addresses import IPv4Address
from ..qos.intserv import DynamicAddressPool
from .master_key import MasterKeyManager
from .neutralizer import Neutralizer, NeutralizerConfig, NeutralizerDomain


@dataclass
class NeutralizerDeployment:
    """The result of deploying the service for one ISP."""

    isp_name: str
    domain: NeutralizerDomain
    neutralizers: List[Neutralizer] = field(default_factory=list)
    router_names: List[str] = field(default_factory=list)

    @property
    def anycast_address(self) -> IPv4Address:
        """The anycast address the ISP's customers publish in DNS."""
        return self.domain.anycast_address

    def total_counters(self) -> dict:
        """Aggregate protocol counters across the deployed boxes."""
        return self.domain.total_counters()

    def describe(self) -> str:
        """One-line summary used by examples and reports."""
        return (
            f"neutralizer service of {self.isp_name}: anycast {self.anycast_address}, "
            f"{len(self.neutralizers)} boxes on {', '.join(self.router_names)}"
        )


def deploy_neutralizer_service(
    topology: Topology,
    isp_name: str,
    anycast_address: IPv4Address,
    *,
    rng: Optional[RandomSource] = None,
    backend: Optional[str] = None,
    master_key_lifetime_seconds: Optional[float] = None,
    verify_tags: bool = True,
    dynamic_address_count: int = 0,
    rebuild_routes: bool = True,
) -> NeutralizerDeployment:
    """Deploy neutralizers on every border router of ``isp_name``."""
    isp = topology.isps.get(isp_name)
    router_names = isp.border_router_names or isp.router_names
    if not router_names:
        raise TopologyError(f"ISP {isp_name!r} has no routers to host neutralizers")
    random_source = rng or DEFAULT_SOURCE

    master_keys = None
    if master_key_lifetime_seconds is not None:
        master_keys = MasterKeyManager(
            random_source, lifetime_seconds=master_key_lifetime_seconds
        )

    dynamic_pool = None
    if dynamic_address_count > 0:
        dynamic_pool = DynamicAddressPool(
            [isp.allocate_address() for _ in range(dynamic_address_count)]
        )

    config = NeutralizerConfig(
        anycast_address=anycast_address,
        served_prefix=isp.prefix,
        backend=backend,
        verify_tags=verify_tags,
    )
    domain = NeutralizerDomain(
        config,
        master_keys=master_keys,
        rng=random_source,
        dynamic_address_pool=dynamic_pool,
    )
    isp.supports_neutralizer = True

    deployment = NeutralizerDeployment(isp_name=isp_name, domain=domain)
    for router_name in router_names:
        router = topology.router(router_name)
        neutralizer = domain.create_neutralizer(name=f"neutralizer@{router_name}")
        neutralizer.attach_to_router(router)
        topology.join_anycast_group(anycast_address, router_name)
        deployment.neutralizers.append(neutralizer)
        deployment.router_names.append(router_name)

    if rebuild_routes:
        topology.build_routes()
    return deployment
