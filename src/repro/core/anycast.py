"""Deploying the neutralizer service into a topology.

The paper places neutralizers "at the boundary of [the neutral ISP's] domain";
"these neutralizers can either be inline boxes or part of a border router's
functionality", and "we use an anycast address to represent the neutralizer
service of an ISP".  :func:`deploy_neutralizer_service` does exactly that for
a simulated topology: it creates a :class:`NeutralizerDomain` with a shared
master key, instantiates one :class:`Neutralizer` per border router of the
named ISP, binds each to the anycast address as a router-local service, joins
them to the anycast group, and rebuilds routing so every other ISP routes the
anycast address to its *nearest* entry point into the neutral domain.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..exceptions import TopologyError
from ..netsim.topology import Topology
from ..packet.addresses import IPv4Address
from ..qos.intserv import DynamicAddressPool
from .master_key import MasterKeyManager
from .neutralizer import Neutralizer, NeutralizerConfig, NeutralizerDomain


def arc_moved_fraction(positions_a: np.ndarray, owners_a: np.ndarray,
                       positions_b: np.ndarray, owners_b: np.ndarray,
                       space: int) -> float:
    """Key-space fraction whose owner differs between two ring states.

    The single implementation behind both :meth:`RingSnapshot.diff` and the
    fleet simulator's array fast path: every arc between consecutive
    boundary points (the union of both rings' points) has one owner per
    ring — probe each arc's upper end (inclusive successor semantics,
    wrapping the final arc past the last point to the first) and sum the
    lengths of arcs whose owners disagree.  Owner arrays are integer ids
    shared between the two rings; arc lengths are summed in exact Python
    ints, so an identity diff is exactly 0.0.
    """
    boundaries = np.concatenate([positions_a, positions_b])
    boundaries.sort(kind="stable")
    probes = np.concatenate([boundaries[1:], boundaries[:1]])

    def owners_at(positions: np.ndarray, owners: np.ndarray) -> np.ndarray:
        slots = np.searchsorted(positions, probes, side="left")
        slots[slots == positions.size] = 0
        return owners[slots]

    changed = np.flatnonzero(
        owners_at(positions_a, owners_a) != owners_at(positions_b, owners_b)
    )
    last = boundaries.size - 1
    moved = 0
    for index in changed:
        if index == last:  # the wrap-around arc past the final point
            moved += space - int(boundaries[last]) + int(boundaries[0])
        else:
            moved += int(boundaries[index + 1]) - int(boundaries[index])
    return moved / space


class ConsistentHashRing:
    """Consistent hashing of opaque keys onto named sites.

    IP anycast gives *topological* nearest-entry routing; inside a domain the
    operators still need a stable way to spread sources over boxes so caches
    and rate-limit state stay warm.  This ring hashes each site name onto
    ``replicas`` points of the 2^64 circle (blake2b keyed with ``salt``) and
    assigns a key to the first site point at or after the key's position.
    Removing a site moves only that site's keys — the property fleet failover
    relies on.  The position table is exposed so vectorized callers
    (:mod:`repro.scale.fleet`) can do the same lookup with ``searchsorted``.
    """

    _SPACE_BITS = 64

    def __init__(self, site_names: Optional[List[str]] = None, *, replicas: int = 64,
                 salt: bytes = b"neutralizer-ring") -> None:
        if replicas <= 0:
            raise TopologyError("ring replicas must be positive")
        self.replicas = replicas
        self.salt = salt
        self._points: List[Tuple[int, str]] = []
        for name in site_names or []:
            self.add_site(name)

    def _position(self, data: bytes) -> int:
        digest = hashlib.blake2b(data, digest_size=8, key=self.salt).digest()
        return int.from_bytes(digest, "big")

    def add_site(self, name: str) -> None:
        """Insert ``replicas`` points for ``name`` (idempotent)."""
        if any(owner == name for _, owner in self._points):
            return
        for replica in range(self.replicas):
            point = (self._position(f"{name}#{replica}".encode()), name)
            self._points.insert(bisect_left(self._points, point), point)

    def remove_site(self, name: str) -> None:
        """Withdraw every point of ``name`` (simulated failure or drain)."""
        self._points = [point for point in self._points if point[1] != name]

    @property
    def site_names(self) -> List[str]:
        """Distinct member sites, sorted."""
        return sorted({owner for _, owner in self._points})

    def __len__(self) -> int:
        return len(self._points)

    def key_position(self, key: Union[str, bytes]) -> int:
        """Ring position of ``key`` (same space as :meth:`table` positions)."""
        data = key.encode() if isinstance(key, str) else key
        return self._position(data)

    def site_for(self, key: Union[str, bytes]) -> str:
        """The site owning ``key``: first point clockwise from its position."""
        if not self._points:
            raise TopologyError("hash ring has no sites")
        index = bisect_left(self._points, (self.key_position(key), ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def table(self) -> Tuple[List[int], List[str]]:
        """Sorted ring positions and their owning sites, for vectorized lookup."""
        positions = [position for position, _ in self._points]
        owners = [owner for _, owner in self._points]
        return positions, owners

    def snapshot(self) -> "RingSnapshot":
        """An immutable copy of the current ring, for later diffing."""
        positions, owners = self.table()
        return RingSnapshot(positions=tuple(positions), owners=tuple(owners))


@dataclass(frozen=True)
class RingSnapshot:
    """A frozen consistent-hash ring state: sorted positions and their owners.

    Fleet simulations take a snapshot before and after a membership change and
    :meth:`diff` the two to account for *remap churn* — the fraction of the
    key space whose owning site changed.  Consistent hashing's contract is
    that removing one site moves only that site's arcs, so the diff of a
    single failure equals the failed site's owned fraction.
    """

    positions: Tuple[int, ...]
    owners: Tuple[str, ...]

    _SPACE = 1 << ConsistentHashRing._SPACE_BITS

    @property
    def site_names(self) -> Tuple[str, ...]:
        """Distinct member sites, sorted."""
        return tuple(sorted(set(self.owners)))

    def owner_at(self, position: int) -> str:
        """The site owning ``position``: first ring point clockwise from it."""
        if not self.positions:
            raise TopologyError("snapshot of an empty ring has no owners")
        index = bisect_left(self.positions, position)
        if index == len(self.positions):
            index = 0
        return self.owners[index]

    def owned_fraction(self, site: str) -> float:
        """Fraction of the key space currently owned by ``site``."""
        if not self.positions:
            raise TopologyError("snapshot of an empty ring has no owners")
        total = 0
        previous = 0
        for position, owner in zip(self.positions, self.owners):
            if owner == site:
                total += position - previous
            previous = position
        # The wrap-around arc past the last point belongs to the first point.
        if self.owners[0] == site:
            total += self._SPACE - previous
        return total / self._SPACE

    def diff(self, other: "RingSnapshot") -> "RingDiff":
        """Churn between two snapshots: moved key-space fraction, site delta.

        The arc walk itself is :func:`arc_moved_fraction` — a handful of
        vectorized passes over ~10^3 points, cheap enough for fleet
        simulations that diff the ring on every membership change.
        """
        if not self.positions or not other.positions:
            raise TopologyError("cannot diff an empty ring snapshot")
        # Shared integer ids so owner arrays compare without string work.
        names = {name: i for i, name in enumerate(dict.fromkeys(self.owners + other.owners))}
        moved = arc_moved_fraction(
            np.asarray(self.positions, dtype=np.uint64),
            np.asarray([names[o] for o in self.owners], dtype=np.int64),
            np.asarray(other.positions, dtype=np.uint64),
            np.asarray([names[o] for o in other.owners], dtype=np.int64),
            self._SPACE,
        )
        before, after = set(self.owners), set(other.owners)
        return RingDiff(
            moved_fraction=moved,
            sites_added=tuple(sorted(after - before)),
            sites_removed=tuple(sorted(before - after)),
        )


@dataclass(frozen=True)
class RingDiff:
    """The churn one ring membership change caused."""

    #: Fraction of the 2^64 key space whose owning site changed.
    moved_fraction: float
    sites_added: Tuple[str, ...]
    sites_removed: Tuple[str, ...]

    @property
    def changed(self) -> bool:
        """Whether anything moved at all."""
        return self.moved_fraction > 0 or bool(self.sites_added) or bool(self.sites_removed)


@dataclass
class NeutralizerDeployment:
    """The result of deploying the service for one ISP."""

    isp_name: str
    domain: NeutralizerDomain
    neutralizers: List[Neutralizer] = field(default_factory=list)
    router_names: List[str] = field(default_factory=list)

    @property
    def anycast_address(self) -> IPv4Address:
        """The anycast address the ISP's customers publish in DNS."""
        return self.domain.anycast_address

    def total_counters(self) -> dict:
        """Aggregate protocol counters across the deployed boxes."""
        return self.domain.total_counters()

    def describe(self) -> str:
        """One-line summary used by examples and reports."""
        return (
            f"neutralizer service of {self.isp_name}: anycast {self.anycast_address}, "
            f"{len(self.neutralizers)} boxes on {', '.join(self.router_names)}"
        )


def deploy_neutralizer_service(
    topology: Topology,
    isp_name: str,
    anycast_address: IPv4Address,
    *,
    rng: Optional[RandomSource] = None,
    backend: Optional[str] = None,
    master_key_lifetime_seconds: Optional[float] = None,
    verify_tags: bool = True,
    dynamic_address_count: int = 0,
    rebuild_routes: bool = True,
) -> NeutralizerDeployment:
    """Deploy neutralizers on every border router of ``isp_name``."""
    isp = topology.isps.get(isp_name)
    router_names = isp.border_router_names or isp.router_names
    if not router_names:
        raise TopologyError(f"ISP {isp_name!r} has no routers to host neutralizers")
    random_source = rng or DEFAULT_SOURCE

    master_keys = None
    if master_key_lifetime_seconds is not None:
        master_keys = MasterKeyManager(
            random_source, lifetime_seconds=master_key_lifetime_seconds
        )

    dynamic_pool = None
    if dynamic_address_count > 0:
        dynamic_pool = DynamicAddressPool(
            [isp.allocate_address() for _ in range(dynamic_address_count)]
        )

    config = NeutralizerConfig(
        anycast_address=anycast_address,
        served_prefix=isp.prefix,
        backend=backend,
        verify_tags=verify_tags,
    )
    domain = NeutralizerDomain(
        config,
        master_keys=master_keys,
        rng=random_source,
        dynamic_address_pool=dynamic_pool,
    )
    isp.supports_neutralizer = True

    deployment = NeutralizerDeployment(isp_name=isp_name, domain=domain)
    for router_name in router_names:
        router = topology.router(router_name)
        neutralizer = domain.create_neutralizer(name=f"neutralizer@{router_name}")
        neutralizer.attach_to_router(router)
        topology.join_anycast_group(anycast_address, router_name)
        deployment.neutralizers.append(neutralizer)
        deployment.router_names.append(router_name)

    if rebuild_routes:
        topology.build_routes()
    return deployment
