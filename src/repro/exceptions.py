"""Exception hierarchy shared by every subpackage of :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class.  Subsystems define narrower classes here rather
than locally so that cross-subsystem code (the simulator driving the
neutralizer, the benchmark harness driving both) does not have to import deep
modules just to handle their errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


# ---------------------------------------------------------------------------
# Crypto
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeySizeError(CryptoError):
    """A key of an unsupported or insecure size was supplied."""


class PaddingError(CryptoError):
    """Ciphertext padding was malformed (wrong key or corrupted data)."""


class DecryptionError(CryptoError):
    """Decryption failed (wrong key, truncated or corrupted ciphertext)."""


class SignatureError(CryptoError):
    """A signature or integrity tag did not verify."""


# ---------------------------------------------------------------------------
# Packet model
# ---------------------------------------------------------------------------


class PacketError(ReproError):
    """Base class for packet construction and parsing failures."""


class HeaderError(PacketError):
    """A header field was out of range or a serialized header malformed."""


class AddressError(PacketError):
    """An IP address or prefix string could not be parsed or is invalid."""


class TruncatedPacketError(PacketError):
    """The byte buffer ended before the advertised length."""


# ---------------------------------------------------------------------------
# Simulator
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulator failures."""


class TopologyError(SimulationError):
    """The topology description is inconsistent (unknown node, no route...)."""


class RoutingError(SimulationError):
    """No route exists for a destination, or a routing table is malformed."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or the engine was misused."""


# ---------------------------------------------------------------------------
# DNS
# ---------------------------------------------------------------------------


class DnsError(ReproError):
    """Base class for DNS substrate failures."""


class NxDomainError(DnsError):
    """The queried name does not exist."""


class DnsTimeoutError(DnsError):
    """The resolver did not answer within the configured budget."""


# ---------------------------------------------------------------------------
# Neutralizer protocol
# ---------------------------------------------------------------------------


class NeutralizerError(ReproError):
    """Base class for neutralizer protocol failures."""


class KeySetupError(NeutralizerError):
    """The key-setup exchange failed (bad response, expired master key...)."""


class ShimError(NeutralizerError):
    """A shim header was missing, malformed, or failed to decrypt."""


class MasterKeyExpiredError(NeutralizerError):
    """A packet referenced a master-key epoch the neutralizer no longer holds."""


class OffloadError(NeutralizerError):
    """RSA offloading to a customer failed or no helper was available."""


# ---------------------------------------------------------------------------
# QoS
# ---------------------------------------------------------------------------


class QosError(ReproError):
    """Base class for QoS subsystem failures."""


class ReservationError(QosError):
    """An IntServ reservation could not be admitted or does not exist."""


# ---------------------------------------------------------------------------
# Applications / analysis
# ---------------------------------------------------------------------------


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""


class ExperimentError(ReproError):
    """An experiment harness invariant was violated."""
