"""Measurement helpers: throughput meters and flow-level summaries.

The per-node/per-link raw counters live in :mod:`repro.netsim.stats`; this
module aggregates them into the quantities the experiment tables report —
packets/second of a processing fast path, per-flow delivery statistics, and
simple comparisons between experiment arms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional


@dataclass
class ThroughputResult:
    """Result of a timed fast-path measurement."""

    label: str
    operations: int
    elapsed_seconds: float

    @property
    def per_second(self) -> float:
        """Operations per second (the paper's kpps figures)."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.operations / self.elapsed_seconds

    @property
    def kpps(self) -> float:
        """Thousands of operations per second."""
        return self.per_second / 1000.0


def measure_throughput(label: str, operation: Callable[[], None], *,
                       iterations: int, warmup: int = 10) -> ThroughputResult:
    """Time ``operation`` over ``iterations`` calls (wall clock, after warmup).

    This is the in-process analogue of the paper's "output packets at N kpps"
    measurement: the absolute numbers depend on the substrate (Python vs a
    Click kernel module), the *ratios* between labels are what EXPERIMENTS.md
    compares against the paper.
    """
    for _ in range(warmup):
        operation()
    start = time.perf_counter()
    for _ in range(iterations):
        operation()
    elapsed = time.perf_counter() - start
    return ThroughputResult(label=label, operations=iterations, elapsed_seconds=elapsed)


@dataclass
class FlowSummary:
    """Delivery summary of one labelled flow."""

    flow_id: str
    packets_sent: int
    packets_received: int
    mean_latency_seconds: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        """Fraction of sent packets that arrived."""
        if self.packets_sent == 0:
            return 0.0
        return self.packets_received / self.packets_sent

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets that were lost."""
        return 1.0 - self.delivery_ratio


class FlowTracker:
    """Counts sends and receipts per flow id (attach at sender and receiver)."""

    def __init__(self) -> None:
        self._sent: Dict[str, int] = {}
        self._received: Dict[str, int] = {}
        self._latency_sum: Dict[str, float] = {}

    def record_sent(self, flow_id: str) -> None:
        """Account one sent packet for ``flow_id``."""
        self._sent[flow_id] = self._sent.get(flow_id, 0) + 1

    def record_received(self, flow_id: str, latency_seconds: float = 0.0) -> None:
        """Account one received packet for ``flow_id``."""
        self._received[flow_id] = self._received.get(flow_id, 0) + 1
        self._latency_sum[flow_id] = self._latency_sum.get(flow_id, 0.0) + latency_seconds

    def summary(self, flow_id: str) -> FlowSummary:
        """Summary for one flow."""
        received = self._received.get(flow_id, 0)
        mean_latency = (
            self._latency_sum.get(flow_id, 0.0) / received if received else 0.0
        )
        return FlowSummary(
            flow_id=flow_id,
            packets_sent=self._sent.get(flow_id, 0),
            packets_received=received,
            mean_latency_seconds=mean_latency,
        )

    def summaries(self) -> List[FlowSummary]:
        """Summaries for every flow that sent at least one packet."""
        return [self.summary(flow_id) for flow_id in sorted(self._sent)]


@dataclass
class ComparisonRow:
    """One row of an A/B comparison table."""

    metric: str
    baseline: float
    treatment: float

    @property
    def ratio(self) -> float:
        """treatment / baseline (inf when the baseline is zero)."""
        if self.baseline == 0:
            return float("inf")
        return self.treatment / self.baseline


def compare(metrics: Dict[str, float], baseline: Dict[str, float]) -> List[ComparisonRow]:
    """Build comparison rows for every metric present in both dictionaries."""
    rows = []
    for name in sorted(set(metrics) & set(baseline)):
        rows.append(ComparisonRow(metric=name, baseline=baseline[name], treatment=metrics[name]))
    return rows
