"""Experiment runners: one function per reproduced result (E1–E11, plus the
fleet-scale campaigns E12–E15).

Each runner builds the workload, runs it, and returns a small result object
plus an :class:`repro.analysis.report.ExperimentReport`.  The benchmark
targets under ``benchmarks/`` and the example scripts call these functions, so
the numbers quoted in EXPERIMENTS.md always come from exactly this code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from ..scale.runner import (
        FleetScaleResult,
        FrontierResult,
        LatencyFrontierResult,
        StochasticCampaignResult,
        TimelineCampaignResult,
    )
    from ..scale.validate import CrossValidationResult, LatencyValidationResult

from ..apps.voip import VoipCall, VoipQualityReport, VoipReceiver
from ..apps.workloads import ConstantRateSource, KeySetupFlood
from ..baselines.onion import OnionClient, OnionRelay, compare_resources
from ..baselines.vanilla import VanillaForwarder
from ..core.anycast import deploy_neutralizer_service
from ..core.api import neutralize_isp
from ..core.keysetup import KeySetupContext, attacker_window_seconds
from ..core.multihoming import (
    AdaptiveSelector,
    RoundRobinSelector,
    WeightedSelector,
)
from ..core.neutralizer import NeutralizerConfig, NeutralizerDomain, encrypt_address
from ..core.shim import NONCE_LEN, TAG_LEN, KeySetupRequestBody, NeutralizedDataBody
from ..crypto.backend import fast_backend_available, get_cipher
from ..crypto.kdf import derive_symmetric_key, derive_symmetric_key_aes, integrity_tag
from ..crypto.randomness import DeterministicRandom
from ..crypto.rsa import (
    decryption_cost_multiplications,
    encryption_cost_multiplications,
    estimate_factoring_cost,
    generate_keypair,
    symmetric_equivalent_bits,
)
from ..defense.pushback import deploy_pushback
from ..discrimination.isp import install_policy
from ..discrimination.policy import (
    DiscriminationPolicy,
    degrade_competitor_policy,
    drop_key_setup_policy,
    throttle_encrypted_policy,
    throttle_neutral_isp_policy,
)
from ..dns.records import BootstrapInfo
from ..packet.addresses import IPv4Address, Prefix, ip
from ..packet.builder import udp_packet
from ..packet.dscp import Dscp
from ..packet.headers import IPv4Header, PROTO_NEUTRALIZER_SHIM
from ..packet.packet import Packet
from ..qos.schedulers import FifoScheduler, PriorityScheduler
from ..units import mbps, msec
from .metrics import ThroughputResult, measure_throughput
from .report import ExperimentReport
from .scenarios import COGENT_ANYCAST, build_dumbbell, build_figure1

# ---------------------------------------------------------------------------
# Shared fixtures
# ---------------------------------------------------------------------------


def _standalone_domain(seed: int = 1, backend: Optional[str] = None,
                       verify_tags: bool = True) -> NeutralizerDomain:
    """A neutralizer domain detached from any topology (fast-path benchmarks)."""
    rng = DeterministicRandom(seed)
    config = NeutralizerConfig(
        anycast_address=ip("10.200.0.1"),
        served_prefix=Prefix.parse("10.3.0.0/16"),
        backend=backend,
        verify_tags=verify_tags,
    )
    return NeutralizerDomain(config, rng=rng)


def make_key_setup_packet(source: IPv4Address, anycast: IPv4Address,
                          rng: DeterministicRandom, key_bits: int = 512) -> Packet:
    """A syntactically valid key-setup request packet."""
    keypair = generate_keypair(key_bits, rng)
    body = KeySetupRequestBody(public_key=keypair.public)
    return Packet(
        ip=IPv4Header(source=source, destination=anycast, protocol=PROTO_NEUTRALIZER_SHIM),
        shim=body.to_shim(),
    )


def make_neutralized_data_packet(
    domain: NeutralizerDomain,
    source: IPv4Address,
    destination: IPv4Address,
    payload_bytes: int = 64,
    backend: Optional[str] = None,
) -> Packet:
    """A forward data packet exactly as an established source would emit it."""
    epoch = domain.master_keys.current_epoch
    nonce = domain.rng.nonce(NONCE_LEN)
    key = domain.master_keys.derive_key(nonce, source, epoch)
    encrypted_destination = encrypt_address(key, nonce, destination, backend=backend)
    provisional = NeutralizedDataBody(
        epoch=epoch,
        nonce=nonce,
        encrypted_destination=encrypted_destination,
        tag=b"\x00" * TAG_LEN,
    )
    body = NeutralizedDataBody(
        epoch=epoch,
        nonce=nonce,
        encrypted_destination=encrypted_destination,
        tag=integrity_tag(key, provisional.tag_input(), TAG_LEN),
    )
    return Packet(
        ip=IPv4Header(source=source, destination=domain.anycast_address,
                      protocol=PROTO_NEUTRALIZER_SHIM),
        shim=body.to_shim(),
        payload=b"u" * payload_bytes,
    )


# ---------------------------------------------------------------------------
# E1: key-setup throughput
# ---------------------------------------------------------------------------


@dataclass
class KeySetupThroughputResult:
    """E1 outputs."""

    throughput: ThroughputResult
    master_key_lifetime_seconds: float
    report: ExperimentReport

    @property
    def sources_served_per_lifetime(self) -> float:
        """How many distinct sources one box can bootstrap per master-key lifetime."""
        return self.throughput.per_second * self.master_key_lifetime_seconds


def run_key_setup_throughput(iterations: int = 200, *, seed: int = 11,
                             master_key_lifetime_seconds: float = 3600.0,
                             backend: Optional[str] = None) -> KeySetupThroughputResult:
    """E1: rate at which a neutralizer answers key-setup requests."""
    domain = _standalone_domain(seed, backend=backend)
    neutralizer = domain.create_neutralizer("bench")
    rng = DeterministicRandom(seed + 1)
    packet = make_key_setup_packet(ip("10.1.0.7"), domain.anycast_address, rng)

    result = measure_throughput(
        "key-setup responses", lambda: neutralizer.process(packet), iterations=iterations
    )
    report = ExperimentReport("E1", "Key-setup throughput (paper: 24.4 kpps, 88 M sources/hour)")
    derived = result.per_second * master_key_lifetime_seconds
    report.add_table(
        ["metric", "value"],
        [
            ["key-setup responses / s", result.per_second],
            ["master key lifetime (s)", master_key_lifetime_seconds],
            ["sources served per lifetime", derived],
        ],
    )
    report.add_note(
        "absolute rates reflect the Python substrate; the paper's point — one cheap "
        "RSA encryption per source per master-key lifetime — is preserved"
    )
    return KeySetupThroughputResult(
        throughput=result,
        master_key_lifetime_seconds=master_key_lifetime_seconds,
        report=report,
    )


# ---------------------------------------------------------------------------
# E2: data-path throughput vs vanilla forwarding
# ---------------------------------------------------------------------------


@dataclass
class DataPathThroughputResult:
    """E2 outputs."""

    neutralized: ThroughputResult
    vanilla: ThroughputResult
    neutralized_packet_bytes: int
    vanilla_packet_bytes: int
    report: ExperimentReport

    @property
    def relative_throughput(self) -> float:
        """Neutralized throughput as a fraction of vanilla (paper: 422/600 ≈ 0.70)."""
        return self.neutralized.per_second / self.vanilla.per_second


def run_datapath_throughput(iterations: int = 2000, *, payload_bytes: int = 64,
                            seed: int = 12, backend: Optional[str] = None,
                            verify_tags: bool = True) -> DataPathThroughputResult:
    """E2: forwarding rate of neutralized packets vs same-size vanilla packets."""
    if backend is None and fast_backend_available():
        backend = "fast"
    domain = _standalone_domain(seed, backend=backend, verify_tags=verify_tags)
    neutralizer = domain.create_neutralizer("bench")
    source = ip("10.1.0.9")
    destination = ip("10.3.0.5")
    data_packet = make_neutralized_data_packet(domain, source, destination,
                                               payload_bytes, backend)
    vanilla_packet = udp_packet(source, destination, b"u" * payload_bytes)
    forwarder = VanillaForwarder()

    neutralized = measure_throughput(
        "neutralized forwarding", lambda: neutralizer.process(data_packet),
        iterations=iterations,
    )
    vanilla = measure_throughput(
        "vanilla forwarding", lambda: forwarder.process(vanilla_packet), iterations=iterations
    )
    report = ExperimentReport(
        "E2", "Data-path throughput (paper: 422 kpps neutralized vs 600 kpps vanilla)"
    )
    report.add_table(
        ["path", "packets/s", "packet bytes"],
        [
            ["vanilla IP forwarding", vanilla.per_second, vanilla_packet.size_bytes],
            ["neutralized forwarding", neutralized.per_second, data_packet.size_bytes],
            ["neutralized / vanilla", neutralized.per_second / vanilla.per_second, ""],
        ],
    )
    report.add_note("paper ratio: 422/600 = 0.70; shape check is that the ratio stays "
                    "well above the key-setup path and below 1.0")
    return DataPathThroughputResult(
        neutralized=neutralized,
        vanilla=vanilla,
        neutralized_packet_bytes=data_packet.size_bytes,
        vanilla_packet_bytes=vanilla_packet.size_bytes,
        report=report,
    )


# ---------------------------------------------------------------------------
# E3: raw crypto operation rates
# ---------------------------------------------------------------------------


@dataclass
class CryptoRatesResult:
    """E3 outputs."""

    rates: Dict[str, ThroughputResult]
    report: ExperimentReport


def run_crypto_rates(iterations: int = 2000, *, seed: int = 13,
                     rsa_iterations: int = 100) -> CryptoRatesResult:
    """E3: per-primitive operation rates (the paper's openssl-speed analogue)."""
    rng = DeterministicRandom(seed)
    key = rng.random_bytes(16)
    block = rng.random_bytes(16)
    master = rng.random_bytes(16)
    nonce = rng.nonce()
    source = ip("10.1.0.3").packed
    keypair512 = generate_keypair(512, rng)
    keypair1024 = generate_keypair(1024, rng)
    payload = rng.random_bytes(24)
    ciphertext512 = keypair512.public.encrypt(payload, rng)

    rates: Dict[str, ThroughputResult] = {}
    pure_cipher = get_cipher(key, backend="pure")
    rates["aes-block (pure python)"] = measure_throughput(
        "aes pure", lambda: pure_cipher.encrypt_block(block), iterations=iterations
    )
    if fast_backend_available():
        fast_cipher = get_cipher(key, backend="fast")
        rates["aes-block (fast backend)"] = measure_throughput(
            "aes fast", lambda: fast_cipher.encrypt_block(block), iterations=iterations * 5
        )
    rates["Ks derivation (HMAC)"] = measure_throughput(
        "kdf hmac", lambda: derive_symmetric_key(master, nonce, source), iterations=iterations
    )
    rates["Ks derivation (AES CBC-MAC)"] = measure_throughput(
        "kdf aes", lambda: derive_symmetric_key_aes(master, nonce, source,
                                                    backend="fast" if fast_backend_available() else None),
        iterations=iterations,
    )
    rates["rsa-512 encrypt (e=3)"] = measure_throughput(
        "rsa enc", lambda: keypair512.public.encrypt(payload, rng), iterations=rsa_iterations
    )
    rates["rsa-512 decrypt (CRT)"] = measure_throughput(
        "rsa dec", lambda: keypair512.private.decrypt(ciphertext512), iterations=rsa_iterations
    )
    rates["rsa-1024 encrypt (e=3)"] = measure_throughput(
        "rsa1024 enc", lambda: keypair1024.public.encrypt(payload, rng), iterations=rsa_iterations
    )

    report = ExperimentReport("E3", "Raw crypto rates (paper: 2.35 M AES ops/s on the Opteron)")
    report.add_table(
        ["operation", "ops/s"],
        [[name, result.per_second] for name, result in rates.items()],
    )
    report.add_note("the data-path conclusion requires AES+hash rates to exceed the "
                    "forwarding rate and RSA encryption to exceed RSA decryption")
    return CryptoRatesResult(rates=rates, report=report)


# ---------------------------------------------------------------------------
# E4: discrimination prevention (the Figure-1 / §1 scenario)
# ---------------------------------------------------------------------------


@dataclass
class DiscriminationArm:
    """One arm of the E4 experiment."""

    name: str
    competitor_report: VoipQualityReport
    own_service_report: VoipQualityReport
    att_saw_competitor_address: bool


@dataclass
class DiscriminationResult:
    """E4 outputs."""

    arms: List[DiscriminationArm]
    report: ExperimentReport

    def arm(self, name: str) -> DiscriminationArm:
        """Look up one arm by name."""
        for candidate in self.arms:
            if candidate.name == name:
                return candidate
        raise KeyError(name)


def _run_voip_arm(*, neutralized: bool, discriminate: bool, seed: int,
                  call_seconds: float, use_e2e: bool = True) -> DiscriminationArm:
    scenario = build_figure1(neutralized=neutralized, use_e2e=use_e2e, seed=seed)
    topology = scenario.topology
    vonage = topology.host("vonage")
    att_voip = topology.host("att-voip")
    ann = topology.host("ann")
    ben = topology.host("ben")

    if discriminate:
        policy = degrade_competitor_policy(vonage.address)
        install_policy(topology, "att", policy, rng=scenario.rng)

    competitor_receiver = VoipReceiver(vonage)
    competitor_call = VoipCall(ann, vonage.address, competitor_receiver,
                               name="ann->vonage", duration_seconds=call_seconds)
    own_receiver = VoipReceiver(att_voip)
    own_call = VoipCall(ben, att_voip.address, own_receiver,
                        name="ben->att-voip", duration_seconds=call_seconds)
    competitor_call.start()
    own_call.start()
    topology.run(call_seconds + 2.0)

    label = f"{'neutralized' if neutralized else 'plain'}+{'discrimination' if discriminate else 'no-discrimination'}"
    return DiscriminationArm(
        name=label,
        competitor_report=competitor_call.report(),
        own_service_report=own_call.report(),
        att_saw_competitor_address=scenario.att_trace.ever_saw_address(vonage.address),
    )


def run_discrimination_experiment(*, call_seconds: float = 4.0,
                                  seed: int = 2006) -> DiscriminationResult:
    """E4: competitor VoIP quality across discrimination × neutralizer arms."""
    arms = [
        _run_voip_arm(neutralized=False, discriminate=False, seed=seed, call_seconds=call_seconds),
        _run_voip_arm(neutralized=False, discriminate=True, seed=seed, call_seconds=call_seconds),
        _run_voip_arm(neutralized=True, discriminate=True, seed=seed, call_seconds=call_seconds),
        _run_voip_arm(neutralized=True, discriminate=False, seed=seed, call_seconds=call_seconds),
    ]
    report = ExperimentReport(
        "E4", "Discrimination prevention: competitor VoIP MOS (Figure-1 scenario)"
    )
    report.add_table(
        ["arm", "competitor MOS", "competitor loss", "own-service MOS",
         "AT&T saw competitor addr"],
        [
            [arm.name, arm.competitor_report.mos, arm.competitor_report.loss_rate,
             arm.own_service_report.mos, arm.att_saw_competitor_address]
            for arm in arms
        ],
    )
    report.add_note("the paper's claim: with the neutralizer the discriminatory ISP cannot "
                    "deterministically harm the competitor, so its MOS matches the clean arm")
    return DiscriminationResult(arms=arms, report=report)


# ---------------------------------------------------------------------------
# E5: residual discrimination (§3.6)
# ---------------------------------------------------------------------------


@dataclass
class ResidualArm:
    """One residual-discrimination policy arm."""

    name: str
    competitor_report: VoipQualityReport
    collateral_delivery_ratio: float
    own_customer_report: VoipQualityReport


@dataclass
class ResidualResult:
    """E5 outputs."""

    arms: List[ResidualArm]
    report: ExperimentReport


def _residual_policy(name: str) -> Optional[DiscriminationPolicy]:
    if name == "none":
        return None
    if name == "target-competitor":
        # Filled in by the caller with the competitor's address.
        raise ValueError("handled separately")
    if name == "throttle-neutral-isp":
        return throttle_neutral_isp_policy(Prefix.parse("10.3.0.0/16"), rate_bps=mbps(0.2))
    if name == "throttle-encrypted":
        return throttle_encrypted_policy(rate_bps=mbps(0.2))
    if name == "drop-key-setup":
        return drop_key_setup_policy()
    raise ValueError(f"unknown policy arm {name}")


def run_residual_discrimination(*, call_seconds: float = 4.0,
                                seed: int = 77) -> ResidualResult:
    """E5: what a discriminatory ISP can still do once traffic is neutralized."""
    arm_names = ["none", "target-competitor", "throttle-neutral-isp",
                 "throttle-encrypted", "drop-key-setup"]
    arms: List[ResidualArm] = []
    for name in arm_names:
        scenario = build_figure1(neutralized=True, seed=seed)
        topology = scenario.topology
        vonage = topology.host("vonage")
        google = topology.host("google")
        ann = topology.host("ann")
        ben = topology.host("ben")
        att_voip = topology.host("att-voip")

        if name == "target-competitor":
            policy = degrade_competitor_policy(vonage.address)
        else:
            policy = _residual_policy(name)
        if policy is not None:
            install_policy(topology, "att", policy, rng=scenario.rng)

        competitor_receiver = VoipReceiver(vonage)
        competitor_call = VoipCall(ann, vonage.address, competitor_receiver,
                                   name="ann->vonage", duration_seconds=call_seconds)
        own_receiver = VoipReceiver(att_voip)
        own_call = VoipCall(ben, att_voip.address, own_receiver,
                            name="ben->att-voip", duration_seconds=call_seconds)
        # Collateral traffic: a neutralized bulk flow from Ann to Google.
        collateral_port = 42000
        received = []
        google.register_port_handler(collateral_port, lambda p, h: received.append(p))
        collateral = ConstantRateSource(ann, google.address, packets_per_second=50,
                                        payload_bytes=400, destination_port=collateral_port,
                                        flow_id="collateral")
        competitor_call.start()
        own_call.start()
        scheduled = collateral.start(call_seconds)
        topology.run(call_seconds + 2.0)

        arms.append(ResidualArm(
            name=name,
            competitor_report=competitor_call.report(),
            collateral_delivery_ratio=(len(received) / scheduled) if scheduled else 0.0,
            own_customer_report=own_call.report(),
        ))

    report = ExperimentReport("E5", "Residual discrimination against neutralized traffic (§3.6)")
    report.add_table(
        ["policy", "competitor MOS", "collateral delivery", "own-customer MOS"],
        [[arm.name, arm.competitor_report.mos, arm.collateral_delivery_ratio,
          arm.own_customer_report.mos] for arm in arms],
    )
    report.add_note("targeted policies stop working; the remaining levers are blunt "
                    "(whole neutral ISP / all encrypted traffic / key setups) and hit the "
                    "ISP's own customers' experience across the board")
    return ResidualResult(arms=arms, report=report)


# ---------------------------------------------------------------------------
# E6: comparison against onion routing
# ---------------------------------------------------------------------------


@dataclass
class OnionComparisonResult:
    """E6 outputs."""

    flows: int
    packets_per_flow: int
    measured_rows: List[Tuple[str, float, float]]
    report: ExperimentReport


def run_onion_comparison(flows: int = 50, packets_per_flow: int = 20, *,
                         seed: int = 21, backend: Optional[str] = None) -> OnionComparisonResult:
    """E6: state entries and public-key operations, neutralizer vs onion routing."""
    rng = DeterministicRandom(seed)
    domain = _standalone_domain(seed, backend=backend)
    neutralizer = domain.create_neutralizer("bench")

    relays = [OnionRelay(f"relay{i}", rng=rng, backend=backend, key_bits=512) for i in range(3)]
    onion_client = OnionClient(rng=rng, backend=backend)

    payload = b"d" * 64
    destination = ip("10.3.0.10")
    for flow in range(flows):
        source = IPv4Address(ip("10.1.0.0").value + 10 + flow)
        setup = make_key_setup_packet(source, domain.anycast_address, rng)
        neutralizer.process(setup)
        data = make_neutralized_data_packet(domain, source, destination, 64, backend)
        for _ in range(packets_per_flow):
            neutralizer.process(data)

        circuit = onion_client.build_circuit(relays)
        for _ in range(packets_per_flow):
            onion_client.send_through(circuit, payload)

    neutralizer_pk = neutralizer.counters["rsa_encryptions"]
    onion_pk = onion_client.counters["public_key_encryptions"] + sum(
        relay.counters["public_key_decryptions"] for relay in relays
    )
    onion_state = sum(relay.state_entries() for relay in relays)
    neutralizer_aes_per_packet = neutralizer.counters["aes_operations"] / (flows * packets_per_flow)
    onion_aes_per_packet = (
        onion_client.counters["aes_operations"]
        + sum(relay.counters["aes_operations"] for relay in relays)
    ) / (flows * packets_per_flow)

    measured_rows = [
        ("state entries (all boxes/relays)", float(neutralizer.state_entries()), float(onion_state)),
        ("public-key operations", float(neutralizer_pk), float(onion_pk)),
        ("AES ops per data packet", neutralizer_aes_per_packet, onion_aes_per_packet),
    ]
    analytic = compare_resources(flows, packets_per_flow)
    report = ExperimentReport("E6", "Neutralizer vs onion routing resource consumption (§5)")
    report.add_table(
        ["metric", "neutralizer (measured)", "onion (measured)"],
        [[name, a, b] for name, a, b in measured_rows],
    )
    report.add_table(
        ["metric", "neutralizer (analytic)", "onion (analytic)"],
        [[name, a, b] for name, a, b in analytic.as_rows()],
        title="analytic model",
    )
    return OnionComparisonResult(
        flows=flows, packets_per_flow=packets_per_flow,
        measured_rows=measured_rows, report=report,
    )


# ---------------------------------------------------------------------------
# E7: one-time key size tradeoff
# ---------------------------------------------------------------------------


@dataclass
class KeySizeRow:
    """One key size's costs and security margin."""

    bits: int
    keygen_seconds: float
    source_decrypt_seconds: float
    neutralizer_encrypt_seconds: float
    symmetric_equivalent: float
    factoring_window_seconds: float
    attacker_window_seconds: float

    @property
    def safety_margin(self) -> float:
        """Factoring time over the exposure window (large = safe)."""
        if self.attacker_window_seconds <= 0:
            return float("inf")
        return self.factoring_window_seconds / self.attacker_window_seconds


@dataclass
class KeySizeTradeoffResult:
    """E7 outputs."""

    rows: List[KeySizeRow]
    report: ExperimentReport


def run_keysize_tradeoff(key_sizes: Tuple[int, ...] = (384, 512, 768, 1024), *,
                         rtt_seconds: float = 0.1, iterations: int = 10,
                         seed: int = 31) -> KeySizeTradeoffResult:
    """E7: cost and security of the short one-time RSA key across sizes."""
    rng = DeterministicRandom(seed)
    rows: List[KeySizeRow] = []
    window = attacker_window_seconds(rtt_seconds)
    for bits in key_sizes:
        keygen = measure_throughput(
            f"keygen-{bits}", lambda b=bits: generate_keypair(b, rng), iterations=iterations,
            warmup=1,
        )
        keypair = generate_keypair(bits, rng)
        payload = rng.random_bytes(24)
        ciphertext = keypair.public.encrypt(payload, rng)
        encrypt = measure_throughput(
            f"encrypt-{bits}", lambda: keypair.public.encrypt(payload, rng),
            iterations=iterations * 5, warmup=2,
        )
        decrypt = measure_throughput(
            f"decrypt-{bits}", lambda: keypair.private.decrypt(ciphertext),
            iterations=iterations * 5, warmup=2,
        )
        rows.append(KeySizeRow(
            bits=bits,
            keygen_seconds=1.0 / keygen.per_second,
            source_decrypt_seconds=1.0 / decrypt.per_second,
            neutralizer_encrypt_seconds=1.0 / encrypt.per_second,
            symmetric_equivalent=symmetric_equivalent_bits(bits),
            factoring_window_seconds=estimate_factoring_cost(bits),
            attacker_window_seconds=window,
        ))
    report = ExperimentReport("E7", "One-time RSA key size tradeoff (§3.2)")
    report.add_table(
        ["bits", "keygen s", "source decrypt s", "neutralizer encrypt s",
         "sym-equivalent bits", "factoring s", "exposure window s", "margin"],
        [[r.bits, r.keygen_seconds, r.source_decrypt_seconds, r.neutralizer_encrypt_seconds,
          r.symmetric_equivalent, r.factoring_window_seconds, r.attacker_window_seconds,
          r.safety_margin] for r in rows],
    )
    report.add_note("cost multiplications per op: "
                    + ", ".join(
                        f"{bits}-bit enc={encryption_cost_multiplications(3, bits)} "
                        f"dec~{decryption_cost_multiplications(bits)}" for bits in key_sizes))
    return KeySizeTradeoffResult(rows=rows, report=report)


# ---------------------------------------------------------------------------
# E8: chosen vs alternative key-setup design under load
# ---------------------------------------------------------------------------


@dataclass
class DosDesignResult:
    """E8 outputs."""

    chosen_ops_per_second: float
    alternative_ops_per_second: float
    report: ExperimentReport

    @property
    def advantage(self) -> float:
        """How many times more key setups per second the chosen design sustains."""
        if self.alternative_ops_per_second == 0:
            return float("inf")
        return self.chosen_ops_per_second / self.alternative_ops_per_second


def run_dos_design_comparison(iterations: int = 60, *, seed: int = 41) -> DosDesignResult:
    """E8: neutralizer-encrypts (chosen) vs neutralizer-decrypts (alternative).

    The chosen design performs an RSA *encryption* with e=3 per key setup; the
    rejected alternative would perform an RSA *decryption* of a blob sealed to
    the neutralizer's certified 1024-bit key.  The sustainable key-setup rate
    under flood is proportional to the per-operation rate measured here.
    """
    rng = DeterministicRandom(seed)
    source_keypair = generate_keypair(512, rng)
    neutralizer_keypair = generate_keypair(1024, rng)
    payload = rng.random_bytes(24)
    sealed_to_neutralizer = neutralizer_keypair.public.encrypt(payload, rng)

    chosen = measure_throughput(
        "chosen: RSA-512 encrypt e=3",
        lambda: source_keypair.public.encrypt(payload, rng),
        iterations=iterations,
    )
    alternative = measure_throughput(
        "alternative: RSA-1024 decrypt",
        lambda: neutralizer_keypair.private.decrypt(sealed_to_neutralizer),
        iterations=iterations,
    )
    report = ExperimentReport(
        "E8", "Key-setup direction: per-request cost at the neutralizer (§3.2)"
    )
    report.add_table(
        ["design", "neutralizer ops/s", "relative"],
        [
            ["chosen (neutralizer encrypts, e=3)", chosen.per_second, 1.0],
            ["alternative (neutralizer decrypts, 1024-bit)", alternative.per_second,
             alternative.per_second / chosen.per_second],
        ],
    )
    report.add_note("the higher the neutralizer's per-request cost, the easier a key-setup "
                    "flood overwhelms it; the chosen design also allows offloading")
    return DosDesignResult(
        chosen_ops_per_second=chosen.per_second,
        alternative_ops_per_second=alternative.per_second,
        report=report,
    )


# ---------------------------------------------------------------------------
# E9: tiered service survives neutralization
# ---------------------------------------------------------------------------


@dataclass
class QosArm:
    """One scheduler arm of E9."""

    scheduler: str
    ef_latency: float
    be_latency: float
    ef_loss: float
    be_loss: float


@dataclass
class QosResult:
    """E9 outputs."""

    arms: List[QosArm]
    report: ExperimentReport


def run_qos_experiment(*, call_seconds: float = 3.0, seed: int = 51) -> QosResult:
    """E9: EF vs best-effort latency through a congested link, neutralized traffic."""
    arms: List[QosArm] = []
    for scheduler_kind in ("fifo", "priority"):
        topology = build_dumbbell(clients=2, servers=2,
                                  bottleneck_rate_bps=mbps(2), seed=seed)
        rng = DeterministicRandom(seed)
        deployment = neutralize_isp(topology, "right", ip("10.200.0.9"), rng=rng)
        server0 = topology.host("server0")
        server1 = topology.host("server1")
        client0 = topology.host("client0")
        client1 = topology.host("client1")
        deployment.attach_server(server0)
        deployment.attach_server(server1)
        deployment.attach_client(client0)
        deployment.attach_client(client1)
        deployment.bootstrap_client("client0", "server0")
        deployment.bootstrap_client("client1", "server1")

        bottleneck = topology.link_between("left-gw", "right-gw")
        left_end = next(e for e in bottleneck.ends if e.node.name == "left-gw")
        if scheduler_kind == "priority":
            bottleneck.set_scheduler(left_end, PriorityScheduler(capacity_per_class=64))
        else:
            bottleneck.set_scheduler(left_end, FifoScheduler(capacity=64))

        # Congest the bottleneck with best-effort bulk traffic (neutralized).
        bulk_port = 45000
        server1.register_port_handler(bulk_port, lambda p, h: None)
        bulk = ConstantRateSource(client1, server1.address, packets_per_second=300,
                                  payload_bytes=1000, destination_port=bulk_port,
                                  dscp=int(Dscp.BEST_EFFORT), flow_id="bulk")
        # Two neutralized VoIP calls: one EF, one best effort.
        ef_receiver = VoipReceiver(server0, port=16384)
        ef_call = VoipCall(client0, server0.address, ef_receiver, name="ef",
                           duration_seconds=call_seconds, dscp=int(Dscp.EF), port=16384)
        be_receiver = VoipReceiver(server0, port=16386)
        be_call = VoipCall(client0, server0.address, be_receiver, name="be",
                           duration_seconds=call_seconds, dscp=int(Dscp.BEST_EFFORT), port=16386)
        bulk.start(call_seconds + 1.0)
        ef_call.start(delay=0.5)
        be_call.start(delay=0.5)
        topology.run(call_seconds + 3.0)

        ef_report = ef_call.report()
        be_report = be_call.report()
        arms.append(QosArm(
            scheduler=scheduler_kind,
            ef_latency=ef_report.mean_latency_seconds,
            be_latency=be_report.mean_latency_seconds,
            ef_loss=ef_report.loss_rate,
            be_loss=be_report.loss_rate,
        ))
    report = ExperimentReport("E9", "Tiered service over neutralized traffic (§3.4)")
    report.add_table(
        ["bottleneck scheduler", "EF latency s", "BE latency s", "EF loss", "BE loss"],
        [[arm.scheduler, arm.ef_latency, arm.be_latency, arm.ef_loss, arm.be_loss]
         for arm in arms],
    )
    report.add_note("the DSCP survives neutralization, so a priority scheduler still gives "
                    "the paid-for class lower delay/loss than best effort")
    return QosResult(arms=arms, report=report)


# ---------------------------------------------------------------------------
# E10: multihoming selectors
# ---------------------------------------------------------------------------


@dataclass
class MultihomingResult:
    """E10 outputs."""

    splits: Dict[str, Dict[str, float]]
    adaptive_prefers_survivor: bool
    report: ExperimentReport


def run_multihoming_experiment(flows: int = 1000, *, seed: int = 61) -> MultihomingResult:
    """E10: how source-side selectors split load across two providers' neutralizers."""
    provider_a = COGENT_ANYCAST
    provider_b = ip("10.200.0.2")
    candidates = [provider_a, provider_b]
    rng = DeterministicRandom(seed)

    splits: Dict[str, Dict[str, float]] = {}
    round_robin = RoundRobinSelector()
    weighted = WeightedSelector({provider_a: 4.0, provider_b: 1.0}, rng=rng)
    adaptive = AdaptiveSelector()
    # Feed the adaptive selector observations: provider A is 40 ms, B is 10 ms.
    adaptive.record_outcome(provider_a, rtt=0.040)
    adaptive.record_outcome(provider_b, rtt=0.010)

    for name, selector in (("round-robin", round_robin), ("weighted-4:1", weighted),
                           ("adaptive-latency", adaptive)):
        counts = {str(provider_a): 0, str(provider_b): 0}
        for _ in range(flows):
            choice = selector.select(candidates)
            counts[str(choice)] += 1
        splits[name] = {k: v / flows for k, v in counts.items()}

    # Failover: provider B starts failing; the adaptive selector must move away.
    for _ in range(5):
        adaptive.record_outcome(provider_b, failed=True)
    failover_choice = adaptive.select(candidates)
    adaptive_prefers_survivor = failover_choice == provider_a

    report = ExperimentReport("E10", "Multi-homed site load balancing across neutralizers (§3.5)")
    report.add_table(
        ["selector", f"share via {provider_a}", f"share via {provider_b}"],
        [[name, share[str(provider_a)], share[str(provider_b)]] for name, share in splits.items()],
    )
    report.add_note(f"after provider {provider_b} fails repeatedly, the adaptive selector "
                    f"prefers the surviving provider: {adaptive_prefers_survivor}")
    return MultihomingResult(splits=splits, adaptive_prefers_survivor=adaptive_prefers_survivor,
                             report=report)


# ---------------------------------------------------------------------------
# E11: pushback under a key-setup flood
# ---------------------------------------------------------------------------


@dataclass
class PushbackArm:
    """One arm of E11."""

    name: str
    victim_call: VoipQualityReport
    neutralizer_rsa_ops: int
    flood_packets_sent: int


@dataclass
class PushbackResult:
    """E11 outputs."""

    arms: List[PushbackArm]
    report: ExperimentReport


def run_pushback_experiment(*, call_seconds: float = 3.0, flood_pps: float = 3000.0,
                            seed: int = 71) -> PushbackResult:
    """E11: a key-setup flood with and without pushback (§3.6)."""
    arms: List[PushbackArm] = []
    for with_pushback in (False, True):
        topology = build_dumbbell(clients=2, servers=1, bottleneck_rate_bps=mbps(2), seed=seed)
        rng = DeterministicRandom(seed)
        deployment = neutralize_isp(topology, "right", ip("10.200.0.9"), rng=rng)
        server0 = topology.host("server0")
        legit = topology.host("client0")
        attacker = topology.host("client1")
        deployment.attach_server(server0)
        deployment.attach_client(legit)
        deployment.bootstrap_client("client0", "server0")

        if with_pushback:
            deploy_pushback(
                [topology.router("right-gw"), topology.router("left-gw")],
                threshold_pps=200.0, limit_pps=50.0,
            )

        receiver = VoipReceiver(server0)
        call = VoipCall(legit, server0.address, receiver, name="victim",
                        duration_seconds=call_seconds)
        flood = KeySetupFlood(attacker, deployment.deployment.anycast_address,
                              requests_per_second=flood_pps, rng=rng)
        # The victim's key setup completes first; the flood then saturates the
        # shared bottleneck for the rest of the call, so the measurement isolates
        # how well the defense protects established traffic and the box's CPU.
        call.start(delay=0.2)
        flood.start(call_seconds, delay=1.0)
        topology.run(call_seconds + 3.0)

        arms.append(PushbackArm(
            name="pushback" if with_pushback else "no defense",
            victim_call=call.report(),
            neutralizer_rsa_ops=deployment.counters()["neutralizers"]["rsa_encryptions"],
            flood_packets_sent=flood.requests_sent,
        ))
    report = ExperimentReport("E11", "Pushback against a key-setup flood (§3.6)")
    report.add_table(
        ["arm", "victim MOS", "victim loss", "neutralizer RSA ops", "flood packets"],
        [[arm.name, arm.victim_call.mos, arm.victim_call.loss_rate,
          arm.neutralizer_rsa_ops, arm.flood_packets_sent] for arm in arms],
    )
    report.add_note("pushback rate-limits the key-setup aggregate upstream, protecting both "
                    "the shared links (victim call quality) and the neutralizer's CPU budget")
    return PushbackResult(arms=arms, report=report)


# ---------------------------------------------------------------------------
# E12: fleet scale (flow-level fluid simulator)
# ---------------------------------------------------------------------------


@dataclass
class FleetScaleExperimentResult:
    """E12 outputs: the sweep campaign plus its cross-validation."""

    sweep: "FleetScaleResult"
    validation: Optional["CrossValidationResult"]
    report: ExperimentReport

    @property
    def validated(self) -> bool:
        """Whether fluid and packet-level goodput agreed within 10 %."""
        return self.validation is not None and self.validation.within_tolerance


def run_fleet_scale(
    client_counts: Optional[Tuple[int, ...]] = None,
    *,
    n_sites: int = 16,
    seed: int = 81,
    validate: bool = True,
    failed_sites: Tuple[str, ...] = (),
) -> FleetScaleExperimentResult:
    """E12: fluid goodput vs population size, cross-checked against netsim.

    The packet-level experiments stop at thousands of packets; this one uses
    the :mod:`repro.scale` fluid model to push the same deployment shape to a
    million clients against a ``n_sites``-site fleet, after validating the
    model against the event engine on a small shared scenario.
    """
    from ..scale import FleetScaleRunner
    from ..scale.runner import DEFAULT_CLIENT_COUNTS

    runner = FleetScaleRunner(
        client_counts=client_counts if client_counts is not None else DEFAULT_CLIENT_COUNTS,
        n_sites=n_sites, seed=seed, failed_sites=failed_sites,
    )
    sweep = runner.run()

    validation = None
    if validate:
        from ..scale import cross_validate

        validation = cross_validate(seed=seed)

    report = ExperimentReport(
        "E12", "Fleet scale: million-client fluid sweep (+ packet-level cross-check)"
    )
    report.tables.extend(sweep.report.tables)
    report.notes.extend(sweep.report.notes)
    if validation is not None:
        report.tables.extend(validation.report.tables)
        report.notes.extend(validation.report.notes)
        report.add_note(
            f"fluid vs packet-level max relative error: "
            f"{validation.max_relative_error:.4f} (acceptance bound 0.10)"
        )
    report.add_note("the paper's scaling argument is per-box cost times anycast spread; "
                    "the fluid sweep shows where CPU and uplink knees sit for a whole fleet")
    return FleetScaleExperimentResult(sweep=sweep, validation=validation, report=report)


# ---------------------------------------------------------------------------
# E13: timeline scenario catalogue (time-stepped fluid simulator)
# ---------------------------------------------------------------------------


@dataclass
class TimelineCatalogueExperimentResult:
    """E13 outputs: the catalogue campaign with its per-scenario timelines."""

    campaign: "TimelineCampaignResult"
    report: ExperimentReport

    @property
    def all_conserved(self) -> bool:
        """Whether every epoch of every scenario delivered at most its demand."""
        return all(
            record.goodput_bps <= record.demand_bps * (1 + 1e-9) or record.demand_bps == 0
            for result in self.campaign.timelines.values()
            for record in result.records
        )


def run_timeline_catalogue(
    *,
    clients: int = 100_000,
    seed: int = 2006,
    scenarios: Optional[Tuple[str, ...]] = None,
    calibrate_cost_model: bool = False,
) -> TimelineCatalogueExperimentResult:
    """E13: the scale scenario catalogue through the time-stepped fluid model.

    E12 answers "where does the steady-state knee sit"; E13 answers "what
    happens on the way" — flash crowds, outages with hash-ring failover,
    diurnal weeks, cascading overload, discrimination rollouts.
    ``calibrate_cost_model=True`` re-measures the crypto primitive rates on
    the current machine (:meth:`repro.scale.CryptoCostModel.calibrated`) so
    the reported per-site CPU capacities are pinned to real hardware.
    """
    from ..scale import CryptoCostModel
    from ..scale.runner import TimelineCampaignRunner

    cost_model = CryptoCostModel.calibrated() if calibrate_cost_model else None
    runner = TimelineCampaignRunner(
        scenarios=scenarios, clients=clients, seed=seed, cost_model=cost_model
    )
    campaign = runner.run()

    report = ExperimentReport(
        "E13", "Timeline catalogue: fleet transients under the fluid model"
    )
    report.tables.extend(campaign.report.tables)
    report.notes.extend(campaign.report.notes)
    if cost_model is not None:
        report.add_note(
            f"cost model calibrated in-process: "
            f"{cost_model.aes_blocks_per_second:,.0f} AES blocks/s, "
            f"{cost_model.kdf_ops_per_second:,.0f} Ks derivations/s, "
            f"{cost_model.rsa512_encryptions_per_second:,.0f} RSA-512 encryptions/s"
        )
    report.add_note("steady-state sweeps hide transients; the catalogue is the "
                    "regression net for how the fleet rides out events over time")
    return TimelineCatalogueExperimentResult(campaign=campaign, report=report)


# ---------------------------------------------------------------------------
# E14: Monte-Carlo stochastic availability campaign (autoscaled fleet)
# ---------------------------------------------------------------------------


@dataclass
class StochasticCampaignExperimentResult:
    """E14 outputs: the Monte-Carlo campaign, optionally with its frontier."""

    campaign: "StochasticCampaignResult"
    frontier: Optional["FrontierResult"]
    report: ExperimentReport

    @property
    def distributions_ordered(self) -> bool:
        """Percentile sanity: every distribution's tail is ordered correctly.

        For low-tail (availability-like) metrics P50 >= P95 >= P99 >= worst;
        for high-tail (cost-like) metrics the reverse.
        """
        for dist in self.campaign.distributions.values():
            if dist.tail == "low":
                if not dist.p50 >= dist.p95 >= dist.p99 >= dist.worst:
                    return False
            else:
                if not dist.p50 <= dist.p95 <= dist.p99 <= dist.worst:
                    return False
        return True


def run_stochastic_campaign(
    *,
    clients: int = 1_000_000,
    epochs: int = 200,
    replicas: int = 32,
    seed: int = 2006,
    slo: float = 0.95,
    frontier: bool = False,
    frontier_targets: Tuple[float, ...] = (0.45, 0.6, 0.75, 0.9),
) -> StochasticCampaignExperimentResult:
    """E14: availability as a *distribution* under seeded stochastic churn.

    E13 replays hand-written transients; E14 draws them from seeded random
    processes (Poisson site failures, correlated regional outages, DoS
    attack onsets) and runs ``replicas`` independent timelines against an
    autoscaled elastic fleet, reporting P50/P95/P99 availability, churn, and
    dollar-cost distributions plus per-replica churn-vs-SLO numbers.
    ``frontier=True`` additionally sweeps the autoscaler's utilization
    target over ``frontier_targets`` (a smaller campaign per target) to
    chart the churn-vs-SLO frontier.
    """
    from ..scale.runner import StochasticCampaignRunner, run_churn_slo_frontier

    runner = StochasticCampaignRunner(
        clients=clients, epochs=epochs, replicas=replicas, seed=seed, slo=slo,
    )
    campaign = runner.run()

    frontier_result = None
    if frontier:
        frontier_result = run_churn_slo_frontier(
            targets=frontier_targets,
            clients=min(clients, 200_000),
            replicas=max(replicas // 4, 2),
            seed=seed, slo=slo,
        )

    report = ExperimentReport(
        "E14", "Stochastic availability: Monte-Carlo campaigns on an autoscaled fleet"
    )
    report.tables.extend(campaign.report.tables)
    report.notes.extend(campaign.report.notes)
    if frontier_result is not None:
        report.tables.extend(frontier_result.report.tables)
        report.notes.extend(frontier_result.report.notes)
    report.add_note(
        "availability here is delivered fraction per epoch; quoting its P99 "
        "as tail risk (the value 99% of epochs exceed) is what distinguishes "
        "a fleet that merely averages well from one that rides out churn"
    )
    return StochasticCampaignExperimentResult(
        campaign=campaign, frontier=frontier_result, report=report,
    )


# ---------------------------------------------------------------------------
# E15: Monte-Carlo queueing-latency campaign (elastic mix, latency SLO)
# ---------------------------------------------------------------------------


@dataclass
class LatencyCampaignExperimentResult:
    """E15 outputs: the latency campaign, its frontier, and the validation."""

    campaign: "StochasticCampaignResult"
    frontier: Optional["LatencyFrontierResult"]
    validation: Optional["LatencyValidationResult"]
    report: ExperimentReport

    @property
    def validated(self) -> bool:
        """Whether the latency proxy agreed with the packet-level arm (≤15%)."""
        return self.validation is not None and self.validation.within_tolerance

    @property
    def latency_distributions(self) -> Dict[str, "object"]:
        """The campaign's latency-flavored distributions only."""
        return {name: dist for name, dist in self.campaign.distributions.items()
                if "latency" in name or "p95" in name}


def run_latency_campaign(
    *,
    clients: int = 1_000_000,
    epochs: int = 200,
    replicas: int = 32,
    seed: int = 2006,
    target_p95_seconds: float = 0.06,
    frontier: bool = False,
    frontier_targets_seconds: Tuple[float, ...] = (0.045, 0.055, 0.07, 0.1),
    validate: bool = True,
) -> LatencyCampaignExperimentResult:
    """E15: queueing latency as a *distribution* on an elastic-demand fleet.

    E14 asks how much of the offered load is served; E15 asks how long the
    served traffic waits.  The population mixes TCP-like elastic web/video
    (alpha-fair congestion response in the solver) with inelastic VoIP, each
    epoch maps utilization to client-weighted path-delay percentiles through
    the M/G/1-PS proxy of :mod:`repro.scale.latency`, and a latency-aware
    autoscaler holds the P95 on ``target_p95_seconds``.  ``frontier=True``
    additionally sweeps the delay target to chart latency against dollars;
    ``validate=True`` cross-checks the proxy against the packet-level
    simulator on a short shared transient (acceptance: within 15%).
    """
    from ..scale.runner import LatencyCampaignRunner, run_latency_cost_frontier

    runner = LatencyCampaignRunner(
        clients=clients, epochs=epochs, replicas=replicas, seed=seed,
        target_p95_seconds=target_p95_seconds,
    )
    campaign = runner.run()

    frontier_result = None
    if frontier:
        frontier_result = run_latency_cost_frontier(
            targets_p95_seconds=frontier_targets_seconds,
            clients=min(clients, 200_000),
            replicas=max(replicas // 4, 2),
            seed=seed,
        )

    validation = None
    if validate:
        from ..scale.validate import cross_validate_latency

        validation = cross_validate_latency(seed=seed)

    report = ExperimentReport(
        "E15", "Queueing latency: Monte-Carlo campaigns on an elastic-demand fleet"
    )
    report.tables.extend(campaign.report.tables)
    report.notes.extend(campaign.report.notes)
    if frontier_result is not None:
        report.tables.extend(frontier_result.report.tables)
        report.notes.extend(frontier_result.report.notes)
    if validation is not None:
        report.tables.extend(validation.report.tables)
        report.notes.extend(validation.report.notes)
        report.add_note(
            f"latency proxy vs packet-level max relative error: "
            f"{validation.max_relative_error:.4f} (acceptance bound 0.15)"
        )
    report.add_note(
        "the neutrality argument in delay terms: a neutral domain must give "
        "every class a comparable latency distribution, so E15 quotes "
        "client-weighted P50/P95/P99 path delay and the SLO-violating client "
        "fraction, not just delivered throughput"
    )
    return LatencyCampaignExperimentResult(
        campaign=campaign, frontier=frontier_result, validation=validation,
        report=report,
    )


# ---------------------------------------------------------------------------
# E16: adaptive ISP discrimination vs. neutralizer adoption (the arms race)
# ---------------------------------------------------------------------------


@dataclass
class AdversaryCampaignExperimentResult:
    """E16 outputs: the arms-race grid, plus validation and variance study."""

    campaign: "object"
    validation: Optional["object"]
    variance: Optional["object"]
    report: ExperimentReport

    @property
    def validated(self) -> bool:
        """Whether the fluid adversary agreed with the packet arm (≤10%)."""
        return self.validation is not None and self.validation.within_tolerance

    @property
    def self_defeating(self) -> bool:
        """Whether the frontier exhibits the self-defeating regime at all."""
        return bool(self.campaign.self_defeating_points())


def run_adversary_campaign(
    *,
    clients: int = 1_000_000,
    epochs: int = 200,
    replicas_per_point: int = 4,
    seed: int = 2006,
    aggressiveness: Tuple[float, ...] = (0.0, 0.35, 0.7, 1.0),
    sensitivities: Tuple[float, ...] = (2.0, 12.0),
    validate: bool = True,
    variance_study: bool = False,
) -> AdversaryCampaignExperimentResult:
    """E16: the discrimination arms race as a calibrated frontier.

    The campaign sweeps ISP aggressiveness × client adoption sensitivity
    through the closed-loop game of :mod:`repro.scale.adversary` — an
    adaptive, budget-constrained, classifier-driven throttler against
    per-region logistic neutralizer adoption — and maps where escalation
    stops paying: once neutralization is cheap, throttling harder buys
    adoption instead of suppression and the discriminated share collapses
    to the classifier's leakage floor.  ``validate=True`` cross-checks one
    fluid adversary epoch against the packet-level
    :mod:`repro.discrimination` + :mod:`repro.netsim` path (within 10%);
    ``variance_study=True`` appends the measured iid/stratified/antithetic
    estimator-spread comparison.
    """
    from ..scale.runner import AdversaryCampaignRunner, compare_variance_reduction

    runner = AdversaryCampaignRunner(
        clients=clients, epochs=epochs, replicas_per_point=replicas_per_point,
        seed=seed, aggressiveness=aggressiveness, sensitivities=sensitivities,
    )
    campaign = runner.run()

    validation = None
    if validate:
        from ..scale.validate import cross_validate_adversary

        validation = cross_validate_adversary(seed=seed)

    variance = None
    if variance_study:
        variance = compare_variance_reduction(
            clients=min(clients, 20_000), seed=seed,
        )

    report = ExperimentReport(
        "E16", "Adaptive discrimination vs. neutralizer adoption at fleet scale"
    )
    report.tables.extend(campaign.report.tables)
    report.notes.extend(campaign.report.notes)
    if validation is not None:
        report.tables.extend(validation.report.tables)
        report.notes.extend(validation.report.notes)
        report.add_note(
            f"fluid adversary vs packet-level max relative error: "
            f"{validation.max_relative_error:.4f} (acceptance bound 0.10)"
        )
    if variance is not None:
        report.tables.extend(variance.report.tables)
        report.notes.extend(variance.report.notes)
    report.add_note(
        "the paper's core tension, closed-loop: discrimination only pays "
        "while its victims cannot afford to disappear from the classifier — "
        "E16 prices exactly when they can"
    )
    return AdversaryCampaignExperimentResult(
        campaign=campaign, validation=validation, variance=variance,
        report=report,
    )
