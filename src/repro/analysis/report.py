"""Plain-text table and report formatting for benchmarks and examples.

Every benchmark prints the rows it reproduces in the same fixed-width table
format so EXPERIMENTS.md can quote them directly.  No plotting dependencies:
"figures" are rendered as series tables (x column plus one column per series),
which preserves the shape comparisons the reproduction is judged on.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

Number = Union[int, float]


def _format_cell(value, width: int) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            text = "inf"
        elif abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            text = f"{value:.3g}"
        else:
            text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *,
                 title: Optional[str] = None) -> str:
    """Render a fixed-width table as a string."""
    columns = len(headers)
    normalized_rows = [[_format_cell(cell, 0).strip() for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in normalized_rows)) if normalized_rows
        else len(str(headers[i]))
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in normalized_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _frontier_cell(point, getter):
    if callable(getter):
        return getter(point)
    if isinstance(point, Mapping):
        return point.get(getter, "")
    return getattr(point, getter)


def format_frontier_table(columns: Sequence, points: Sequence, *,
                          title: Optional[str] = None) -> str:
    """Render a frontier/trajectory table straight from its points.

    ``columns`` is a sequence of ``(header, getter)`` pairs where
    ``getter`` is an attribute name (frontier-point dataclasses), a
    mapping key (raw event payloads), or a callable ``point -> value``
    (derived columns such as unit conversions).  Every frontier and
    trajectory table — the E14/E15 frontier reports EXPERIMENTS.md
    quotes and the live view ``tools/watch_campaign.py`` renders — goes
    through this one code path, so a column added here shows up
    everywhere at once and the quoted tables can never drift from the
    live ones.
    """
    headers = [header for header, _ in columns]
    rows = [[_frontier_cell(point, getter) for _, getter in columns]
            for point in points]
    return format_table(headers, rows, title=title)


@dataclass
class ExperimentReport:
    """A named collection of tables produced by one experiment."""

    experiment_id: str
    title: str
    tables: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_table(self, headers: Sequence[str], rows: Sequence[Sequence], *,
                  title: Optional[str] = None) -> None:
        """Format and append one table."""
        self.tables.append(format_table(headers, rows, title=title))

    def add_frontier_table(self, columns: Sequence, points: Sequence, *,
                           title: Optional[str] = None) -> None:
        """Format and append one table via :func:`format_frontier_table`."""
        self.tables.append(format_frontier_table(columns, points, title=title))

    def add_note(self, note: str) -> None:
        """Append a free-form observation."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the whole report as text."""
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            lines.append(table)
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines).rstrip() + "\n"


def format_series(x_label: str, x_values: Sequence[Number],
                  series: Dict[str, Sequence[Number]], *, title: Optional[str] = None,
                  max_rows: Optional[int] = None) -> str:
    """Render a "figure" as a table: one x column and one column per series.

    Long time series (a week of hourly epochs) overwhelm a text table, so
    ``max_rows`` downsamples to that many evenly spaced rows; ``None``
    prints everything.  Downsampling always keeps the first and last
    point *and* each series' global extremes — an evenly-spaced grid
    would silently step over a one-epoch latency spike or availability
    dip, which is exactly the row such a table exists to show.
    """
    indices = range(len(x_values))
    if max_rows is not None and max_rows >= 2 and len(x_values) > max_rows:
        picks = {round(i * (len(x_values) - 1) / (max_rows - 1)) for i in range(max_rows)}
        for values in series.values():
            if len(values) != len(x_values):
                continue
            picks.add(max(range(len(values)), key=lambda i: values[i]))
            picks.add(min(range(len(values)), key=lambda i: values[i]))
        indices = sorted(picks)
    headers = [x_label] + list(series)
    rows = []
    for index in indices:
        rows.append([x_values[index]] + [series[name][index] for name in series])
    return format_table(headers, rows, title=title)
