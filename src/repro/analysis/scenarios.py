"""Ready-made topologies, including the paper's Figure-1 scenario.

Figure 1 shows three ISPs: AT&T (a discriminatory access ISP with end users
such as Ann and Ben), Verizon (a second access ISP), and Cogent (a neutral
ISP whose customers include Google, Yahoo!, MySpace and YouTube) with
neutralizer boxes at Cogent's borders.  :func:`build_figure1` reconstructs
that topology in the simulator, optionally deploys the neutralizer service,
attaches client/server host stacks, and installs a trace collector at AT&T so
experiments can assert exactly what the discriminatory ISP can and cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.api import NetNeutralityDeployment, neutralize_isp
from ..crypto.randomness import DeterministicRandom, RandomSource
from ..netsim.isp import Relationship
from ..netsim.topology import Topology
from ..netsim.trace import TraceCollector
from ..packet.addresses import IPv4Address, ip
from ..units import mbps, msec

#: The anycast address Cogent's neutralizer service uses in every example.
COGENT_ANYCAST = ip("10.200.0.1")
#: A second anycast address used by multihoming scenarios (Verizon's service).
VERIZON_ANYCAST = ip("10.200.0.2")

#: Cogent-hosted sites of Figure 1 (plus a Vonage-like VoIP competitor that
#: the §1 narrative centres on).
COGENT_SITES = ("google", "yahoo", "myspace", "youtube", "vonage")


@dataclass
class Figure1Scenario:
    """Everything an experiment needs from the Figure-1 build."""

    topology: Topology
    rng: RandomSource
    #: None when the scenario was built without the neutralizer service.
    deployment: Optional[NetNeutralityDeployment]
    #: Trace of every packet AT&T's routers saw (the eavesdropper's view).
    att_trace: TraceCollector
    neutralized: bool
    host_names: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def sim(self):
        """The shared simulator."""
        return self.topology.sim

    def host(self, name: str):
        """Shorthand for :meth:`Topology.host`."""
        return self.topology.host(name)

    def client_stack(self, host_name: str):
        """Client stack attached to an access-ISP host (None when not neutralized)."""
        if self.deployment is None:
            return None
        return self.deployment.clients.get(host_name)

    def server_stack(self, host_name: str):
        """Server stack attached to a Cogent site (None when not neutralized)."""
        if self.deployment is None:
            return None
        return self.deployment.servers.get(host_name)


def build_base_topology(rng: Optional[RandomSource] = None) -> Topology:
    """Build the three-ISP topology of Figure 1 without any neutralizer."""
    topology = Topology()
    topology.add_isp("att", 7018, "10.1.0.0/16", discriminatory=True)
    topology.add_isp("verizon", 701, "10.2.0.0/16")
    topology.add_isp("cogent", 174, "10.3.0.0/16")

    # AT&T: one core router with end users, one border toward Cogent.
    topology.add_router("att-core", "att")
    topology.add_router("att-br", "att", border=True)
    # AT&T also sells its own VoIP service hosted inside its network (§1).
    for host in ("ann", "ben", "att-voip"):
        topology.add_host(host, "att")

    # Verizon: a second access ISP with one user.
    topology.add_router("verizon-core", "verizon")
    topology.add_router("verizon-br", "verizon", border=True)
    topology.add_host("carol", "verizon")

    # Cogent: two borders (east faces AT&T, west faces Verizon) and a core.
    topology.add_router("cogent-core", "cogent")
    topology.add_router("cogent-br-east", "cogent", border=True)
    topology.add_router("cogent-br-west", "cogent", border=True)
    for site in COGENT_SITES:
        topology.add_host(site, "cogent")

    # Access links.
    for host in ("ann", "ben", "att-voip"):
        topology.add_link(host, "att-core", rate_bps=mbps(20), delay_seconds=msec(2))
    topology.add_link("carol", "verizon-core", rate_bps=mbps(20), delay_seconds=msec(2))
    for site in COGENT_SITES:
        topology.add_link(site, "cogent-core", rate_bps=mbps(100), delay_seconds=msec(1))

    # Intra-ISP backbones.
    topology.add_link("att-core", "att-br", rate_bps=mbps(1000), delay_seconds=msec(3))
    topology.add_link("verizon-core", "verizon-br", rate_bps=mbps(1000), delay_seconds=msec(3))
    topology.add_link("cogent-core", "cogent-br-east", rate_bps=mbps(1000), delay_seconds=msec(3))
    topology.add_link("cogent-core", "cogent-br-west", rate_bps=mbps(1000), delay_seconds=msec(3))

    # Inter-ISP peering links.
    topology.add_link("att-br", "cogent-br-east", rate_bps=mbps(500), delay_seconds=msec(8))
    topology.add_link("verizon-br", "cogent-br-west", rate_bps=mbps(500), delay_seconds=msec(8))
    topology.add_link("att-br", "verizon-br", rate_bps=mbps(500), delay_seconds=msec(5))

    topology.set_relationship("att", "cogent", Relationship.PEER)
    topology.set_relationship("verizon", "cogent", Relationship.PEER)
    topology.set_relationship("att", "verizon", Relationship.PEER)

    topology.build_routes()
    return topology


def build_figure1(
    *,
    neutralized: bool = True,
    use_e2e: bool = True,
    seed: int = 2006,
    backend: Optional[str] = None,
    client_hosts: tuple = ("ann", "ben", "carol"),
    server_hosts: tuple = COGENT_SITES,
) -> Figure1Scenario:
    """Build the Figure-1 scenario, optionally with the neutralizer deployed."""
    rng = DeterministicRandom(seed)
    topology = build_base_topology(rng)

    att_trace = TraceCollector("att-view")
    for router_name in ("att-core", "att-br"):
        topology.router(router_name).ingress_hooks.append(att_trace.router_hook())

    deployment = None
    if neutralized:
        deployment = neutralize_isp(
            topology, "cogent", COGENT_ANYCAST, rng=rng, backend=backend, use_e2e=use_e2e
        )
        for site in server_hosts:
            deployment.attach_server(topology.host(site), dns_name=f"www.{site}.com")
        for client_name in client_hosts:
            deployment.attach_client(topology.host(client_name), publish_key=True)
            for site in server_hosts:
                deployment.bootstrap_client(client_name, site)

    return Figure1Scenario(
        topology=topology,
        rng=rng,
        deployment=deployment,
        att_trace=att_trace,
        neutralized=neutralized,
        host_names={
            "att": ["ann", "ben", "att-voip"],
            "verizon": ["carol"],
            "cogent": list(server_hosts),
        },
    )


@dataclass
class ScaleValidationScenario:
    """The small shared scenario both simulators run (see :mod:`repro.scale.validate`)."""

    topology: Topology
    deployment: NetNeutralityDeployment
    client_names: List[str]
    server_name: str
    bottleneck_rate_bps: float

    @property
    def server(self):
        """The single receiving host behind the neutralizer."""
        return self.topology.host(self.server_name)

    def bottleneck_stats(self):
        """Link stats of the bottleneck in the client→server direction."""
        link = self.topology.link_between("left-gw", "right-gw")
        end = next(e for e in link.ends if e.node.name == "left-gw")
        return link.stats_from(end)


def build_scale_validation_scenario(
    *,
    clients: int = 4,
    bottleneck_rate_bps: float = mbps(0.5),
    seed: int = 2006,
) -> ScaleValidationScenario:
    """A dumbbell with the neutralizer deployed, shared with the fluid model.

    ``repro.scale.validate`` runs this topology packet by packet and rebuilds
    the same structure as a :class:`repro.scale.solver.CapacityProblem`; the
    two goodputs must agree within 10 %.
    """
    topology = build_dumbbell(
        clients=clients, servers=1, bottleneck_rate_bps=bottleneck_rate_bps, seed=seed
    )
    rng = DeterministicRandom(seed)
    deployment = neutralize_isp(topology, "right", ip("10.200.0.9"), rng=rng)
    deployment.attach_server(topology.host("server0"))
    client_names = [f"client{index}" for index in range(clients)]
    for name in client_names:
        deployment.attach_client(topology.host(name))
        deployment.bootstrap_client(name, "server0")
    return ScaleValidationScenario(
        topology=topology,
        deployment=deployment,
        client_names=client_names,
        server_name="server0",
        bottleneck_rate_bps=bottleneck_rate_bps,
    )


def build_dumbbell(
    *,
    clients: int = 2,
    servers: int = 2,
    bottleneck_rate_bps: float = mbps(10),
    bottleneck_delay: float = msec(10),
    seed: int = 7,
) -> Topology:
    """A small dumbbell topology used by QoS and scheduler experiments."""
    rng = DeterministicRandom(seed)
    topology = Topology()
    topology.add_isp("left", 100, "10.10.0.0/16", discriminatory=True)
    topology.add_isp("right", 200, "10.20.0.0/16")
    topology.add_router("left-gw", "left", border=True)
    topology.add_router("right-gw", "right", border=True)
    for index in range(clients):
        name = f"client{index}"
        topology.add_host(name, "left")
        topology.add_link(name, "left-gw", rate_bps=mbps(100), delay_seconds=msec(1))
    for index in range(servers):
        name = f"server{index}"
        topology.add_host(name, "right")
        topology.add_link(name, "right-gw", rate_bps=mbps(100), delay_seconds=msec(1))
    topology.add_link(
        "left-gw", "right-gw", rate_bps=bottleneck_rate_bps, delay_seconds=bottleneck_delay
    )
    topology.build_routes()
    return topology
