"""Analysis layer: metrics, scenario builders, experiment runners, reports."""

from .metrics import (
    ComparisonRow,
    FlowSummary,
    FlowTracker,
    ThroughputResult,
    compare,
    measure_throughput,
)
from .report import (
    ExperimentReport,
    format_frontier_table,
    format_series,
    format_table,
)
from .scenarios import (
    COGENT_ANYCAST,
    COGENT_SITES,
    VERIZON_ANYCAST,
    Figure1Scenario,
    build_base_topology,
    build_dumbbell,
    build_figure1,
)

__all__ = [
    "ComparisonRow",
    "FlowSummary",
    "FlowTracker",
    "ThroughputResult",
    "compare",
    "measure_throughput",
    "ExperimentReport",
    "format_frontier_table",
    "format_series",
    "format_table",
    "COGENT_ANYCAST",
    "COGENT_SITES",
    "VERIZON_ANYCAST",
    "Figure1Scenario",
    "build_base_topology",
    "build_dumbbell",
    "build_figure1",
]
