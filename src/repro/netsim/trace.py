"""Packet tracing: per-node observations for assertions and debugging.

A :class:`TraceCollector` can be attached to links (as an observer) and to
routers/hosts (as hooks) to record what an eavesdropper at that vantage point
would see.  Experiments use it in two ways: to verify protocol behaviour
("the neutralizer swapped the addresses"), and to play the role of the
*discriminatory ISP's* vantage — the central privacy claim is about what is
visible inside AT&T, and tests assert it over the collected trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..packet.addresses import IPv4Address
from ..packet.packet import Packet


@dataclass(frozen=True)
class TraceRecord:
    """One observation of a packet at a vantage point."""

    time: float
    vantage: str
    source: IPv4Address
    destination: IPv4Address
    protocol: int
    dscp: int
    size_bytes: int
    shim_type: Optional[int]
    packet_id: int
    flow_id: Optional[str]
    payload_snippet: bytes

    def mentions_address(self, address: IPv4Address) -> bool:
        """Return ``True`` if the visible IP header carries ``address``."""
        return self.source == address or self.destination == address


class TraceCollector:
    """Collects :class:`TraceRecord` observations from hooks and observers."""

    def __init__(self, name: str = "trace", snippet_bytes: int = 16) -> None:
        self.name = name
        self.snippet_bytes = snippet_bytes
        self.records: List[TraceRecord] = []

    # -- attachment points ---------------------------------------------------------

    def link_observer(self) -> Callable[[Packet, object], None]:
        """Return an observer suitable for ``Link.observers``."""

        def observe(packet: Packet, from_interface) -> None:
            self._record(from_interface.node.sim.now, from_interface.node.name, packet)

        return observe

    def router_hook(self):
        """Return an ingress hook for routers that records and passes through."""

        def hook(packet: Packet, router, interface):
            self._record(router.sim.now, router.name, packet)
            return packet

        return hook

    def host_hook(self):
        """Return an ingress hook for hosts that records and passes through."""

        def hook(packet: Packet, host):
            self._record(host.sim.now, host.name, packet)
            return packet

        return hook

    def _record(self, time: float, vantage: str, packet: Packet) -> None:
        self.records.append(
            TraceRecord(
                time=time,
                vantage=vantage,
                source=packet.source,
                destination=packet.destination,
                protocol=packet.ip.protocol,
                dscp=packet.dscp,
                size_bytes=packet.size_bytes,
                shim_type=packet.shim.shim_type if packet.shim is not None else None,
                packet_id=packet.packet_id,
                flow_id=packet.flow_id,
                payload_snippet=bytes(packet.payload[: self.snippet_bytes]),
            )
        )

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def at_vantage(self, vantage: str) -> List[TraceRecord]:
        """All records observed at a given node."""
        return [record for record in self.records if record.vantage == vantage]

    def addresses_seen(self, vantage: Optional[str] = None) -> set:
        """Set of addresses visible in IP headers at ``vantage`` (or anywhere)."""
        records = self.records if vantage is None else self.at_vantage(vantage)
        seen = set()
        for record in records:
            seen.add(record.source)
            seen.add(record.destination)
        return seen

    def ever_saw_address(self, address: IPv4Address, vantage: Optional[str] = None) -> bool:
        """Return ``True`` if ``address`` ever appeared in a visible IP header."""
        records = self.records if vantage is None else self.at_vantage(vantage)
        return any(record.mentions_address(address) for record in records)

    def payload_contains(self, needle: bytes, vantage: Optional[str] = None) -> bool:
        """Return ``True`` if any recorded payload snippet contains ``needle``.

        Used to show that cleartext application payloads are visible to the
        access ISP *without* end-to-end encryption and invisible with it.
        """
        records = self.records if vantage is None else self.at_vantage(vantage)
        return any(needle in record.payload_snippet for record in records)

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()
