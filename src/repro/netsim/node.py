"""Nodes: the base class, end hosts, and their protocol dispatch.

A :class:`Node` owns interfaces and receives packets from links.  A
:class:`Host` is a single-homed end system with a tiny protocol stack:
handlers can be registered per IP protocol number or per UDP destination port,
which is how the neutralizer client stack, the e2e layer and the applications
plug in without subclassing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..exceptions import TopologyError
from ..packet.addresses import IPv4Address
from ..packet.headers import PROTO_UDP
from ..packet.packet import Packet
from .engine import Simulator
from .link import Interface
from .stats import Counters

#: Signature of protocol/port handlers: (packet, host) -> None.
PacketHandler = Callable[[Packet, "Host"], None]


class Node:
    """Base class of every simulated device."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.interfaces: List[Interface] = []
        self.counters = Counters()

    def add_interface(
        self, name: Optional[str] = None, address: Optional[IPv4Address] = None
    ) -> Interface:
        """Create and attach a new interface."""
        interface = Interface(self, name or f"eth{len(self.interfaces)}", address)
        self.interfaces.append(interface)
        return interface

    def interface_by_name(self, name: str) -> Interface:
        """Return the interface called ``name``."""
        for interface in self.interfaces:
            if interface.name == name:
                return interface
        raise TopologyError(f"node {self.name} has no interface {name!r}")

    @property
    def addresses(self) -> List[IPv4Address]:
        """All addresses assigned to this node's interfaces."""
        return [iface.address for iface in self.interfaces if iface.address is not None]

    def owns_address(self, address: IPv4Address) -> bool:
        """Return ``True`` if ``address`` is assigned to one of our interfaces."""
        return address in self.addresses

    def receive(self, packet: Packet, interface: Interface) -> None:
        """Handle an arriving packet; subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """A single-homed end host with a minimal protocol stack."""

    def __init__(self, sim: Simulator, name: str, address: IPv4Address) -> None:
        super().__init__(sim, name)
        self._primary = self.add_interface("eth0", address)
        #: Packets that no handler claimed, kept for tests and debugging.
        self.unclaimed: List[Packet] = []
        self._protocol_handlers: Dict[int, PacketHandler] = {}
        self._port_handlers: Dict[int, PacketHandler] = {}
        #: Outbound hooks applied (in order) to every sent packet.  The
        #: neutralizer client stack installs itself here so applications are
        #: unaware of whether their traffic is neutralized.
        self.egress_hooks: List[Callable[[Packet, "Host"], Optional[Packet]]] = []
        #: Inbound hooks applied before protocol dispatch (e2e decryption,
        #: neutralizer return-path handling).
        self.ingress_hooks: List[Callable[[Packet, "Host"], Optional[Packet]]] = []

    @property
    def address(self) -> IPv4Address:
        """The host's (single) IP address."""
        assert self._primary.address is not None
        return self._primary.address

    @property
    def primary_interface(self) -> Interface:
        """The host's only interface."""
        return self._primary

    # -- stack registration ----------------------------------------------------

    def register_protocol_handler(self, protocol: int, handler: PacketHandler) -> None:
        """Register a handler for an IP protocol number."""
        self._protocol_handlers[protocol] = handler

    def register_port_handler(self, port: int, handler: PacketHandler) -> None:
        """Register a handler for a UDP destination port."""
        self._port_handlers[port] = handler

    def unregister_port_handler(self, port: int) -> None:
        """Remove a UDP port handler if present."""
        self._port_handlers.pop(port, None)

    # -- sending ----------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Send a packet through the egress hooks and onto the wire."""
        packet.created_at = self.sim.now
        packet.record_hop(self.name)
        processed: Optional[Packet] = packet
        for hook in self.egress_hooks:
            processed = hook(processed, self)
            if processed is None:
                self.counters.increment("egress_absorbed")
                return True
        self.counters.increment("packets_sent")
        self.counters.increment("bytes_sent", processed.size_bytes)
        return self._primary.transmit(processed)

    def send_raw(self, packet: Packet) -> bool:
        """Send bypassing the egress hooks (used by the hooks themselves)."""
        packet.created_at = packet.created_at or self.sim.now
        self.counters.increment("packets_sent")
        self.counters.increment("bytes_sent", packet.size_bytes)
        return self._primary.transmit(packet)

    # -- receiving ----------------------------------------------------------------

    def receive(self, packet: Packet, interface: Interface) -> None:
        """Run ingress hooks then dispatch to protocol/port handlers."""
        packet.record_hop(self.name)
        self.counters.increment("packets_received")
        self.counters.increment("bytes_received", packet.size_bytes)
        processed: Optional[Packet] = packet
        for hook in self.ingress_hooks:
            processed = hook(processed, self)
            if processed is None:
                self.counters.increment("ingress_absorbed")
                return
        self._dispatch(processed)

    def _dispatch(self, packet: Packet) -> None:
        if packet.ip.protocol == PROTO_UDP and packet.udp is not None:
            handler = self._port_handlers.get(packet.udp.destination_port)
            if handler is not None:
                handler(packet, self)
                return
        handler = self._protocol_handlers.get(packet.ip.protocol)
        if handler is not None:
            handler(packet, self)
            return
        self.unclaimed.append(packet)
        self.counters.increment("packets_unclaimed")
