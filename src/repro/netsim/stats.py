"""Lightweight counters and samplers attached to links and nodes.

The heavier aggregation (per-flow throughput, MOS, tables) lives in
:mod:`repro.analysis.metrics`; these classes only collect raw observations
during a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Counters:
    """A bag of named integer counters."""

    values: Dict[str, int] = field(default_factory=dict)

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self.values[name] = self.values.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Return the value of ``name`` (zero when never incremented)."""
        return self.values.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Return a copy of all counters."""
        return dict(self.values)


@dataclass
class LatencySampler:
    """Collects latency samples and reports simple order statistics."""

    samples: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        """Record one latency observation in seconds."""
        self.samples.append(value)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean latency (0.0 when empty, so reports never divide by zero)."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def maximum(self) -> float:
        """Largest observed latency."""
        return max(self.samples) if self.samples else 0.0

    def percentile(self, fraction: float) -> float:
        """Return the ``fraction`` quantile (nearest-rank) of the samples."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]

    @property
    def jitter(self) -> float:
        """Mean absolute difference between consecutive samples (RFC 3550 style)."""
        if len(self.samples) < 2:
            return 0.0
        diffs = [abs(b - a) for a, b in zip(self.samples, self.samples[1:])]
        return sum(diffs) / len(diffs)


@dataclass
class LinkStats:
    """Per-direction link statistics."""

    packets_sent: int = 0
    bytes_sent: int = 0
    packets_dropped: int = 0
    queue_peak: int = 0

    def record_sent(self, size_bytes: int) -> None:
        """Account for a packet handed to the wire."""
        self.packets_sent += 1
        self.bytes_sent += size_bytes

    def record_drop(self) -> None:
        """Account for a packet dropped at the queue."""
        self.packets_dropped += 1

    def record_queue_depth(self, depth: int) -> None:
        """Track the worst queue depth seen."""
        if depth > self.queue_peak:
            self.queue_peak = depth

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets that were dropped."""
        offered = self.packets_sent + self.packets_dropped
        if offered == 0:
            return 0.0
        return self.packets_dropped / offered
