"""ISP domains: address ownership, business relationships, and roles.

The paper's whole argument hinges on *who is whose customer*: an ISP may
differentiate among its own customers (market forces discipline that), but it
must not be able to target a non-customer.  :class:`ISP` therefore tracks a
prefix (address ownership), the set of member routers and attached customer
hosts, and its business relationships with other ISPs (customer / provider /
peer), which both the discrimination policies and the experiment reports
consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..exceptions import TopologyError
from ..packet.addresses import AddressAllocator, IPv4Address, Prefix


class Relationship(Enum):
    """Business relationship from this ISP's point of view."""

    CUSTOMER = "customer"
    PROVIDER = "provider"
    PEER = "peer"


@dataclass
class ISP:
    """An autonomous system participating in the simulated internetwork."""

    name: str
    asn: int
    prefix: Prefix
    #: ISPs that support the neutralizer service place boxes at their border.
    supports_neutralizer: bool = False
    #: ISPs intending to discriminate in a non-neutral manner (§2).
    discriminatory: bool = False
    router_names: List[str] = field(default_factory=list)
    host_names: List[str] = field(default_factory=list)
    border_router_names: List[str] = field(default_factory=list)
    relationships: Dict[str, Relationship] = field(default_factory=dict)
    _allocator: Optional[AddressAllocator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._allocator is None:
            self._allocator = AddressAllocator(self.prefix)

    # -- address management -----------------------------------------------------

    def allocate_address(self) -> IPv4Address:
        """Allocate the next host address inside this ISP's prefix."""
        assert self._allocator is not None
        return self._allocator.allocate()

    def owns_address(self, address: IPv4Address) -> bool:
        """Return ``True`` if ``address`` falls inside this ISP's prefix."""
        return self.prefix.contains(address)

    # -- membership ----------------------------------------------------------------

    def add_router(self, name: str, border: bool = False) -> None:
        """Record a router as part of this ISP."""
        if name not in self.router_names:
            self.router_names.append(name)
        if border and name not in self.border_router_names:
            self.border_router_names.append(name)

    def add_host(self, name: str) -> None:
        """Record a directly attached customer host."""
        if name not in self.host_names:
            self.host_names.append(name)

    # -- relationships ----------------------------------------------------------------

    def set_relationship(self, other_isp: str, relationship: Relationship) -> None:
        """Declare the business relationship with another ISP."""
        self.relationships[other_isp] = relationship

    def relationship_with(self, other_isp: str) -> Optional[Relationship]:
        """Return the declared relationship with ``other_isp`` (None if unknown)."""
        return self.relationships.get(other_isp)

    def is_customer_isp(self, other_isp: str) -> bool:
        """Return ``True`` if ``other_isp`` buys transit from this ISP."""
        return self.relationships.get(other_isp) == Relationship.CUSTOMER

    def is_peer_isp(self, other_isp: str) -> bool:
        """Return ``True`` if ``other_isp`` peers settlement-free with this ISP."""
        return self.relationships.get(other_isp) == Relationship.PEER

    def describe(self) -> str:
        """One-line description used by experiment reports."""
        role = []
        if self.discriminatory:
            role.append("discriminatory")
        if self.supports_neutralizer:
            role.append("neutral")
        role_text = "/".join(role) or "transit"
        return f"{self.name} (AS{self.asn}, {self.prefix}, {role_text})"


class IspRegistry:
    """All ISPs of a topology, with address-to-ISP resolution."""

    def __init__(self) -> None:
        self._isps: Dict[str, ISP] = {}

    def add(self, isp: ISP) -> ISP:
        """Register an ISP; names must be unique."""
        if isp.name in self._isps:
            raise TopologyError(f"duplicate ISP name {isp.name!r}")
        self._isps[isp.name] = isp
        return isp

    def get(self, name: str) -> ISP:
        """Return the ISP called ``name``."""
        try:
            return self._isps[name]
        except KeyError as exc:
            raise TopologyError(f"unknown ISP {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._isps

    def __iter__(self):
        return iter(self._isps.values())

    def __len__(self) -> int:
        return len(self._isps)

    def owner_of(self, address: IPv4Address) -> Optional[ISP]:
        """Return the ISP whose prefix contains ``address`` (longest match)."""
        best: Optional[ISP] = None
        for isp in self._isps.values():
            if isp.owns_address(address):
                if best is None or isp.prefix.length > best.prefix.length:
                    best = isp
        return best

    def names(self) -> List[str]:
        """Names of all registered ISPs."""
        return list(self._isps)
