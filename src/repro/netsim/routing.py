"""Route computation: shortest paths over the topology graph, plus anycast.

Routing is computed offline (before or between experiment phases) with
:mod:`networkx` shortest paths and installed as exact-match host routes plus
ISP prefix routes on every router.  Anycast addresses — the neutralizer
service address — are resolved per-router to the *nearest* group member, which
reproduces the paper's claim that "any neutralizer can decrypt the destination
address and forward the packet" as long as the boxes share the master key.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..exceptions import RoutingError, TopologyError
from ..packet.addresses import IPv4Address
from .link import Interface, Link
from .node import Host, Node
from .router import Router


class RoutingComputer:
    """Computes and installs forwarding state for a topology."""

    def __init__(self, nodes: Dict[str, Node], links: List[Link]) -> None:
        self._nodes = nodes
        self._links = links
        self._graph = self._build_graph()

    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for name in self._nodes:
            graph.add_node(name)
        for link in self._links:
            a, b = link.ends
            # Weight by propagation delay with a small constant so zero-delay
            # links still cost one hop; deterministic tie-breaks come from
            # sorted neighbour iteration below.
            weight = link.delay_seconds + 1e-6
            graph.add_edge(
                a.node.name,
                b.node.name,
                weight=weight,
                interfaces={a.node.name: a, b.node.name: b},
            )
        return graph

    @property
    def graph(self) -> nx.Graph:
        """The underlying undirected topology graph (read-only use)."""
        return self._graph

    # -- path helpers --------------------------------------------------------------

    def shortest_path(self, source: str, target: str) -> List[str]:
        """Node names along the shortest path from ``source`` to ``target``."""
        try:
            return nx.shortest_path(self._graph, source, target, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise RoutingError(f"no path from {source} to {target}") from exc

    def path_cost(self, source: str, target: str) -> float:
        """Total weight of the shortest path between two nodes."""
        try:
            return nx.shortest_path_length(self._graph, source, target, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise RoutingError(f"no path from {source} to {target}") from exc

    def _egress_interface(self, from_node: str, to_node: str) -> Interface:
        data = self._graph.get_edge_data(from_node, to_node)
        if data is None:
            raise RoutingError(f"{from_node} and {to_node} are not adjacent")
        return data["interfaces"][from_node]

    def next_hop_interface(self, router_name: str, target_name: str) -> Optional[Interface]:
        """The interface ``router_name`` should use toward ``target_name``."""
        if router_name == target_name:
            return None
        path = self.shortest_path(router_name, target_name)
        return self._egress_interface(path[0], path[1])

    # -- route installation ------------------------------------------------------------

    def _address_owners(self) -> List[Tuple[IPv4Address, str]]:
        owners: List[Tuple[IPv4Address, str]] = []
        for name, node in self._nodes.items():
            for address in node.addresses:
                owners.append((address, name))
        return owners

    def install_routes(
        self,
        anycast_members: Optional[Dict[IPv4Address, List[str]]] = None,
        isp_prefixes: Optional[Dict[str, Tuple]] = None,
    ) -> None:
        """Install host routes everywhere, then anycast and prefix routes.

        ``anycast_members`` maps an anycast address to the names of nodes that
        answer for it.  ``isp_prefixes`` maps an ISP name to a tuple of
        (Prefix, list-of-router-names) used for aggregate routes covering
        dynamically assigned addresses.
        """
        owners = self._address_owners()
        routers = [node for node in self._nodes.values() if isinstance(node, Router)]
        for router in routers:
            router.clear_routes()
            for address, owner_name in owners:
                if owner_name == router.name:
                    continue
                try:
                    interface = self.next_hop_interface(router.name, owner_name)
                except RoutingError:
                    continue
                if interface is not None:
                    router.add_host_route(address, interface)
            if anycast_members:
                for address, members in anycast_members.items():
                    nearest = self.nearest_member(router.name, members)
                    if nearest is None or nearest == router.name:
                        continue
                    interface = self.next_hop_interface(router.name, nearest)
                    if interface is not None:
                        router.add_host_route(address, interface)
            if isp_prefixes:
                for _isp_name, (prefix, gateway_names) in isp_prefixes.items():
                    nearest = self.nearest_member(router.name, gateway_names)
                    if nearest is None or nearest == router.name:
                        continue
                    try:
                        interface = self.next_hop_interface(router.name, nearest)
                    except RoutingError:
                        continue
                    if interface is not None:
                        router.add_prefix_route(prefix, interface)

    def nearest_member(self, from_node: str, members: List[str]) -> Optional[str]:
        """Return the group member nearest to ``from_node`` (deterministic ties)."""
        best_name: Optional[str] = None
        best_cost = float("inf")
        for member in sorted(members):
            if member == from_node:
                return member
            try:
                cost = self.path_cost(from_node, member)
            except RoutingError:
                continue
            if cost < best_cost:
                best_cost = cost
                best_name = member
        return best_name

    def install_address_route(self, address: IPv4Address, owner_name: str) -> None:
        """Install routes for a single, newly created address (dynamic QoS addresses)."""
        if owner_name not in self._nodes:
            raise TopologyError(f"unknown node {owner_name!r}")
        for node in self._nodes.values():
            if not isinstance(node, Router) or node.name == owner_name:
                continue
            try:
                interface = self.next_hop_interface(node.name, owner_name)
            except RoutingError:
                continue
            if interface is not None:
                node.add_host_route(address, interface)


def validate_reachability(computer: RoutingComputer, hosts: List[Host]) -> None:
    """Raise if any pair of hosts lacks a path (topology sanity check)."""
    names = [host.name for host in hosts]
    for source in names:
        for target in names:
            if source != target:
                computer.shortest_path(source, target)
