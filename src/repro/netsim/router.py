"""Routers: longest-prefix forwarding, hooks for middleboxes, local services.

Routers forward by longest-prefix match over routes installed by
:mod:`repro.netsim.routing`.  Two extension points make the reproduction's
experiments possible without subclassing:

* **ingress/egress hooks** — callables run on every transiting packet.  The
  discriminatory-ISP policies (:mod:`repro.discrimination`) are ingress hooks
  on that ISP's routers; pushback rate limiters are too.
* **local services** — address-keyed handlers.  A neutralizer is "either an
  inline box or part of a border router's functionality" (§3); we model it as
  a local service bound to the anycast address on the neutral ISP's border
  routers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import HeaderError, RoutingError
from ..packet.addresses import IPv4Address, Prefix
from ..packet.packet import Packet
from .engine import Simulator
from .link import Interface
from .node import Node

#: Hook signature: (packet, router, arriving interface) -> packet or None (drop).
RouterHook = Callable[[Packet, "Router", Optional[Interface]], Optional[Packet]]
#: Local service signature: (packet, router, arriving interface) -> None.
LocalService = Callable[[Packet, "Router", Optional[Interface]], None]


class Router(Node):
    """An IP router with pluggable middlebox hooks."""

    def __init__(self, sim: Simulator, name: str, isp_name: Optional[str] = None) -> None:
        super().__init__(sim, name)
        self.isp_name = isp_name
        #: Host routes: exact destination address -> egress interface.
        self._host_routes: Dict[IPv4Address, Interface] = {}
        #: Prefix routes, longest prefix first at lookup time.
        self._prefix_routes: List[Tuple[Prefix, Interface]] = []
        self.ingress_hooks: List[RouterHook] = []
        self.egress_hooks: List[RouterHook] = []
        self._local_services: Dict[IPv4Address, LocalService] = {}
        #: Packets dropped because no route matched (kept for debugging).
        self.unroutable: List[Packet] = []

    # -- route management --------------------------------------------------------

    def add_host_route(self, destination: IPv4Address, interface: Interface) -> None:
        """Install or replace an exact-match route."""
        self._host_routes[destination] = interface

    def add_prefix_route(self, destination: Prefix, interface: Interface) -> None:
        """Install or replace a prefix route."""
        self._prefix_routes = [
            (p, i) for (p, i) in self._prefix_routes if str(p) != str(destination)
        ]
        self._prefix_routes.append((destination, interface))
        self._prefix_routes.sort(key=lambda entry: entry[0].length, reverse=True)

    def clear_routes(self) -> None:
        """Remove every installed route (used when routing is recomputed)."""
        self._host_routes.clear()
        self._prefix_routes.clear()

    def lookup(self, destination: IPv4Address) -> Optional[Interface]:
        """Longest-prefix-match lookup; host routes win over prefix routes."""
        interface = self._host_routes.get(destination)
        if interface is not None:
            return interface
        for prefix, candidate in self._prefix_routes:
            if prefix.contains(destination):
                return candidate
        return None

    @property
    def route_count(self) -> int:
        """Number of installed routes (host + prefix)."""
        return len(self._host_routes) + len(self._prefix_routes)

    # -- local services -------------------------------------------------------------

    def attach_local_service(self, address: IPv4Address, service: LocalService) -> None:
        """Bind a service (e.g. a neutralizer) to an address terminating here."""
        self._local_services[address] = service

    def detach_local_service(self, address: IPv4Address) -> None:
        """Remove a previously attached service."""
        self._local_services.pop(address, None)

    def serves_address(self, address: IPv4Address) -> bool:
        """Return ``True`` if a local service or interface owns ``address``."""
        return address in self._local_services or self.owns_address(address)

    # -- forwarding -------------------------------------------------------------------

    def receive(self, packet: Packet, interface: Optional[Interface]) -> None:
        """Run ingress hooks, deliver locally, or forward."""
        packet.record_hop(self.name)
        self.counters.increment("packets_received")
        processed: Optional[Packet] = packet
        for hook in self.ingress_hooks:
            processed = hook(processed, self, interface)
            if processed is None:
                self.counters.increment("packets_dropped_by_policy")
                return
        destination = processed.destination
        service = self._local_services.get(destination)
        if service is not None:
            self.counters.increment("packets_to_local_service")
            service(processed, self, interface)
            return
        if self.owns_address(destination):
            self.counters.increment("packets_delivered_locally")
            return
        self.forward(processed, interface)

    def forward(self, packet: Packet, arriving: Optional[Interface] = None) -> bool:
        """Forward ``packet`` toward its destination; returns acceptance."""
        try:
            packet = packet.copy()
            packet.ip = packet.ip.decremented_ttl()
        except HeaderError:
            self.counters.increment("packets_ttl_expired")
            return False
        if packet.ip.ttl == 0:
            self.counters.increment("packets_ttl_expired")
            return False
        egress = self.lookup(packet.destination)
        if egress is None:
            self.unroutable.append(packet)
            self.counters.increment("packets_unroutable")
            return False
        processed: Optional[Packet] = packet
        for hook in self.egress_hooks:
            processed = hook(processed, self, arriving)
            if processed is None:
                self.counters.increment("packets_dropped_by_policy")
                return False
        self.counters.increment("packets_forwarded")
        return egress.transmit(processed)

    def inject(self, packet: Packet) -> bool:
        """Originate a packet from this router (used by attached services)."""
        packet.created_at = packet.created_at or self.sim.now
        packet.record_hop(self.name)
        egress = self.lookup(packet.destination)
        if egress is None:
            self.unroutable.append(packet)
            self.counters.increment("packets_unroutable")
            return False
        self.counters.increment("packets_injected")
        return egress.transmit(packet)


def raise_routing_error(router: Router, destination: IPv4Address) -> None:
    """Helper for strict experiments that treat unroutable packets as bugs."""
    raise RoutingError(f"{router.name} has no route toward {destination}")
