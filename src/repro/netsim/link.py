"""Interfaces and point-to-point links.

A :class:`Link` connects two :class:`Interface` objects and models
store-and-forward transmission: serialization delay (packet size over the link
rate), propagation delay, and an egress queue per direction.  The queue is a
pluggable scheduler (FIFO by default) so QoS experiments can install
priority/DRR/token-bucket disciplines on specific links without touching the
forwarding code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exceptions import TopologyError
from ..packet.addresses import IPv4Address
from ..packet.packet import Packet
from ..qos.schedulers import FifoScheduler, Scheduler
from ..units import transmission_time
from .engine import Simulator
from .stats import LinkStats


class Interface:
    """A network interface belonging to a node, optionally addressed."""

    def __init__(self, node, name: str, address: Optional[IPv4Address] = None) -> None:
        self.node = node
        self.name = name
        self.address = address
        self.link: Optional[Link] = None

    @property
    def is_connected(self) -> bool:
        """``True`` when the interface is attached to a link."""
        return self.link is not None

    def transmit(self, packet: Packet) -> bool:
        """Hand a packet to the attached link; returns ``False`` if dropped."""
        if self.link is None:
            raise TopologyError(f"interface {self.name} of {self.node.name} is not connected")
        return self.link.transmit(self, packet)

    def deliver(self, packet: Packet) -> None:
        """Called by the link when a packet arrives at this interface."""
        self.node.receive(packet, self)

    @property
    def peer(self) -> Optional["Interface"]:
        """The interface at the other end of the link, if connected."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Interface {self.node.name}.{self.name} addr={self.address}>"


@dataclass
class _Direction:
    """Per-direction transmission state."""

    scheduler: Scheduler
    busy: bool = False
    stats: LinkStats = field(default_factory=LinkStats)


class Link:
    """A bidirectional point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        end_a: Interface,
        end_b: Interface,
        *,
        rate_bps: float,
        delay_seconds: float,
        scheduler_a_to_b: Optional[Scheduler] = None,
        scheduler_b_to_a: Optional[Scheduler] = None,
        name: Optional[str] = None,
        loss_rate: float = 0.0,
        loss_decider: Optional[Callable[[Packet], bool]] = None,
    ) -> None:
        if rate_bps <= 0:
            raise TopologyError("link rate must be positive")
        if delay_seconds < 0:
            raise TopologyError("link delay cannot be negative")
        if not 0.0 <= loss_rate < 1.0:
            raise TopologyError("loss rate must be in [0, 1)")
        self.sim = sim
        self.ends = (end_a, end_b)
        self.rate_bps = float(rate_bps)
        self.delay_seconds = float(delay_seconds)
        self.loss_rate = loss_rate
        self._loss_decider = loss_decider
        self.name = name or f"{end_a.node.name}<->{end_b.node.name}"
        end_a.link = self
        end_b.link = self
        # Note: schedulers define __len__ and an empty queue is falsy, so the
        # presence test must be an explicit "is not None".
        self._directions: Dict[Interface, _Direction] = {
            end_a: _Direction(
                scheduler=scheduler_a_to_b if scheduler_a_to_b is not None else FifoScheduler()
            ),
            end_b: _Direction(
                scheduler=scheduler_b_to_a if scheduler_b_to_a is not None else FifoScheduler()
            ),
        }
        # Token-bucket schedulers need a clock; wire it up if they want one.
        for direction in self._directions.values():
            set_clock = getattr(direction.scheduler, "set_clock", None)
            if callable(set_clock):
                set_clock(lambda: self.sim.now)
        #: Optional observers called as (packet, from_iface) on every accepted send.
        self.observers: List[Callable[[Packet, Interface], None]] = []

    def other_end(self, interface: Interface) -> Interface:
        """Return the interface at the opposite end from ``interface``."""
        if interface is self.ends[0]:
            return self.ends[1]
        if interface is self.ends[1]:
            return self.ends[0]
        raise TopologyError(f"{interface!r} is not attached to {self.name}")

    def stats_from(self, interface: Interface) -> LinkStats:
        """Return the egress statistics for the direction leaving ``interface``."""
        return self._directions[interface].stats

    def scheduler_from(self, interface: Interface) -> Scheduler:
        """Return the egress scheduler for the direction leaving ``interface``."""
        return self._directions[interface].scheduler

    def set_scheduler(self, from_interface: Interface, scheduler: Scheduler) -> None:
        """Replace the egress scheduler of one direction (QoS experiments)."""
        direction = self._directions[from_interface]
        direction.scheduler = scheduler
        set_clock = getattr(scheduler, "set_clock", None)
        if callable(set_clock):
            set_clock(lambda: self.sim.now)

    # -- transmission ---------------------------------------------------------

    def transmit(self, from_interface: Interface, packet: Packet) -> bool:
        """Queue ``packet`` for transmission from ``from_interface``.

        Returns ``True`` if the packet was accepted (queued or sent), ``False``
        if the egress queue dropped it.
        """
        direction = self._directions[from_interface]
        for observer in self.observers:
            observer(packet, from_interface)
        if self._should_lose(packet):
            direction.stats.record_drop()
            return False
        if direction.busy:
            accepted = direction.scheduler.enqueue(packet)
            if not accepted:
                direction.stats.record_drop()
                return False
            direction.stats.record_queue_depth(len(direction.scheduler))
            return True
        self._start_transmission(from_interface, direction, packet)
        return True

    def _should_lose(self, packet: Packet) -> bool:
        if self._loss_decider is not None:
            return self._loss_decider(packet)
        if self.loss_rate <= 0.0:
            return False
        # Deterministic pseudo-loss keyed on the packet id keeps runs replayable.
        return (hash((self.name, packet.packet_id)) % 10_000) < self.loss_rate * 10_000

    def _start_transmission(
        self, from_interface: Interface, direction: _Direction, packet: Packet
    ) -> None:
        direction.busy = True
        tx_time = transmission_time(packet.size_bytes, self.rate_bps)
        direction.stats.record_sent(packet.size_bytes)
        self.sim.schedule(tx_time, self._transmission_complete, from_interface, packet)

    def _transmission_complete(self, from_interface: Interface, packet: Packet) -> None:
        direction = self._directions[from_interface]
        destination = self.other_end(from_interface)
        self.sim.schedule(self.delay_seconds, destination.deliver, packet)
        next_packet = direction.scheduler.dequeue()
        if next_packet is not None:
            self._start_transmission(from_interface, direction, next_packet)
        else:
            direction.busy = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.rate_bps/1e6:.1f}Mbps {self.delay_seconds*1e3:.1f}ms>"
