"""Discrete-event network simulator: engine, links, nodes, routers, ISPs."""

from .engine import Event, Simulator
from .isp import ISP, IspRegistry, Relationship
from .link import Interface, Link
from .node import Host, Node
from .router import Router
from .routing import RoutingComputer, validate_reachability
from .stats import Counters, LatencySampler, LinkStats
from .topology import Topology
from .trace import TraceCollector, TraceRecord

__all__ = [
    "Event",
    "Simulator",
    "ISP",
    "IspRegistry",
    "Relationship",
    "Interface",
    "Link",
    "Host",
    "Node",
    "Router",
    "RoutingComputer",
    "validate_reachability",
    "Counters",
    "LatencySampler",
    "LinkStats",
    "Topology",
    "TraceCollector",
    "TraceRecord",
]
