"""Topology builder: ISPs, routers, hosts, links, anycast groups, routing.

A :class:`Topology` is the container that experiments build once and then run
traffic over.  It owns the simulator, the node and link registries, the ISP
registry and the anycast groups, and knows how to (re)compute routing.  The
paper's Figure-1 scenario is assembled from these primitives by
:mod:`repro.analysis.scenarios`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..exceptions import TopologyError
from ..packet.addresses import (
    AnycastAddress,
    AnycastGroup,
    IPv4Address,
    Prefix,
)
from ..qos.schedulers import Scheduler
from ..units import mbps, msec
from .engine import Simulator
from .isp import ISP, IspRegistry, Relationship
from .link import Interface, Link
from .node import Host, Node
from .router import Router
from .routing import RoutingComputer

NodeOrName = Union[Node, str]


class Topology:
    """A simulated internetwork under construction or in use."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim or Simulator()
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self.isps = IspRegistry()
        self.anycast_groups: Dict[IPv4Address, AnycastGroup] = {}
        self._routing: Optional[RoutingComputer] = None

    # -- node management -----------------------------------------------------------

    def _register(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def add_isp(
        self,
        name: str,
        asn: int,
        prefix: Union[Prefix, str],
        *,
        supports_neutralizer: bool = False,
        discriminatory: bool = False,
    ) -> ISP:
        """Register an ISP (autonomous system) and its address block."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        isp = ISP(
            name=name,
            asn=asn,
            prefix=prefix,
            supports_neutralizer=supports_neutralizer,
            discriminatory=discriminatory,
        )
        return self.isps.add(isp)

    def add_router(
        self,
        name: str,
        isp: Optional[Union[ISP, str]] = None,
        *,
        border: bool = False,
        address: Optional[IPv4Address] = None,
    ) -> Router:
        """Create a router, optionally assigning it to an ISP and an address."""
        isp_obj = self._resolve_isp(isp)
        router = Router(self.sim, name, isp_name=isp_obj.name if isp_obj else None)
        if isp_obj is not None:
            isp_obj.add_router(name, border=border)
            if address is None:
                address = isp_obj.allocate_address()
        if address is not None:
            router.add_interface("lo0", address)
        return self._register(router)  # type: ignore[return-value]

    def add_host(
        self,
        name: str,
        isp: Optional[Union[ISP, str]] = None,
        *,
        address: Optional[IPv4Address] = None,
    ) -> Host:
        """Create a host inside an ISP (address allocated from its prefix)."""
        isp_obj = self._resolve_isp(isp)
        if address is None:
            if isp_obj is None:
                raise TopologyError(f"host {name!r} needs either an ISP or an explicit address")
            address = isp_obj.allocate_address()
        host = Host(self.sim, name, address)
        if isp_obj is not None:
            isp_obj.add_host(name)
        return self._register(host)  # type: ignore[return-value]

    def _resolve_isp(self, isp: Optional[Union[ISP, str]]) -> Optional[ISP]:
        if isp is None:
            return None
        if isinstance(isp, ISP):
            return isp
        return self.isps.get(isp)

    def node(self, name: str) -> Node:
        """Return any node by name."""
        try:
            return self.nodes[name]
        except KeyError as exc:
            raise TopologyError(f"unknown node {name!r}") from exc

    def host(self, name: str) -> Host:
        """Return a host by name (type-checked)."""
        node = self.node(name)
        if not isinstance(node, Host):
            raise TopologyError(f"node {name!r} is not a host")
        return node

    def router(self, name: str) -> Router:
        """Return a router by name (type-checked)."""
        node = self.node(name)
        if not isinstance(node, Router):
            raise TopologyError(f"node {name!r} is not a router")
        return node

    @property
    def hosts(self) -> List[Host]:
        """All hosts in the topology."""
        return [node for node in self.nodes.values() if isinstance(node, Host)]

    @property
    def routers(self) -> List[Router]:
        """All routers in the topology."""
        return [node for node in self.nodes.values() if isinstance(node, Router)]

    # -- links ------------------------------------------------------------------------

    def add_link(
        self,
        end_a: NodeOrName,
        end_b: NodeOrName,
        *,
        rate_bps: float = mbps(100),
        delay_seconds: float = msec(5),
        scheduler_a_to_b: Optional[Scheduler] = None,
        scheduler_b_to_a: Optional[Scheduler] = None,
        name: Optional[str] = None,
    ) -> Link:
        """Connect two nodes with a point-to-point link.

        Hosts use their existing primary interface; routers get a fresh
        unnumbered interface per link (addresses live on loopbacks).
        """
        node_a = end_a if isinstance(end_a, Node) else self.node(end_a)
        node_b = end_b if isinstance(end_b, Node) else self.node(end_b)
        iface_a = self._link_interface(node_a)
        iface_b = self._link_interface(node_b)
        link = Link(
            self.sim,
            iface_a,
            iface_b,
            rate_bps=rate_bps,
            delay_seconds=delay_seconds,
            scheduler_a_to_b=scheduler_a_to_b,
            scheduler_b_to_a=scheduler_b_to_a,
            name=name,
        )
        self.links.append(link)
        self._routing = None  # topology changed, routing is stale
        return link

    @staticmethod
    def _link_interface(node: Node) -> Interface:
        if isinstance(node, Host):
            if node.primary_interface.is_connected:
                raise TopologyError(f"host {node.name} is single-homed and already connected")
            return node.primary_interface
        return node.add_interface()

    def link_between(self, name_a: str, name_b: str) -> Link:
        """Return the link connecting two named nodes."""
        for link in self.links:
            names = {link.ends[0].node.name, link.ends[1].node.name}
            if names == {name_a, name_b}:
                return link
        raise TopologyError(f"no link between {name_a!r} and {name_b!r}")

    # -- anycast ---------------------------------------------------------------------

    def create_anycast_group(
        self, address: Union[IPv4Address, str], service: str = "neutralizer"
    ) -> AnycastGroup:
        """Create (or return) the anycast group for ``address``."""
        if isinstance(address, str):
            address = IPv4Address.parse(address)
        if address in self.anycast_groups:
            return self.anycast_groups[address]
        group = AnycastGroup(AnycastAddress(address, service))
        self.anycast_groups[address] = group
        return group

    def join_anycast_group(self, address: Union[IPv4Address, str], node_name: str) -> None:
        """Add a node to an anycast group (creating the group if needed)."""
        if node_name not in self.nodes:
            raise TopologyError(f"unknown node {node_name!r}")
        group = self.create_anycast_group(address if not isinstance(address, str) else address)
        group.add_member(node_name)
        self._routing = None

    # -- business relationships ---------------------------------------------------------

    def set_relationship(self, isp_a: str, isp_b: str, relationship: Relationship) -> None:
        """Declare ``isp_b`` as customer/provider/peer of ``isp_a`` (and the inverse)."""
        a = self.isps.get(isp_a)
        b = self.isps.get(isp_b)
        a.set_relationship(isp_b, relationship)
        inverse = {
            Relationship.CUSTOMER: Relationship.PROVIDER,
            Relationship.PROVIDER: Relationship.CUSTOMER,
            Relationship.PEER: Relationship.PEER,
        }[relationship]
        b.set_relationship(isp_a, inverse)

    # -- routing ---------------------------------------------------------------------------

    def build_routes(self) -> RoutingComputer:
        """(Re)compute and install forwarding state on every router."""
        computer = RoutingComputer(self.nodes, self.links)
        anycast_members = {
            address: group.members for address, group in self.anycast_groups.items()
        }
        isp_prefixes = {}
        for isp in self.isps:
            gateways = isp.border_router_names or isp.router_names
            if gateways:
                isp_prefixes[isp.name] = (isp.prefix, gateways)
        computer.install_routes(anycast_members=anycast_members, isp_prefixes=isp_prefixes)
        self._routing = computer
        return computer

    @property
    def routing(self) -> RoutingComputer:
        """The current routing computation (built on demand)."""
        if self._routing is None:
            return self.build_routes()
        return self._routing

    def register_dynamic_address(self, address: IPv4Address, owner_name: str) -> None:
        """Install routes for an address created after :meth:`build_routes`.

        Used by the QoS dynamic-address remedy of §3.4: the neutralizer mints
        a pseudo-address for a flow, attaches it locally, and the rest of the
        network needs a route toward it.
        """
        self.routing.install_address_route(address, owner_name)

    # -- convenience -----------------------------------------------------------------------

    def run(self, duration: float) -> int:
        """Advance the simulation by ``duration`` seconds."""
        return self.sim.run_for(duration)

    def isp_of_address(self, address: IPv4Address) -> Optional[ISP]:
        """Return the ISP owning ``address``, if any."""
        return self.isps.owner_of(address)

    def describe(self) -> str:
        """Multi-line human-readable summary (used by examples)."""
        lines = [f"Topology: {len(self.nodes)} nodes, {len(self.links)} links"]
        for isp in self.isps:
            lines.append(f"  {isp.describe()}")
            lines.append(f"    routers: {', '.join(isp.router_names) or '-'}")
            lines.append(f"    hosts:   {', '.join(isp.host_names) or '-'}")
        for address, group in self.anycast_groups.items():
            lines.append(f"  anycast {address}: {', '.join(group.members) or '-'}")
        return "\n".join(lines)
