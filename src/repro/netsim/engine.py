"""Discrete-event simulation engine.

A deliberately small engine: a monotonic clock, a binary-heap event queue, and
callback-style events.  Ties are broken by insertion order so runs are fully
deterministic, which the reproduction relies on (every experiment is replayed
from a seed and must yield identical traces).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..exceptions import SchedulingError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, sequence) so simultaneous events fire in the order they
    were scheduled.  ``cancelled`` events stay in the heap until the engine
    pops them or compacts the queue — they are never executed.
    """

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    _on_cancel: Optional[Callable[[], None]] = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it."""
        if not self.cancelled:
            self.cancelled = True
            if self._on_cancel is not None:
                self._on_cancel()


class Simulator:
    """The discrete-event scheduler shared by every simulated component."""

    #: Below this queue size, cancelled entries are left for run() to skip;
    #: compaction only pays for itself on long-lived queues.
    _COMPACT_MIN_EVENTS = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._running = False
        self._processed = 0
        self._cancelled_pending = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled placeholders).

        On queues of at least ``_COMPACT_MIN_EVENTS``, cancelled placeholders
        never accumulate past half the queue: the engine compacts the heap
        lazily once they would.  Smaller queues keep their placeholders until
        :meth:`run` pops them.
        """
        return len(self._heap)

    def _note_cancelled(self) -> None:
        """Record one cancellation; compact when placeholders dominate.

        Long-running simulations cancel events constantly (retransmit timers,
        DNS timeouts), and a cancelled entry used to stay in the heap until
        its deadline — an unbounded leak for timers far in the future.  When
        cancelled entries exceed half of a non-trivial queue, rebuilding the
        heap without them is cheaper than carrying them.
        """
        self._cancelled_pending += 1
        if (len(self._heap) >= self._COMPACT_MIN_EVENTS
                and self._cancelled_pending * 2 > len(self._heap)):
            self._heap = [event for event in self._heap if not event.cancelled]
            heapq.heapify(self._heap)
            self._cancelled_pending = 0

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time:.9f}, simulation time is already {self._now:.9f}"
            )
        event = Event(time=time, sequence=next(self._sequence), callback=callback, args=args)
        event._on_cancel = self._note_cancelled
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the number of events executed by this call.  ``until`` is
        inclusive: events scheduled exactly at ``until`` run, later ones stay
        queued and the clock is advanced to ``until``.
        """
        if self._running:
            raise SchedulingError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                # Once popped the event is no longer heap-resident: a late
                # cancel() must not count toward the compaction trigger.
                event._on_cancel = None
                if event.cancelled:
                    self._cancelled_pending = max(0, self._cancelled_pending - 1)
                    continue
                self._now = event.time
                event.callback(*event.args)
                executed += 1
                self._processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return executed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run(until=self._now + duration, max_events=max_events)

    def reset(self) -> None:
        """Drop all pending events and rewind the clock (test helper)."""
        for event in self._heap:
            # Discarded events must not feed the new run's compaction counter
            # if a stale handle cancels them later.
            event._on_cancel = None
        self._heap.clear()
        self._now = 0.0
        self._processed = 0
        self._cancelled_pending = 0
