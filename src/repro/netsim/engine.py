"""Discrete-event simulation engine.

A deliberately small engine: a monotonic clock, a binary-heap event queue, and
callback-style events.  Ties are broken by insertion order so runs are fully
deterministic, which the reproduction relies on (every experiment is replayed
from a seed and must yield identical traces).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..exceptions import SchedulingError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, sequence) so simultaneous events fire in the order they
    were scheduled.  ``cancelled`` events stay in the heap but are skipped.
    """

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it."""
        self.cancelled = True


class Simulator:
    """The discrete-event scheduler shared by every simulated component."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled placeholders)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time:.9f}, simulation time is already {self._now:.9f}"
            )
        event = Event(time=time, sequence=next(self._sequence), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the number of events executed by this call.  ``until`` is
        inclusive: events scheduled exactly at ``until`` run, later ones stay
        queued and the clock is advanced to ``until``.
        """
        if self._running:
            raise SchedulingError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args)
                executed += 1
                self._processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return executed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run(until=self._now + duration, max_events=max_events)

    def reset(self) -> None:
        """Drop all pending events and rewind the clock (test helper)."""
        self._heap.clear()
        self._now = 0.0
        self._processed = 0
