"""Integrated Services (RFC 1633) style per-flow reservations, RSVP-lite.

Section 3.4 notes a real tension: a discriminatory ISP "can no longer keep per
flow state (a flow refers to a source and a destination pair) to provide
guaranteed services to anonymized traffic", and offers two remedies:

1. the neutralizer assigns a **dynamic address** to the customer for the QoS
   session, so the ISP can identify a *flow* without mapping it to a customer;
2. the customer **opts out** of anonymization for that session.

This module models the reservation bookkeeping an ISP keeps (admission control
against link capacity) and the two remedies, so experiment E9's guaranteed-
service variant and the associated unit tests can exercise them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import ReservationError
from ..packet.addresses import IPv4Address
from ..packet.packet import Packet


@dataclass(frozen=True)
class FlowSpec:
    """The (source, destination, rate) description of a guaranteed-service flow."""

    source: IPv4Address
    destination: IPv4Address
    rate_bps: float
    token_bucket_bytes: int = 30_000

    @property
    def flow_key(self) -> Tuple[IPv4Address, IPv4Address]:
        """The per-flow key an IntServ router keeps state under."""
        return (self.source, self.destination)


@dataclass
class Reservation:
    """An admitted reservation."""

    spec: FlowSpec
    reservation_id: int
    #: Whether the source address in the spec is a neutralizer-minted dynamic
    #: address (remedy 1) rather than the customer's real address.
    uses_dynamic_address: bool = False


class ReservationTable:
    """Per-router (or per-ISP) admission control and flow-state table."""

    def __init__(self, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ReservationError("capacity must be positive")
        self.capacity_bps = float(capacity_bps)
        self._reservations: Dict[Tuple[IPv4Address, IPv4Address], Reservation] = {}
        self._next_id = 1

    @property
    def reserved_bps(self) -> float:
        """Total rate currently admitted."""
        return sum(r.spec.rate_bps for r in self._reservations.values())

    @property
    def available_bps(self) -> float:
        """Capacity remaining for new reservations."""
        return self.capacity_bps - self.reserved_bps

    def admit(self, spec: FlowSpec, *, uses_dynamic_address: bool = False) -> Reservation:
        """Admit a flow or raise :class:`ReservationError` if capacity is lacking."""
        if spec.rate_bps <= 0:
            raise ReservationError("reservation rate must be positive")
        if spec.rate_bps > self.available_bps:
            raise ReservationError(
                f"insufficient capacity: requested {spec.rate_bps/1e6:.2f} Mbps, "
                f"available {self.available_bps/1e6:.2f} Mbps"
            )
        if spec.flow_key in self._reservations:
            raise ReservationError(f"flow {spec.flow_key} already has a reservation")
        reservation = Reservation(
            spec=spec,
            reservation_id=self._next_id,
            uses_dynamic_address=uses_dynamic_address,
        )
        self._next_id += 1
        self._reservations[spec.flow_key] = reservation
        return reservation

    def release(self, spec: FlowSpec) -> None:
        """Tear down a reservation."""
        if spec.flow_key not in self._reservations:
            raise ReservationError(f"no reservation for flow {spec.flow_key}")
        del self._reservations[spec.flow_key]

    def lookup(self, packet: Packet) -> Optional[Reservation]:
        """Return the reservation matching a packet's visible (src, dst) pair.

        This is exactly the operation that breaks under anonymization: for a
        neutralized packet the visible source is the neutralizer's anycast
        address, so no per-customer flow state can match unless a dynamic
        address (remedy 1) or an opt-out (remedy 2) is used.
        """
        return self._reservations.get((packet.source, packet.destination))

    def flows(self) -> List[Reservation]:
        """All admitted reservations."""
        return list(self._reservations.values())

    def __len__(self) -> int:
        return len(self._reservations)


class DynamicAddressPool:
    """Pool of pseudo-addresses a neutralizer mints for QoS sessions (remedy 1).

    The mapping from dynamic address to real customer address is known only to
    the neutralizer; the discriminatory ISP sees a stable per-flow address it
    can reserve resources for, but cannot tie it to a customer identity.
    """

    def __init__(self, addresses: List[IPv4Address]) -> None:
        if not addresses:
            raise ReservationError("dynamic address pool cannot be empty")
        self._free = list(addresses)
        self._assigned: Dict[IPv4Address, IPv4Address] = {}

    def assign(self, customer: IPv4Address) -> IPv4Address:
        """Assign a dynamic address to ``customer`` (idempotent per customer)."""
        for dynamic, owner in self._assigned.items():
            if owner == customer:
                return dynamic
        if not self._free:
            raise ReservationError("dynamic address pool exhausted")
        dynamic = self._free.pop(0)
        self._assigned[dynamic] = customer
        return dynamic

    def owner_of(self, dynamic: IPv4Address) -> Optional[IPv4Address]:
        """Return the customer behind a dynamic address (neutralizer-side only)."""
        return self._assigned.get(dynamic)

    def release(self, dynamic: IPv4Address) -> None:
        """Return a dynamic address to the pool."""
        if dynamic in self._assigned:
            del self._assigned[dynamic]
            self._free.append(dynamic)

    @property
    def assigned_count(self) -> int:
        """Number of dynamic addresses currently assigned."""
        return len(self._assigned)
