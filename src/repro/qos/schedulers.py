"""Packet schedulers and policers used on link egress.

The paper's §3.4 argument is that tiered service survives neutralization
because the DSCP stays visible.  To demonstrate that (experiment E9) the
simulator needs real schedulers: a drop-tail FIFO (the default on every link),
a strict-priority scheduler keyed on DSCP, a deficit-round-robin scheduler for
weighted sharing, and a token-bucket policer/shaper that discriminatory ISPs
use to throttle classes of traffic.

All schedulers implement the same small interface consumed by
:class:`repro.netsim.link.Link`:

``enqueue(packet) -> bool``
    Accept a packet or return ``False`` when it must be dropped.
``dequeue() -> Packet | None``
    Return the next packet to transmit, or ``None`` when idle.
``__len__``
    Number of queued packets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..packet.dscp import priority_of
from ..packet.packet import Packet

#: Default queue capacity (packets) used when a caller does not specify one.
DEFAULT_QUEUE_CAPACITY = 256


class Scheduler:
    """Interface shared by all egress schedulers."""

    def enqueue(self, packet: Packet) -> bool:
        raise NotImplementedError

    def dequeue(self) -> Optional[Packet]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def drops(self) -> int:
        """Number of packets this scheduler has refused."""
        return getattr(self, "_drops", 0)


class FifoScheduler(Scheduler):
    """Single drop-tail FIFO queue (default link behaviour)."""

    def __init__(self, capacity: int = DEFAULT_QUEUE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._queue: Deque[Packet] = deque()
        self._drops = 0

    def enqueue(self, packet: Packet) -> bool:
        if len(self._queue) >= self.capacity:
            self._drops += 1
            return False
        self._queue.append(packet)
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class PriorityScheduler(Scheduler):
    """Strict-priority scheduler over DSCP classes.

    Packets are classified by :func:`repro.packet.dscp.priority_of`; the
    highest non-empty priority is always served first.  Each priority level
    has its own drop-tail capacity so a flooded low class cannot starve the
    queue memory of higher classes.
    """

    def __init__(self, capacity_per_class: int = DEFAULT_QUEUE_CAPACITY) -> None:
        if capacity_per_class < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity_per_class = capacity_per_class
        self._queues: Dict[int, Deque[Packet]] = {}
        self._drops = 0

    def enqueue(self, packet: Packet) -> bool:
        priority = priority_of(packet.dscp)
        queue = self._queues.setdefault(priority, deque())
        if len(queue) >= self.capacity_per_class:
            self._drops += 1
            return False
        queue.append(packet)
        return True

    def dequeue(self) -> Optional[Packet]:
        for priority in sorted(self._queues, reverse=True):
            queue = self._queues[priority]
            if queue:
                return queue.popleft()
        return None

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())


@dataclass
class _DrrClass:
    queue: Deque[Packet] = field(default_factory=deque)
    quantum: int = 1500
    deficit: int = 0


class DeficitRoundRobinScheduler(Scheduler):
    """Deficit round robin: byte-weighted fair sharing across DSCP classes.

    ``weights`` maps a DSCP priority level to a relative weight; the quantum
    of each class is ``weight * quantum_bytes``.  Unknown levels get weight 1.
    """

    def __init__(
        self,
        weights: Optional[Dict[int, float]] = None,
        quantum_bytes: int = 1500,
        capacity_per_class: int = DEFAULT_QUEUE_CAPACITY,
    ) -> None:
        self._weights = dict(weights or {})
        self._quantum = quantum_bytes
        self._capacity = capacity_per_class
        self._classes: Dict[int, _DrrClass] = {}
        self._active: List[int] = []
        self._drops = 0

    def _class_for(self, packet: Packet) -> int:
        return priority_of(packet.dscp)

    def enqueue(self, packet: Packet) -> bool:
        key = self._class_for(packet)
        drr = self._classes.get(key)
        if drr is None:
            weight = self._weights.get(key, 1.0)
            drr = _DrrClass(quantum=max(1, int(weight * self._quantum)))
            self._classes[key] = drr
        if len(drr.queue) >= self._capacity:
            self._drops += 1
            return False
        drr.queue.append(packet)
        if key not in self._active:
            self._active.append(key)
        return True

    def dequeue(self) -> Optional[Packet]:
        # Round-robin over active classes, spending deficit in bytes.
        rounds = 0
        while self._active and rounds < 2 * len(self._active) + 2:
            key = self._active[0]
            drr = self._classes[key]
            if not drr.queue:
                self._active.pop(0)
                drr.deficit = 0
                continue
            head = drr.queue[0]
            if drr.deficit < head.size_bytes:
                drr.deficit += drr.quantum
                self._active.append(self._active.pop(0))
                rounds += 1
                continue
            drr.deficit -= head.size_bytes
            packet = drr.queue.popleft()
            if not drr.queue:
                drr.deficit = 0
                self._active.pop(0)
            return packet
        # Fallback: serve any non-empty class to guarantee work conservation.
        for key, drr in self._classes.items():
            if drr.queue:
                return drr.queue.popleft()
        return None

    def __len__(self) -> int:
        return sum(len(c.queue) for c in self._classes.values())


class TokenBucket:
    """A token-bucket rate limiter used by policers and shapers.

    Time is supplied by the caller (the simulator clock) so the bucket is a
    pure data structure and is trivially testable.
    """

    def __init__(self, rate_bytes_per_second: float, burst_bytes: int) -> None:
        if rate_bytes_per_second <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate_bytes_per_second)
        self.burst = int(burst_bytes)
        self._tokens = float(burst_bytes)
        self._last_update = 0.0

    def _refill(self, now: float) -> None:
        if now < self._last_update:
            # The simulator clock never moves backwards; guard anyway.
            return
        self._tokens = min(self.burst, self._tokens + (now - self._last_update) * self.rate)
        self._last_update = now

    def allow(self, size_bytes: int, now: float) -> bool:
        """Consume tokens for a packet of ``size_bytes`` at time ``now`` if possible."""
        self._refill(now)
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens currently available (mainly for tests)."""
        return self._tokens


class TokenBucketScheduler(Scheduler):
    """A FIFO scheduler policed by a token bucket (non-conforming packets dropped).

    Discriminatory ISPs use this to model "slow down traffic class X to Y
    bits/second" policies; the clock must be provided by the owner via
    :meth:`set_clock` because schedulers are passive objects.
    """

    def __init__(
        self,
        rate_bytes_per_second: float,
        burst_bytes: int = 30_000,
        capacity: int = DEFAULT_QUEUE_CAPACITY,
    ) -> None:
        self._bucket = TokenBucket(rate_bytes_per_second, burst_bytes)
        self._fifo = FifoScheduler(capacity)
        self._drops = 0
        self._clock = lambda: 0.0

    def set_clock(self, clock) -> None:
        """Install a zero-argument callable returning the current sim time."""
        self._clock = clock

    def enqueue(self, packet: Packet) -> bool:
        if not self._bucket.allow(packet.size_bytes, self._clock()):
            self._drops += 1
            return False
        accepted = self._fifo.enqueue(packet)
        if not accepted:
            self._drops += 1
        return accepted

    def dequeue(self) -> Optional[Packet]:
        return self._fifo.dequeue()

    def __len__(self) -> int:
        return len(self._fifo)
