"""Differentiated Services (RFC 2475) per-hop behaviours.

Section 3.4: "a discriminatory ISP can still offer differentiated services to
its customers, as a neutralizer will not modify the DSCP in a standard IP
header."  This module maps DSCPs to per-hop behaviours and builds the egress
schedulers that implement them, so experiment E9 can show tiered service
working end-to-end over neutralized traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from ..packet.dscp import Dscp, priority_of
from ..packet.packet import Packet
from .schedulers import (
    DeficitRoundRobinScheduler,
    FifoScheduler,
    PriorityScheduler,
    Scheduler,
)


class PerHopBehaviour(Enum):
    """The standard DiffServ PHB groups."""

    EXPEDITED_FORWARDING = "EF"
    ASSURED_FORWARDING = "AF"
    CLASS_SELECTOR = "CS"
    DEFAULT = "BE"


def phb_of(dscp: int) -> PerHopBehaviour:
    """Classify a DSCP value into its PHB group."""
    if dscp == Dscp.EF:
        return PerHopBehaviour.EXPEDITED_FORWARDING
    if dscp in (
        Dscp.AF11, Dscp.AF12, Dscp.AF13,
        Dscp.AF21, Dscp.AF22, Dscp.AF23,
        Dscp.AF31, Dscp.AF32, Dscp.AF33,
        Dscp.AF41, Dscp.AF42, Dscp.AF43,
    ):
        return PerHopBehaviour.ASSURED_FORWARDING
    if dscp in (Dscp.CS1, Dscp.CS2, Dscp.CS3, Dscp.CS4, Dscp.CS5, Dscp.CS6, Dscp.CS7):
        return PerHopBehaviour.CLASS_SELECTOR
    return PerHopBehaviour.DEFAULT


@dataclass(frozen=True)
class ServiceLevelAgreement:
    """A simple SLA a customer buys from its ISP.

    ``dscp`` is the marking the customer is entitled to use; ``rate_bps`` is
    the committed information rate the ISP polices at the access link.  The
    reproduction uses SLAs for the *legitimate* tiered-service experiments and
    to contrast them with non-neutral discrimination.
    """

    customer: str
    dscp: int
    rate_bps: float
    burst_bytes: int = 30_000

    def describe(self) -> str:
        return f"{self.customer}: DSCP {self.dscp} at {self.rate_bps/1e6:.1f} Mbps"


class DiffServDomain:
    """Per-ISP DiffServ configuration: SLAs and scheduler construction."""

    def __init__(self, isp_name: str) -> None:
        self.isp_name = isp_name
        self._slas: Dict[str, ServiceLevelAgreement] = {}

    def add_sla(self, sla: ServiceLevelAgreement) -> None:
        """Register (or replace) a customer's SLA."""
        self._slas[sla.customer] = sla

    def sla_for(self, customer: str) -> Optional[ServiceLevelAgreement]:
        """Return the SLA of ``customer`` if one exists."""
        return self._slas.get(customer)

    def remark(self, packet: Packet, customer: str) -> Packet:
        """Re-mark a packet according to the customer's SLA (edge conditioning).

        Packets from customers without an SLA are re-marked to best effort —
        that is the legitimate DiffServ edge behaviour, as opposed to the
        non-neutral policies in :mod:`repro.discrimination`.
        """
        sla = self._slas.get(customer)
        target_dscp = sla.dscp if sla is not None else int(Dscp.BEST_EFFORT)
        if packet.dscp == target_dscp:
            return packet
        new = packet.copy()
        new.ip = type(new.ip)(
            source=new.ip.source,
            destination=new.ip.destination,
            protocol=new.ip.protocol,
            dscp=target_dscp,
            ecn=new.ip.ecn,
            identification=new.ip.identification,
            ttl=new.ip.ttl,
        )
        return new

    @staticmethod
    def build_scheduler(kind: str = "priority", **kwargs) -> Scheduler:
        """Build an egress scheduler implementing the domain's PHBs.

        ``kind`` is one of ``"fifo"``, ``"priority"``, ``"drr"``.
        """
        if kind == "fifo":
            return FifoScheduler(**kwargs)
        if kind == "priority":
            return PriorityScheduler(**kwargs)
        if kind == "drr":
            return DeficitRoundRobinScheduler(**kwargs)
        raise ValueError(f"unknown scheduler kind {kind!r}")


def expected_priority_order(dscps) -> bool:
    """Return ``True`` if the iterable of DSCPs is sorted from high to low priority.

    Experiment helpers use this to assert that observed per-class latencies
    respect the configured tiering.
    """
    priorities = [priority_of(d) for d in dscps]
    return all(a >= b for a, b in zip(priorities, priorities[1:]))
