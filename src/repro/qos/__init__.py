"""QoS substrate: schedulers, DiffServ per-hop behaviours, IntServ reservations."""

from .diffserv import (
    DiffServDomain,
    PerHopBehaviour,
    ServiceLevelAgreement,
    expected_priority_order,
    phb_of,
)
from .intserv import DynamicAddressPool, FlowSpec, Reservation, ReservationTable
from .schedulers import (
    DEFAULT_QUEUE_CAPACITY,
    DeficitRoundRobinScheduler,
    FifoScheduler,
    PriorityScheduler,
    Scheduler,
    TokenBucket,
    TokenBucketScheduler,
)

__all__ = [
    "DiffServDomain",
    "PerHopBehaviour",
    "ServiceLevelAgreement",
    "expected_priority_order",
    "phb_of",
    "DynamicAddressPool",
    "FlowSpec",
    "Reservation",
    "ReservationTable",
    "DEFAULT_QUEUE_CAPACITY",
    "DeficitRoundRobinScheduler",
    "FifoScheduler",
    "PriorityScheduler",
    "Scheduler",
    "TokenBucket",
    "TokenBucketScheduler",
]
