"""Discriminatory-ISP models: DPI, match criteria, policies, enforcement."""

from .classifier import (
    MatchCriteria,
    criteria_for_application,
    criteria_for_destination,
    criteria_for_dns_name,
    criteria_for_encrypted_traffic,
    criteria_for_key_setup,
    criteria_for_prefix,
)
from .dpi import InspectionReport, inspect
from .isp import (
    DiscriminatoryIspDeployment,
    EnforcementStatistics,
    PolicyEnforcementPoint,
    install_policy,
)
from .policy import (
    Action,
    DiscriminationPolicy,
    DiscriminationRule,
    RuleStatistics,
    block_application_policy,
    degrade_competitor_policy,
    delay_dns_policy,
    drop_key_setup_policy,
    throttle_encrypted_policy,
    throttle_neutral_isp_policy,
)

__all__ = [
    "MatchCriteria",
    "criteria_for_application",
    "criteria_for_destination",
    "criteria_for_dns_name",
    "criteria_for_encrypted_traffic",
    "criteria_for_key_setup",
    "criteria_for_prefix",
    "InspectionReport",
    "inspect",
    "DiscriminatoryIspDeployment",
    "EnforcementStatistics",
    "PolicyEnforcementPoint",
    "install_policy",
    "Action",
    "DiscriminationPolicy",
    "DiscriminationRule",
    "RuleStatistics",
    "block_application_policy",
    "degrade_competitor_policy",
    "delay_dns_policy",
    "drop_key_setup_policy",
    "throttle_encrypted_policy",
    "throttle_neutral_isp_policy",
]
