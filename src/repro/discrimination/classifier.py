"""Match criteria for discrimination rules.

A :class:`MatchCriteria` describes which packets a rule applies to, expressed
over what the ISP can *see*: header addresses/prefixes, protocol, ports, DSCP,
application labels and DNS names from DPI, encryption status, and key-setup
status.  The same criteria objects are reused by the experiment harness to
measure collateral damage: "how much traffic that the ISP did *not* intend to
hit also matched this rule".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..packet.addresses import IPv4Address, Prefix
from ..packet.packet import Packet
from .dpi import InspectionReport, inspect


@dataclass(frozen=True)
class MatchCriteria:
    """Packet-matching predicate built from visible fields only."""

    name: str = "any"
    source_address: Optional[IPv4Address] = None
    destination_address: Optional[IPv4Address] = None
    source_prefix: Optional[Prefix] = None
    destination_prefix: Optional[Prefix] = None
    #: Match if *either* direction references the address (src or dst).
    involves_address: Optional[IPv4Address] = None
    #: Match if either direction falls inside the prefix.
    involves_prefix: Optional[Prefix] = None
    protocol: Optional[int] = None
    destination_port: Optional[int] = None
    dscp: Optional[int] = None
    application: Optional[str] = None
    dns_query_name: Optional[str] = None
    match_encrypted: Optional[bool] = None
    match_key_setup: Optional[bool] = None
    match_neutralized: Optional[bool] = None
    minimum_size_bytes: Optional[int] = None

    def matches(self, packet: Packet, report: Optional[InspectionReport] = None) -> bool:
        """Return ``True`` if ``packet`` satisfies every specified criterion."""
        report = report if report is not None else inspect(packet)
        checks = (
            self._check(self.source_address, report.source),
            self._check(self.destination_address, report.destination),
            self._check_prefix(self.source_prefix, report.source),
            self._check_prefix(self.destination_prefix, report.destination),
            self._check_involves_address(report),
            self._check_involves_prefix(report),
            self._check(self.protocol, report.protocol),
            self._check(self.destination_port, report.destination_port),
            self._check(self.dscp, report.dscp),
            self._check(self.application, report.application),
            self._check(self.dns_query_name, report.dns_query_name),
            self._check(self.match_encrypted, report.is_encrypted),
            self._check(self.match_key_setup, report.is_key_setup),
            self._check(self.match_neutralized, report.is_neutralized),
            self._check_minimum_size(report),
        )
        return all(checks)

    @staticmethod
    def _check(expected, actual) -> bool:
        return expected is None or expected == actual

    @staticmethod
    def _check_prefix(expected: Optional[Prefix], actual: IPv4Address) -> bool:
        return expected is None or expected.contains(actual)

    def _check_involves_address(self, report: InspectionReport) -> bool:
        if self.involves_address is None:
            return True
        return report.source == self.involves_address or (
            report.destination == self.involves_address
        )

    def _check_involves_prefix(self, report: InspectionReport) -> bool:
        if self.involves_prefix is None:
            return True
        return self.involves_prefix.contains(report.source) or self.involves_prefix.contains(
            report.destination
        )

    def _check_minimum_size(self, report: InspectionReport) -> bool:
        if self.minimum_size_bytes is None:
            return True
        return report.size_bytes >= self.minimum_size_bytes


# -- convenience criteria used across experiments -----------------------------------


def criteria_for_destination(address: IPv4Address, name: str = "") -> MatchCriteria:
    """Target every packet *toward or from* a specific (non-customer) host.

    This is the attack the neutralizer defeats: once the host hides behind the
    anycast address, no packet matches any more.
    """
    return MatchCriteria(name=name or f"involves {address}", involves_address=address)


def criteria_for_application(application: str, name: str = "") -> MatchCriteria:
    """Target an application type recognized by DPI (e.g. "voip")."""
    return MatchCriteria(name=name or f"application {application}", application=application)


def criteria_for_dns_name(query_name: str, name: str = "") -> MatchCriteria:
    """Target cleartext DNS queries for a specific name (the §3.1 attack)."""
    return MatchCriteria(name=name or f"dns {query_name}", dns_query_name=query_name)


def criteria_for_prefix(prefix: Prefix, name: str = "") -> MatchCriteria:
    """Target everything to or from an ISP's whole prefix (residual, §3.6 case 1)."""
    return MatchCriteria(name=name or f"prefix {prefix}", involves_prefix=prefix)


def criteria_for_encrypted_traffic(name: str = "encrypted traffic") -> MatchCriteria:
    """Target encrypted/neutralized traffic as a class (residual, §3.6 case 2)."""
    return MatchCriteria(name=name, match_encrypted=True)


def criteria_for_key_setup(name: str = "key setup packets") -> MatchCriteria:
    """Target neutralizer key-setup packets (residual, §3.6 case 3)."""
    return MatchCriteria(name=name, match_key_setup=True)
