"""Discrimination rules, actions, and policies.

A :class:`DiscriminationRule` pairs a :class:`MatchCriteria` with an action —
drop, delay, throttle, or deprioritize — and its parameters.  A
:class:`DiscriminationPolicy` is an ordered rule list evaluated first-match.
The policy object also keeps per-rule hit statistics, which the experiment
reports use to quantify how much traffic a rule touched (and, for neutralized
traffic, how much *collateral* traffic a blunt rule had to touch to affect its
intended victim — the §3.6 argument made measurable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..packet.dscp import Dscp
from ..packet.packet import Packet
from ..qos.schedulers import TokenBucket
from .classifier import MatchCriteria
from .dpi import InspectionReport, inspect


class Action(Enum):
    """What a matching rule does to a packet."""

    ALLOW = "allow"
    DROP = "drop"
    DELAY = "delay"
    THROTTLE = "throttle"
    DEPRIORITIZE = "deprioritize"


@dataclass
class DiscriminationRule:
    """One rule of a discriminatory ISP's policy."""

    criteria: MatchCriteria
    action: Action
    #: Extra one-way delay added by DELAY rules, in seconds.
    delay_seconds: float = 0.0
    #: Drop probability applied by DROP rules (1.0 = always drop).
    drop_probability: float = 1.0
    #: Rate cap enforced by THROTTLE rules, in bits per second.
    throttle_rate_bps: float = 0.0
    #: DSCP that DEPRIORITIZE rules rewrite to (scavenger class by default).
    deprioritize_dscp: int = int(Dscp.CS1)
    #: Free-form note describing the business intent (shown in reports).
    intent: str = ""

    def __post_init__(self) -> None:
        if self.action == Action.DELAY and self.delay_seconds <= 0:
            raise ValueError("DELAY rules need a positive delay_seconds")
        if self.action == Action.THROTTLE and self.throttle_rate_bps <= 0:
            raise ValueError("THROTTLE rules need a positive throttle_rate_bps")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")

    @property
    def name(self) -> str:
        """Rule display name (from its criteria)."""
        return self.criteria.name


@dataclass
class RuleStatistics:
    """Hit counters for one rule."""

    matched_packets: int = 0
    matched_bytes: int = 0
    dropped_packets: int = 0
    delayed_packets: int = 0
    deprioritized_packets: int = 0


class DiscriminationPolicy:
    """An ordered, first-match rule list with hit statistics."""

    def __init__(self, name: str, rules: Optional[List[DiscriminationRule]] = None) -> None:
        self.name = name
        self.rules: List[DiscriminationRule] = list(rules or [])
        self.statistics: Dict[str, RuleStatistics] = {
            rule.name: RuleStatistics() for rule in self.rules
        }
        #: Token buckets for THROTTLE rules, keyed by rule name.
        self._buckets: Dict[str, TokenBucket] = {}
        self.total_packets_seen = 0

    def add_rule(self, rule: DiscriminationRule) -> None:
        """Append a rule to the policy."""
        self.rules.append(rule)
        self.statistics.setdefault(rule.name, RuleStatistics())

    def evaluate(
        self, packet: Packet, report: Optional[InspectionReport] = None
    ) -> Optional[DiscriminationRule]:
        """Return the first matching rule, updating match statistics."""
        matches = self.evaluate_all(packet, report)
        return matches[0] if matches else None

    def evaluate_all(
        self, packet: Packet, report: Optional[InspectionReport] = None
    ) -> List[DiscriminationRule]:
        """Return every matching rule in order, updating match statistics."""
        self.total_packets_seen += 1
        report = report if report is not None else inspect(packet)
        matched: List[DiscriminationRule] = []
        for rule in self.rules:
            if rule.criteria.matches(packet, report):
                stats = self.statistics[rule.name]
                stats.matched_packets += 1
                stats.matched_bytes += packet.size_bytes
                matched.append(rule)
        return matched

    def bucket_for(self, rule: DiscriminationRule) -> TokenBucket:
        """Return (creating on first use) the token bucket of a THROTTLE rule."""
        if rule.name not in self._buckets:
            self._buckets[rule.name] = TokenBucket(
                rate_bytes_per_second=rule.throttle_rate_bps / 8.0,
                burst_bytes=max(3000, int(rule.throttle_rate_bps / 8.0 * 0.1)),
            )
        return self._buckets[rule.name]

    def stats_for(self, rule_name: str) -> RuleStatistics:
        """Return the statistics of the named rule."""
        return self.statistics[rule_name]

    def describe(self) -> str:
        """Multi-line summary for reports."""
        lines = [f"Policy {self.name!r} ({len(self.rules)} rules):"]
        for rule in self.rules:
            stats = self.statistics[rule.name]
            lines.append(
                f"  [{rule.action.value:>12}] {rule.name}: matched "
                f"{stats.matched_packets} pkts / {stats.matched_bytes} B"
                + (f"  # {rule.intent}" if rule.intent else "")
            )
        return "\n".join(lines)


# -- policies the paper talks about, as ready-made constructors ---------------------------


def degrade_competitor_policy(
    competitor_address, *, extra_delay_seconds: float = 0.150, drop_probability: float = 0.25,
    intent: str = "degrade competing VoIP so our own offering wins",
) -> DiscriminationPolicy:
    """The §1 scenario: intentionally degrade a competitor's service.

    Matches everything involving the competitor's address and both delays and
    randomly drops it — enough to ruin interactive applications while staying
    subtle ("a user ... might not bother to switch").
    """
    from .classifier import criteria_for_destination

    return DiscriminationPolicy(
        name="degrade-competitor",
        rules=[
            DiscriminationRule(
                criteria=criteria_for_destination(
                    competitor_address, name=f"delay competitor {competitor_address}"
                ),
                action=Action.DELAY,
                delay_seconds=extra_delay_seconds,
                intent=intent,
            ),
            DiscriminationRule(
                criteria=criteria_for_destination(
                    competitor_address, name=f"drop competitor {competitor_address}"
                ),
                action=Action.DROP,
                drop_probability=drop_probability,
                intent=intent,
            ),
        ],
    )


def block_application_policy(application: str, intent: str = "") -> DiscriminationPolicy:
    """Blunt application blocking (e.g. drop everything DPI labels "voip")."""
    from .classifier import criteria_for_application

    return DiscriminationPolicy(
        name=f"block-{application}",
        rules=[
            DiscriminationRule(
                criteria=criteria_for_application(application),
                action=Action.DROP,
                intent=intent or f"block {application} entirely",
            )
        ],
    )


def delay_dns_policy(query_name: str, delay_seconds: float = 0.5) -> DiscriminationPolicy:
    """The §3.1 attack: delay cleartext DNS queries for a specific site."""
    from .classifier import criteria_for_dns_name

    return DiscriminationPolicy(
        name=f"delay-dns-{query_name}",
        rules=[
            DiscriminationRule(
                criteria=criteria_for_dns_name(query_name),
                action=Action.DELAY,
                delay_seconds=delay_seconds,
                intent=f"slow lookups of {query_name} (site did not pay)",
            )
        ],
    )


def throttle_neutral_isp_policy(prefix, rate_bps: float,
                                intent: str = "squeeze the neutral ISP as a whole") -> DiscriminationPolicy:
    """Residual §3.6 case 1: throttle everything to/from the neutral ISP's prefix."""
    from .classifier import criteria_for_prefix

    return DiscriminationPolicy(
        name="throttle-neutral-isp",
        rules=[
            DiscriminationRule(
                criteria=criteria_for_prefix(prefix),
                action=Action.THROTTLE,
                throttle_rate_bps=rate_bps,
                intent=intent,
            )
        ],
    )


def throttle_encrypted_policy(rate_bps: float) -> DiscriminationPolicy:
    """Residual §3.6 case 2: throttle encrypted traffic as a class."""
    from .classifier import criteria_for_encrypted_traffic

    return DiscriminationPolicy(
        name="throttle-encrypted",
        rules=[
            DiscriminationRule(
                criteria=criteria_for_encrypted_traffic(),
                action=Action.THROTTLE,
                throttle_rate_bps=rate_bps,
                intent="penalize traffic we cannot inspect",
            )
        ],
    )


def drop_key_setup_policy(drop_probability: float = 1.0) -> DiscriminationPolicy:
    """Residual §3.6 case 3: interfere with neutralizer key-setup packets."""
    from .classifier import criteria_for_key_setup

    return DiscriminationPolicy(
        name="drop-key-setup",
        rules=[
            DiscriminationRule(
                criteria=criteria_for_key_setup(),
                action=Action.DROP,
                drop_probability=drop_probability,
                intent="break the neutralizer bootstrap",
            )
        ],
    )
