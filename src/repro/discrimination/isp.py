"""Wiring a discrimination policy into an ISP's routers.

A :class:`PolicyEnforcementPoint` turns a :class:`DiscriminationPolicy` into a
router ingress hook that drops, delays, throttles, or re-marks matching
packets.  :func:`install_policy` attaches enforcement points to every router
of a named ISP in a topology — modelling an access/transit ISP that
discriminates anywhere inside its own network (it cannot, per the paper's
threat model, touch packets outside its network).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..netsim.router import Router
from ..netsim.topology import Topology
from ..packet.packet import Packet
from .dpi import inspect
from .policy import Action, DiscriminationPolicy, DiscriminationRule


@dataclass
class EnforcementStatistics:
    """What one enforcement point did to traffic."""

    packets_inspected: int = 0
    packets_dropped: int = 0
    packets_delayed: int = 0
    packets_throttled_away: int = 0
    packets_remarked: int = 0
    extra_delay_added_seconds: float = 0.0


class PolicyEnforcementPoint:
    """A policy instance bound to one router."""

    def __init__(
        self,
        policy: DiscriminationPolicy,
        router: Router,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.policy = policy
        self.router = router
        self._rng = rng or DEFAULT_SOURCE
        self.stats = EnforcementStatistics()

    def as_hook(self):
        """Return the router ingress hook implementing this enforcement point."""

        def hook(packet: Packet, router: Router, interface) -> Optional[Packet]:
            return self._apply(packet)

        return hook

    def install(self) -> "PolicyEnforcementPoint":
        """Attach the hook to the router's ingress."""
        self.router.ingress_hooks.append(self.as_hook())
        return self

    # -- enforcement ------------------------------------------------------------

    def _apply(self, packet: Packet) -> Optional[Packet]:
        self.stats.packets_inspected += 1
        report = inspect(packet)
        rules = self.policy.evaluate_all(packet, report)
        current: Optional[Packet] = packet
        for rule in rules:
            if current is None:
                break
            if rule.action == Action.ALLOW:
                continue
            if rule.action == Action.DROP:
                current = self._apply_drop(current, rule)
            elif rule.action == Action.DELAY:
                current = self._apply_delay(current, rule)
            elif rule.action == Action.THROTTLE:
                current = self._apply_throttle(current, rule)
            elif rule.action == Action.DEPRIORITIZE:
                current = self._apply_deprioritize(current, rule)
        return current

    def _apply_drop(self, packet: Packet, rule: DiscriminationRule) -> Optional[Packet]:
        if self._rng.random_float() <= rule.drop_probability:
            self.stats.packets_dropped += 1
            self.policy.stats_for(rule.name).dropped_packets += 1
            return None
        return packet

    def _apply_delay(self, packet: Packet, rule: DiscriminationRule) -> Optional[Packet]:
        # Absorb the packet now and re-inject it after the extra delay; the
        # re-injected copy is tagged so it is not delayed twice at this router.
        if packet.meta.get("_delayed_by") == (self.router.name, rule.name):
            return packet
        self.stats.packets_delayed += 1
        self.stats.extra_delay_added_seconds += rule.delay_seconds
        self.policy.stats_for(rule.name).delayed_packets += 1
        delayed = packet.copy()
        delayed.meta["_delayed_by"] = (self.router.name, rule.name)
        self.router.sim.schedule(rule.delay_seconds, self.router.receive, delayed, None)
        return None

    def _apply_throttle(self, packet: Packet, rule: DiscriminationRule) -> Optional[Packet]:
        bucket = self.policy.bucket_for(rule)
        if bucket.allow(packet.size_bytes, self.router.sim.now):
            return packet
        self.stats.packets_throttled_away += 1
        self.policy.stats_for(rule.name).dropped_packets += 1
        return None

    def _apply_deprioritize(self, packet: Packet, rule: DiscriminationRule) -> Packet:
        self.stats.packets_remarked += 1
        self.policy.stats_for(rule.name).deprioritized_packets += 1
        remarked = packet.copy()
        remarked.ip = type(remarked.ip)(
            source=remarked.ip.source,
            destination=remarked.ip.destination,
            protocol=remarked.ip.protocol,
            dscp=rule.deprioritize_dscp,
            ecn=remarked.ip.ecn,
            identification=remarked.ip.identification,
            ttl=remarked.ip.ttl,
        )
        return remarked


@dataclass
class DiscriminatoryIspDeployment:
    """All enforcement points installed for one ISP."""

    isp_name: str
    policy: DiscriminationPolicy
    enforcement_points: List[PolicyEnforcementPoint] = field(default_factory=list)

    @property
    def total_dropped(self) -> int:
        """Packets dropped across every router of the ISP."""
        return sum(point.stats.packets_dropped + point.stats.packets_throttled_away
                   for point in self.enforcement_points)

    @property
    def total_delayed(self) -> int:
        """Packets delayed across every router of the ISP."""
        return sum(point.stats.packets_delayed for point in self.enforcement_points)

    @property
    def total_inspected(self) -> int:
        """Packets inspected across every router of the ISP."""
        return sum(point.stats.packets_inspected for point in self.enforcement_points)

    def describe(self) -> str:
        """Summary used by experiment reports."""
        return (
            f"{self.isp_name}: policy {self.policy.name!r} on "
            f"{len(self.enforcement_points)} routers — inspected {self.total_inspected}, "
            f"dropped {self.total_dropped}, delayed {self.total_delayed}"
        )


def install_policy(
    topology: Topology,
    isp_name: str,
    policy: DiscriminationPolicy,
    *,
    rng: Optional[RandomSource] = None,
    border_only: bool = False,
) -> DiscriminatoryIspDeployment:
    """Install ``policy`` on every router (or border router) of ``isp_name``."""
    isp = topology.isps.get(isp_name)
    router_names = isp.border_router_names if border_only else isp.router_names
    deployment = DiscriminatoryIspDeployment(isp_name=isp_name, policy=policy)
    for router_name in router_names:
        router = topology.router(router_name)
        point = PolicyEnforcementPoint(policy, router, rng=rng).install()
        deployment.enforcement_points.append(point)
    return deployment
