"""Deep packet inspection: what an on-path ISP can extract from a packet.

This module deliberately implements the *attacker's* capability set from §2:
the discriminatory ISP "may eavesdrop on all traffic, perform traffic
analysis, delay or drop packets within its network".  Given a packet, the
inspector reports every field a middlebox can actually read — addresses, the
DSCP, the protocol, ports, a cleartext DNS query name, an application guess
from ports and payload keywords, and whether the packet is end-to-end
encrypted or part of a neutralizer exchange.  The discrimination policies are
written against this report, which makes the design's privacy claim testable:
after neutralization the report simply no longer contains the fields a
targeted policy would need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dns.messages import DNS_PORT, query_name_from_payload
from ..packet.addresses import IPv4Address
from ..packet.headers import (
    PROTO_ESP,
    PROTO_NEUTRALIZER_SHIM,
    PROTO_TCP,
    PROTO_UDP,
    SHIM_TYPE_KEY_SETUP_REQUEST,
    SHIM_TYPE_KEY_SETUP_RESPONSE,
)
from ..packet.packet import Packet

#: Port-based application heuristics used by the classifier.
_PORT_APPLICATIONS = {
    53: "dns",
    80: "web",
    443: "web",
    5060: "voip-signalling",
    5004: "voip",
    16384: "voip",
    554: "video",
    8554: "video",
    1935: "video",
}

#: Payload keywords a 2006-era DPI box would key on.
_PAYLOAD_SIGNATURES = {
    b"SIP/2.0": "voip-signalling",
    b"RTP": "voip",
    b"GET /": "web",
    b"HTTP/1.1": "web",
    b"BitTorrent protocol": "p2p",
    b"#VIDEO": "video",
}


@dataclass(frozen=True)
class InspectionReport:
    """Everything the DPI box could determine about one packet."""

    source: IPv4Address
    destination: IPv4Address
    protocol: int
    dscp: int
    size_bytes: int
    source_port: Optional[int]
    destination_port: Optional[int]
    #: Best-effort application label, or None when nothing is recognizable.
    application: Optional[str]
    #: Cleartext DNS query name, if this is a readable DNS query.
    dns_query_name: Optional[str]
    #: True when the payload is end-to-end encrypted (ESP) or hidden by a shim.
    is_encrypted: bool
    #: True when the packet is part of a neutralizer key-setup exchange.
    is_key_setup: bool
    #: True when the packet carries the neutralizer shim at all.
    is_neutralized: bool


def inspect(packet: Packet) -> InspectionReport:
    """Build the inspection report for ``packet``."""
    source_port = packet.udp.source_port if packet.udp is not None else None
    destination_port = packet.udp.destination_port if packet.udp is not None else None

    is_neutralized = packet.ip.protocol == PROTO_NEUTRALIZER_SHIM and packet.shim is not None
    is_key_setup = is_neutralized and packet.shim.shim_type in (
        SHIM_TYPE_KEY_SETUP_REQUEST,
        SHIM_TYPE_KEY_SETUP_RESPONSE,
    )
    is_encrypted = packet.ip.protocol == PROTO_ESP or is_neutralized

    dns_query_name = None
    if destination_port == DNS_PORT and not is_encrypted:
        dns_query_name = query_name_from_payload(packet.payload)

    application = _classify_application(packet, source_port, destination_port, is_encrypted)

    return InspectionReport(
        source=packet.source,
        destination=packet.destination,
        protocol=packet.ip.protocol,
        dscp=packet.dscp,
        size_bytes=packet.size_bytes,
        source_port=source_port,
        destination_port=destination_port,
        application=application,
        dns_query_name=dns_query_name,
        is_encrypted=is_encrypted,
        is_key_setup=is_key_setup,
        is_neutralized=is_neutralized,
    )


def _classify_application(
    packet: Packet,
    source_port: Optional[int],
    destination_port: Optional[int],
    is_encrypted: bool,
) -> Optional[str]:
    """Guess the application from ports and payload keywords."""
    if is_encrypted:
        # The whole point of e2e encryption + the shim: content and
        # application type are no longer recognizable.
        return None
    for port in (destination_port, source_port):
        if port in _PORT_APPLICATIONS:
            return _PORT_APPLICATIONS[port]
    if packet.ip.protocol not in (PROTO_UDP, PROTO_TCP):
        return None
    for signature, label in _PAYLOAD_SIGNATURES.items():
        if signature in packet.payload:
            return label
    return None
