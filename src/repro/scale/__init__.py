"""repro.scale — flow-level (fluid) simulation of fleet-scale deployments.

The packet-level simulator in :mod:`repro.netsim` replays every packet through
every queue, which is the right tool for protocol correctness and per-call
quality but tops out at thousands of packets.  The paper's scaling claim is
about a different regime entirely — "heavy traffic from millions of users"
against an ISP's neutralizer fleet — so this package models *populations* of
clients as aggregate fluid demand instead:

``population``
    Client populations as vectorized numpy arrays: per-client application
    class (VoIP/web/video mixes whose rates come straight from
    :mod:`repro.apps`), access region, and a hash position used for
    consistent-hash assignment to neutralizer sites.
``costmodel``
    CPU cost of the neutralizer fast path (AES blocks, Ks derivations, RSA
    encryptions per operation), calibrated against the same primitives that
    ``benchmarks/bench_crypto.py`` times.
``fleet``
    A neutralizer fleet: per-site capacity and health layered on the
    consistent-hash ring from :mod:`repro.core.anycast`, with vectorized
    client-to-site assignment and failover.
``solver``
    Fair capacity allocation over shared links and site CPUs: max-min for
    inelastic (CBR) flows by a numpy-vectorized progressive-filling fixed
    point, capped alpha-fair (TCP-like) rates for elastic flows by a
    sign-adaptive dual-price fixed point, composed for mixed populations —
    each with a verified (certificate-checked) warm-start fast path for
    sequences of nearby problems.
``latency``
    The utilization → queueing-delay proxy: M/G/1-PS-shaped sojourn per
    resource, deterministic region↔site base RTT from ring geometry,
    client-weighted per-class delay percentiles and latency-SLO violation
    fractions — all O(resources + flows) per epoch.
``scenario``
    Glue that turns (population, fleet, access network) into a solver
    problem and interprets the allocation as per-class goodput and
    per-site utilization; the O(n_clients) structure is cached in a
    :class:`ProblemTemplate` reused across epochs and sweep points, and a
    ring change rebuilds it *incrementally* in O(moved clients) via the
    population's sorted-position segment view.
``timeline``
    The time-stepped fluid simulator: load curves (diurnal, flash crowd,
    ramp), fleet events (failure/recovery, degradation, discrimination
    toggles), warm-started epoch solves, closed-loop autoscaling, and
    remap-churn plus dollar-cost accounting.
``autoscale``
    The closed-loop controller: target-utilization, step/hysteresis and
    predictive policies, warm-up and cooldown, elastic fleets with drained
    spares commissioned and drained through the hash ring mid-run.
``stochastic``
    Seeded stochastic event processes — Poisson site failures, correlated
    regional outages, DoS attack onsets — compiled to fleet-event lists so
    availability can be measured as a distribution, not a curve; with
    antithetic-pair and stratified-rotation seed allocation for sharper
    Monte-Carlo tails at the same replica budget.
``adversary``
    The paper's core tension as a closed-loop game: an adaptive,
    budget-constrained ISP strategy (classifier confusion model,
    escalation/backoff, the §3.6 blanket endgame) against per-region
    logistic neutralizer adoption driven by experienced harm, stepped by
    the timeline each epoch with adopters re-keying through the hash ring.
``catalogue``
    Named timeline scenarios — flash crowd, regional outage, diurnal week,
    heterogeneous fleet, cascading overload, discrimination rollout,
    autoscaled diurnal, stochastic unreliable month, elastic web mix,
    latency-SLO fleet, adaptive throttler, neutralizer arms race, targeted
    class SLO — each provisioned relative to the population so any size is
    interesting.
``telemetry``
    Process-local observability: a deterministic :class:`MetricsRegistry`
    (counters, gauges, fixed-bucket histograms), a hierarchical
    :class:`Tracer` whose nested spans mirror the campaign → replica →
    epoch → solve structure, JSONL and Prometheus text exporters, and a
    zero-overhead :data:`NULL` default — telemetry observes the
    simulation, it never participates, so enabling it cannot change a
    single allocation.
``runner``
    Experiment-campaign runners in the ``ExperimentRunnerProtocol`` style:
    the E12 population sweep, the E13 timeline-catalogue campaign, the
    E14 Monte-Carlo stochastic-availability campaign with its
    churn-vs-SLO frontier, the E15 queueing-latency campaign (elastic
    mix, latency-aware autoscaler) with its latency-vs-cost frontier, and
    the E16 adversary arms-race campaign sweeping ISP aggressiveness ×
    adoption sensitivity into the self-defeating-discrimination frontier,
    all rendering :class:`repro.analysis.report.ExperimentReport` tables.
``validate``
    Cross-validation of the fluid model against the packet-level simulator
    on a small shared scenario (goodput within 10 %, latency proxy within
    15 %, adversary epoch vs. discrimination rules within 10 %).

A million-client, 16-site solve completes in well under a second; a
100-epoch, million-client timeline solves end-to-end in well under a
second; a 200-epoch, 32-replica, million-client Monte-Carlo campaign
completes in a few seconds — all deterministic from their seeds.
"""

from .adversary import (
    AdoptionModel,
    AdversaryGame,
    AdversaryRun,
    ClassifierModel,
    IspStrategy,
    split_latency_by_class,
)
from .autoscale import (
    Autoscaler,
    AutoscaleObservation,
    AutoscalePolicy,
    EpochMetrics,
    PredictiveLoadPolicy,
    StepPolicy,
    TargetLatencyPolicy,
    TargetUtilizationPolicy,
    elastic_fleet,
)
from .latency import (
    ClassLatency,
    LatencyModel,
    LatencyResult,
    allen_cunneen_factor,
    evaluate_latency,
)
from .catalogue import (
    CATALOGUE,
    ScenarioSpec,
    build_scenario,
    nominal_demand,
    provisioned_fleet,
    run_scenario,
    scenario_names,
)
from .config import (
    ConfigError,
    ConfigTransaction,
    FieldChange,
    FleetSpec,
    PopulationSpec,
    ScenarioConfig,
    SiteSpec,
    diff_configs,
    dump_config,
    load_config,
)
from .costmodel import CryptoCostModel, ProvisioningCostModel
from .fleet import FleetSite, NeutralizerFleet
from .obs import (
    EVENT_SCHEMA_VERSION,
    AutoscaleOscillationDetector,
    BlackHoleDetector,
    DetectorSuite,
    Event,
    EventLog,
    SloBreachDetector,
    Subscription,
    attach_detectors,
    verdicts,
)
from .monitor import MonitorServer
from .stochastic import (
    AttackOnset,
    CorrelatedRegionalOutage,
    EventProcess,
    FaultSchedule,
    PoissonSiteFailures,
    RegionalOutageRecord,
    antithetic_uniforms,
    compile_events,
    compile_schedule,
    default_processes,
    rotated_uniforms,
)
from .parallel import (
    CampaignRunnerProtocol,
    CampaignUnit,
    P2Quantile,
    ProcessPoolCampaignExecutor,
    RunTable,
    SharedPopulationPack,
    StreamingPercentiles,
    canonical_result_bytes,
)
from .population import (
    ClientPopulation,
    DemandClass,
    PopulationMix,
    default_mix,
    elastic_mix,
    video_class,
    voip_class,
    web_class,
)
from .runner import (
    AdversaryCampaignResult,
    AdversaryCampaignRunner,
    AdversaryPointRecord,
    AdversaryReplicaRecord,
    FleetScaleResult,
    FleetScaleRunner,
    FrontierPoint,
    FrontierResult,
    CHURN_SLO_FRONTIER_COLUMNS,
    LATENCY_COST_FRONTIER_COLUMNS,
    LatencyCampaignRunner,
    LatencyFrontierPoint,
    LatencyFrontierResult,
    AGGREGATION_MODES,
    MetricDistribution,
    ScaleExperimentState,
    replica_seed_draws,
    StochasticCampaignResult,
    StochasticCampaignRunner,
    StochasticReplicaRecord,
    SweepRecord,
    TimelineCampaignRecord,
    TimelineCampaignResult,
    TimelineCampaignRunner,
    VarianceComparisonResult,
    compare_variance_reduction,
    run_churn_slo_frontier,
    run_latency_cost_frontier,
)
from .scenario import EpochProblem, FluidResult, ProblemTemplate, ScaleScenario
from .telemetry import (
    DEFAULT_BUCKET_EDGES,
    NULL,
    MetricsRegistry,
    NullTelemetry,
    Span,
    SpanRecord,
    Telemetry,
    Tracer,
    format_phase_table,
    phase_breakdown,
)
from .solver import (
    Allocation,
    CapacityProblem,
    alpha_fair_allocation,
    max_min_allocation,
    solve_allocation,
    verify_alpha_fair,
    verify_max_min,
)
from .timeline import (
    CapacityDegradation,
    CompositeLoad,
    ConstantLoad,
    DiscriminationToggle,
    DiurnalLoad,
    EpochRecord,
    FlashCrowdLoad,
    FleetEvent,
    FluidTimeline,
    LinearRampLoad,
    LoadCurve,
    ReconfigEvent,
    SiteFailure,
    SiteRecovery,
    TimelineResult,
)
from .validate import (
    AdversaryValidationResult,
    CrossValidationResult,
    LatencyValidationResult,
    cross_validate,
    cross_validate_adversary,
    cross_validate_latency,
)

__all__ = [
    "AGGREGATION_MODES",
    "AdoptionModel",
    "AdversaryCampaignResult",
    "AdversaryCampaignRunner",
    "AdversaryGame",
    "AdversaryPointRecord",
    "AdversaryReplicaRecord",
    "AdversaryRun",
    "AdversaryValidationResult",
    "Allocation",
    "AttackOnset",
    "AutoscaleObservation",
    "AutoscaleOscillationDetector",
    "AutoscalePolicy",
    "Autoscaler",
    "BlackHoleDetector",
    "CATALOGUE",
    "CHURN_SLO_FRONTIER_COLUMNS",
    "CampaignRunnerProtocol",
    "CampaignUnit",
    "CapacityDegradation",
    "CapacityProblem",
    "ClassLatency",
    "ClassifierModel",
    "ClientPopulation",
    "CompositeLoad",
    "ConfigError",
    "ConfigTransaction",
    "ConstantLoad",
    "CorrelatedRegionalOutage",
    "CrossValidationResult",
    "CryptoCostModel",
    "DEFAULT_BUCKET_EDGES",
    "DemandClass",
    "DetectorSuite",
    "DiscriminationToggle",
    "DiurnalLoad",
    "EVENT_SCHEMA_VERSION",
    "EpochMetrics",
    "EpochProblem",
    "EpochRecord",
    "Event",
    "EventLog",
    "EventProcess",
    "FaultSchedule",
    "FieldChange",
    "FlashCrowdLoad",
    "FleetEvent",
    "FleetScaleResult",
    "FleetScaleRunner",
    "FleetSite",
    "FleetSpec",
    "FluidResult",
    "FluidTimeline",
    "FrontierPoint",
    "FrontierResult",
    "IspStrategy",
    "LATENCY_COST_FRONTIER_COLUMNS",
    "LatencyCampaignRunner",
    "LatencyFrontierPoint",
    "LatencyFrontierResult",
    "LatencyModel",
    "LatencyResult",
    "LatencyValidationResult",
    "LinearRampLoad",
    "LoadCurve",
    "MetricDistribution",
    "MetricsRegistry",
    "MonitorServer",
    "NULL",
    "NeutralizerFleet",
    "NullTelemetry",
    "P2Quantile",
    "PoissonSiteFailures",
    "PopulationMix",
    "PopulationSpec",
    "PredictiveLoadPolicy",
    "ProblemTemplate",
    "ProcessPoolCampaignExecutor",
    "ProvisioningCostModel",
    "ReconfigEvent",
    "RegionalOutageRecord",
    "RunTable",
    "ScaleExperimentState",
    "ScaleScenario",
    "ScenarioConfig",
    "ScenarioSpec",
    "SharedPopulationPack",
    "SiteFailure",
    "SiteRecovery",
    "SiteSpec",
    "SloBreachDetector",
    "Span",
    "SpanRecord",
    "StepPolicy",
    "StochasticCampaignResult",
    "StochasticCampaignRunner",
    "StochasticReplicaRecord",
    "StreamingPercentiles",
    "Subscription",
    "SweepRecord",
    "TargetLatencyPolicy",
    "TargetUtilizationPolicy",
    "Telemetry",
    "TimelineCampaignRecord",
    "TimelineCampaignResult",
    "TimelineCampaignRunner",
    "TimelineResult",
    "Tracer",
    "VarianceComparisonResult",
    "allen_cunneen_factor",
    "alpha_fair_allocation",
    "antithetic_uniforms",
    "attach_detectors",
    "build_scenario",
    "canonical_result_bytes",
    "compare_variance_reduction",
    "compile_events",
    "compile_schedule",
    "cross_validate",
    "cross_validate_adversary",
    "cross_validate_latency",
    "default_mix",
    "default_processes",
    "diff_configs",
    "dump_config",
    "elastic_fleet",
    "elastic_mix",
    "evaluate_latency",
    "format_phase_table",
    "load_config",
    "max_min_allocation",
    "nominal_demand",
    "phase_breakdown",
    "provisioned_fleet",
    "replica_seed_draws",
    "rotated_uniforms",
    "run_churn_slo_frontier",
    "run_latency_cost_frontier",
    "run_scenario",
    "scenario_names",
    "solve_allocation",
    "split_latency_by_class",
    "verdicts",
    "verify_alpha_fair",
    "verify_max_min",
    "video_class",
    "voip_class",
    "web_class",
]
