"""repro.scale — flow-level (fluid) simulation of fleet-scale deployments.

The packet-level simulator in :mod:`repro.netsim` replays every packet through
every queue, which is the right tool for protocol correctness and per-call
quality but tops out at thousands of packets.  The paper's scaling claim is
about a different regime entirely — "heavy traffic from millions of users"
against an ISP's neutralizer fleet — so this package models *populations* of
clients as aggregate fluid demand instead:

``population``
    Client populations as vectorized numpy arrays: per-client application
    class (VoIP/web/video mixes whose rates come straight from
    :mod:`repro.apps`), access region, and a hash position used for
    consistent-hash assignment to neutralizer sites.
``costmodel``
    CPU cost of the neutralizer fast path (AES blocks, Ks derivations, RSA
    encryptions per operation), calibrated against the same primitives that
    ``benchmarks/bench_crypto.py`` times.
``fleet``
    A neutralizer fleet: per-site capacity and health layered on the
    consistent-hash ring from :mod:`repro.core.anycast`, with vectorized
    client-to-site assignment and failover.
``solver``
    Max-min fair capacity allocation over shared links and site CPUs,
    computed by a numpy-vectorized progressive-filling fixed point.
``scenario``
    Glue that turns (population, fleet, access network) into a solver
    problem and interprets the allocation as per-class goodput and
    per-site utilization.
``runner``
    An experiment-campaign runner in the ``ExperimentRunnerProtocol`` style:
    sweeps client counts (10^3 → 10^6 and beyond), records per-point results,
    and renders :class:`repro.analysis.report.ExperimentReport` tables.
``validate``
    Cross-validation of the fluid model against the packet-level simulator
    on a small shared scenario (goodput must agree within 10 %).

A million-client, 16-site solve completes in well under a second and is
deterministic from its seed.
"""

from .costmodel import CryptoCostModel
from .fleet import FleetSite, NeutralizerFleet
from .population import (
    ClientPopulation,
    DemandClass,
    PopulationMix,
    default_mix,
    video_class,
    voip_class,
    web_class,
)
from .runner import FleetScaleResult, FleetScaleRunner, ScaleExperimentState, SweepRecord
from .scenario import FluidResult, ScaleScenario
from .solver import Allocation, CapacityProblem, max_min_allocation
from .validate import CrossValidationResult, cross_validate

__all__ = [
    "Allocation",
    "CapacityProblem",
    "ClientPopulation",
    "CrossValidationResult",
    "CryptoCostModel",
    "DemandClass",
    "FleetSite",
    "FleetScaleResult",
    "FleetScaleRunner",
    "FluidResult",
    "NeutralizerFleet",
    "PopulationMix",
    "ScaleExperimentState",
    "ScaleScenario",
    "SweepRecord",
    "cross_validate",
    "default_mix",
    "max_min_allocation",
    "video_class",
    "voip_class",
    "web_class",
]
