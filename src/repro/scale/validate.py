"""Cross-validation of the fluid model against the packet-level simulator.

Both simulators run the *same* small scenario — the neutralized dumbbell of
:func:`repro.analysis.scenarios.build_scale_validation_scenario`: N clients
behind one access ISP, a shared bottleneck, one server behind the
neutralizer.  The packet-level run measures steady-state goodput at the
server; the fluid side builds the equivalent one-resource
:class:`repro.scale.solver.CapacityProblem` using the *measured* wire bytes
per packet (so shim and envelope overhead enter both models identically) and
solves it with max-min fairness.  Agreement within 10 % on both the
congested and the uncongested regime is an acceptance criterion of the
subsystem — it is what licenses extrapolating the fluid model to populations
the event engine cannot touch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..analysis.report import ExperimentReport
from ..analysis.scenarios import build_scale_validation_scenario
from ..apps.workloads import ConstantRateSource
from ..exceptions import WorkloadError
from ..packet.builder import udp_packet
from .solver import CapacityProblem, max_min_allocation

#: Server port the validation traffic targets.
_VALIDATION_PORT = 46000
#: Settling time before and measurement guard after the sources run.
_PRIME_SECONDS = 1.0
_WARMUP_SECONDS = 0.5
_DRAIN_SECONDS = 2.0


@dataclass
class ValidationArm:
    """One regime of the shared scenario, measured both ways."""

    name: str
    offered_pps: float
    packet_goodput_pps: float
    fluid_goodput_pps: float
    wire_bytes_per_packet: float

    @property
    def relative_error(self) -> float:
        """|packet − fluid| over the packet-level measurement."""
        if self.packet_goodput_pps <= 0:
            return float("inf")
        return abs(self.packet_goodput_pps - self.fluid_goodput_pps) / self.packet_goodput_pps


@dataclass
class CrossValidationResult:
    """Both arms plus the rendered comparison table."""

    arms: List[ValidationArm]
    report: ExperimentReport

    @property
    def max_relative_error(self) -> float:
        """Worst disagreement across arms (acceptance: ≤ 0.10)."""
        return max(arm.relative_error for arm in self.arms)

    @property
    def within_tolerance(self) -> bool:
        """Whether every arm agreed within the 10 % acceptance bound."""
        return self.max_relative_error <= 0.10


def _run_packet_arm(*, clients: int, rate_pps: float, payload_bytes: int,
                    bottleneck_rate_bps: float, duration_seconds: float,
                    seed: int) -> ValidationArm:
    """Run one regime through the event engine and measure steady goodput."""
    scenario = build_scale_validation_scenario(
        clients=clients, bottleneck_rate_bps=bottleneck_rate_bps, seed=seed
    )
    topology = scenario.topology
    server = scenario.server

    arrivals: List[float] = []
    server.register_port_handler(
        _VALIDATION_PORT, lambda packet, host: arrivals.append(host.sim.now)
    )

    # Prime every client's key setup so the measurement window sees only the
    # steady data path (the fluid model has no notion of setup transients).
    for name in scenario.client_names:
        host = topology.host(name)
        host.send(udp_packet(host.address, server.address, b"prime",
                             destination_port=_VALIDATION_PORT))
    topology.run(_PRIME_SECONDS)

    stats = scenario.bottleneck_stats()
    packets_before, bytes_before = stats.packets_sent, stats.bytes_sent
    primed = len(arrivals)

    sources = [
        ConstantRateSource(
            topology.host(name), server.address, packets_per_second=rate_pps,
            payload_bytes=payload_bytes, destination_port=_VALIDATION_PORT,
            flow_id=f"fluid-check-{name}",
        )
        for name in scenario.client_names
    ]
    for source in sources:
        source.start(duration_seconds)
    start_time = topology.sim.now
    topology.run(duration_seconds + _DRAIN_SECONDS)

    wire_packets = stats.packets_sent - packets_before
    wire_bytes = stats.bytes_sent - bytes_before
    if wire_packets <= 0:
        raise WorkloadError("no validation traffic crossed the bottleneck")
    wire_bytes_per_packet = wire_bytes / wire_packets

    # Steady-state window: skip the pipeline-fill transient, stop when the
    # sources stop (queued packets past that point belong to no rate).
    window_start = start_time + _WARMUP_SECONDS
    window_end = start_time + duration_seconds
    delivered = sum(1 for at in arrivals[primed:] if window_start < at <= window_end)
    goodput_pps = delivered / (window_end - window_start)

    fluid_goodput = _solve_fluid_arm(
        clients=clients, rate_pps=rate_pps,
        wire_bits=wire_bytes_per_packet * 8.0,
        bottleneck_rate_bps=bottleneck_rate_bps,
    )
    return ValidationArm(
        name="congested" if rate_pps * clients * wire_bytes_per_packet * 8.0
             > bottleneck_rate_bps else "unloaded",
        offered_pps=rate_pps * clients,
        packet_goodput_pps=goodput_pps,
        fluid_goodput_pps=fluid_goodput,
        wire_bytes_per_packet=wire_bytes_per_packet,
    )


def _solve_fluid_arm(*, clients: int, rate_pps: float, wire_bits: float,
                     bottleneck_rate_bps: float) -> float:
    """The same scenario as a one-bottleneck max-min problem."""
    problem = CapacityProblem(
        demands=np.full(clients, rate_pps),
        usage=np.full((1, clients), wire_bits),
        capacities=np.array([bottleneck_rate_bps]),
        flow_labels=[f"client{i}" for i in range(clients)],
        resource_labels=["bottleneck"],
    )
    allocation = max_min_allocation(problem)
    return float(allocation.rates.sum())


def cross_validate(
    *,
    clients: int = 4,
    payload_bytes: int = 200,
    bottleneck_rate_bps: float = 600_000.0,
    unloaded_rate_pps: float = 25.0,
    congested_rate_pps: float = 90.0,
    duration_seconds: float = 4.0,
    seed: int = 2006,
) -> CrossValidationResult:
    """Run both regimes both ways and tabulate the agreement."""
    arms = [
        _run_packet_arm(
            clients=clients, rate_pps=rate, payload_bytes=payload_bytes,
            bottleneck_rate_bps=bottleneck_rate_bps,
            duration_seconds=duration_seconds, seed=seed,
        )
        for rate in (unloaded_rate_pps, congested_rate_pps)
    ]
    report = ExperimentReport(
        "E12v", "Fluid vs packet-level goodput on the shared dumbbell scenario"
    )
    report.add_table(
        ["regime", "offered pps", "packet-level pps", "fluid pps",
         "wire B/pkt", "rel. error"],
        [[arm.name, arm.offered_pps, arm.packet_goodput_pps, arm.fluid_goodput_pps,
          arm.wire_bytes_per_packet, arm.relative_error] for arm in arms],
    )
    report.add_note(
        "the fluid model uses the measured wire bytes per packet, so shim and "
        "envelope overhead cancel; agreement within 10 % licenses the "
        "million-client extrapolation"
    )
    return CrossValidationResult(arms=arms, report=report)
