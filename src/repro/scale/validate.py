"""Cross-validation of the fluid model against the packet-level simulator.

Both simulators run the *same* small scenario — the neutralized dumbbell of
:func:`repro.analysis.scenarios.build_scale_validation_scenario`: N clients
behind one access ISP, a shared bottleneck, one server behind the
neutralizer.  Two quantities are checked:

*Goodput* (:func:`cross_validate`): the packet-level run measures
steady-state goodput at the server; the fluid side builds the equivalent
one-resource :class:`repro.scale.solver.CapacityProblem` using the
*measured* wire bytes per packet (so shim and envelope overhead enter both
models identically) and solves it with max-min fairness.  Agreement within
10 % on both the congested and the uncongested regime is an acceptance
criterion of the subsystem — it is what licenses extrapolating the fluid
model to populations the event engine cannot touch.

*Latency* (:func:`cross_validate_latency`): Poisson client sources run the
same dumbbell below saturation while every data packet's one-way delay is
measured at the server (send times matched FIFO per source — the path is
order-preserving and the regime is loss-free, which the harness asserts).
The proxy side composes the same path from per-hop transmission and
propagation plus the :class:`repro.scale.latency.LatencyModel`
Pollaczek–Khinchine term at each hop's measured utilization.  Agreement
within 15 % on a lightly- and a heavily-loaded transient is the acceptance
criterion of the latency subsystem (PR 4) — the queueing term is what is
being validated, so the loaded arm is tuned to make it a material share of
the path delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.report import ExperimentReport
from ..analysis.scenarios import build_scale_validation_scenario
from ..apps.workloads import ConstantRateSource
from ..exceptions import WorkloadError
from ..packet.builder import udp_packet
from ..packet.headers import IPV4_HEADER_LEN, UDP_HEADER_LEN
from ..units import BITS_PER_BYTE
from .latency import LatencyModel
from .solver import CapacityProblem, max_min_allocation

#: Server port the validation traffic targets.
_VALIDATION_PORT = 46000
#: Settling time before and measurement guard after the sources run.
_PRIME_SECONDS = 1.0
_WARMUP_SECONDS = 0.5
_DRAIN_SECONDS = 2.0


class _ToleranceReporting:
    """Shared tolerance/failure plumbing of both validation results.

    Subclasses carry ``arms`` (each with ``relative_error`` and
    ``describe_disagreement(tolerance)``) and an acceptance ``tolerance``;
    everything downstream — the worst error, the pass/fail verdict, and
    the per-arm failure descriptions naming the arm and the side that is
    off — is identical between the goodput and the latency validation and
    lives here once.
    """

    @property
    def max_relative_error(self) -> float:
        """Worst disagreement across arms (acceptance: ≤ ``tolerance``)."""
        return max(arm.relative_error for arm in self.arms)

    @property
    def within_tolerance(self) -> bool:
        """Whether every arm agreed within the acceptance bound."""
        return self.max_relative_error <= self.tolerance

    @property
    def failures(self) -> List[str]:
        """Per-arm descriptions of every tolerance violation (empty = pass),
        each naming the arm and which side was high or low."""
        return [arm.describe_disagreement(self.tolerance) for arm in self.arms
                if arm.relative_error > self.tolerance]

    def failure_message(self) -> str:
        """One line summarizing which arm(s) exceeded tolerance and how."""
        return "; ".join(self.failures)

    def note_failures(self) -> None:
        """Append one report note per tolerance violation."""
        for failure in self.failures:
            self.report.add_note(f"TOLERANCE EXCEEDED: {failure}")


@dataclass
class ValidationArm:
    """One regime of the shared scenario, measured both ways."""

    name: str
    offered_pps: float
    packet_goodput_pps: float
    fluid_goodput_pps: float
    wire_bytes_per_packet: float

    @property
    def relative_error(self) -> float:
        """|packet − fluid| over the packet-level measurement.

        A zero measurement is a broken scenario, not a disagreement: the
        error is undefined, and silently returning infinity used to bury
        the real problem under a tolerance failure.
        """
        if self.packet_goodput_pps <= 0:
            raise WorkloadError(
                f"{self.name} arm of the scale-validation dumbbell scenario "
                f"measured zero packet-level goodput (offered "
                f"{self.offered_pps:g} pps) — the relative error would "
                f"divide by zero; raise the offered rate or the run duration"
            )
        return abs(self.packet_goodput_pps - self.fluid_goodput_pps) / self.packet_goodput_pps

    def describe_disagreement(self, tolerance: float) -> str:
        """Name the arm *and the side that is off* — 'rel. error 0.13' alone
        does not say whether the fluid model over- or under-shot which
        regime, which is the first thing a debugging session needs."""
        side = ("fluid high" if self.fluid_goodput_pps > self.packet_goodput_pps
                else "fluid low")
        return (
            f"{self.name} arm: packet-level {self.packet_goodput_pps:.1f} pps "
            f"vs fluid {self.fluid_goodput_pps:.1f} pps ({side} by "
            f"{self.relative_error:.1%}, tolerance {tolerance:.0%})"
        )


@dataclass
class CrossValidationResult(_ToleranceReporting):
    """Both arms plus the rendered comparison table."""

    arms: List[ValidationArm]
    report: ExperimentReport
    #: Acceptance bound on the per-arm relative error.
    tolerance: float = 0.10


def _run_packet_arm(*, clients: int, rate_pps: float, payload_bytes: int,
                    bottleneck_rate_bps: float, duration_seconds: float,
                    seed: int) -> ValidationArm:
    """Run one regime through the event engine and measure steady goodput."""
    scenario = build_scale_validation_scenario(
        clients=clients, bottleneck_rate_bps=bottleneck_rate_bps, seed=seed
    )
    topology = scenario.topology
    server = scenario.server

    arrivals: List[float] = []
    server.register_port_handler(
        _VALIDATION_PORT, lambda packet, host: arrivals.append(host.sim.now)
    )

    # Prime every client's key setup so the measurement window sees only the
    # steady data path (the fluid model has no notion of setup transients).
    for name in scenario.client_names:
        host = topology.host(name)
        host.send(udp_packet(host.address, server.address, b"prime",
                             destination_port=_VALIDATION_PORT))
    topology.run(_PRIME_SECONDS)

    stats = scenario.bottleneck_stats()
    packets_before, bytes_before = stats.packets_sent, stats.bytes_sent
    primed = len(arrivals)

    sources = [
        ConstantRateSource(
            topology.host(name), server.address, packets_per_second=rate_pps,
            payload_bytes=payload_bytes, destination_port=_VALIDATION_PORT,
            flow_id=f"fluid-check-{name}",
        )
        for name in scenario.client_names
    ]
    for source in sources:
        source.start(duration_seconds)
    start_time = topology.sim.now
    topology.run(duration_seconds + _DRAIN_SECONDS)

    wire_packets = stats.packets_sent - packets_before
    wire_bytes = stats.bytes_sent - bytes_before
    if wire_packets <= 0:
        raise WorkloadError("no validation traffic crossed the bottleneck")
    wire_bytes_per_packet = wire_bytes / wire_packets

    # Steady-state window: skip the pipeline-fill transient, stop when the
    # sources stop (queued packets past that point belong to no rate).
    window_start = start_time + _WARMUP_SECONDS
    window_end = start_time + duration_seconds
    delivered = sum(1 for at in arrivals[primed:] if window_start < at <= window_end)
    goodput_pps = delivered / (window_end - window_start)

    fluid_goodput = _solve_fluid_arm(
        clients=clients, rate_pps=rate_pps,
        wire_bits=wire_bytes_per_packet * 8.0,
        bottleneck_rate_bps=bottleneck_rate_bps,
    )
    return ValidationArm(
        name="congested" if rate_pps * clients * wire_bytes_per_packet * 8.0
             > bottleneck_rate_bps else "unloaded",
        offered_pps=rate_pps * clients,
        packet_goodput_pps=goodput_pps,
        fluid_goodput_pps=fluid_goodput,
        wire_bytes_per_packet=wire_bytes_per_packet,
    )


def _solve_fluid_arm(*, clients: int, rate_pps: float, wire_bits: float,
                     bottleneck_rate_bps: float) -> float:
    """The same scenario as a one-bottleneck max-min problem."""
    problem = CapacityProblem(
        demands=np.full(clients, rate_pps),
        usage=np.full((1, clients), wire_bits),
        capacities=np.array([bottleneck_rate_bps]),
        flow_labels=[f"client{i}" for i in range(clients)],
        resource_labels=["bottleneck"],
    )
    allocation = max_min_allocation(problem)
    goodput = float(allocation.rates.sum())
    if goodput <= 0:
        raise WorkloadError(
            f"the fluid arm of the scale-validation dumbbell scenario served "
            f"zero demand ({clients} clients at {rate_pps:g} pps against "
            f"{bottleneck_rate_bps:g} b/s) — nothing to validate against; "
            f"check the offered rate and the bottleneck capacity"
        )
    return goodput


def cross_validate(
    *,
    clients: int = 4,
    payload_bytes: int = 200,
    bottleneck_rate_bps: float = 600_000.0,
    unloaded_rate_pps: float = 25.0,
    congested_rate_pps: float = 90.0,
    duration_seconds: float = 4.0,
    seed: int = 2006,
) -> CrossValidationResult:
    """Run both regimes both ways and tabulate the agreement."""
    arms = [
        _run_packet_arm(
            clients=clients, rate_pps=rate, payload_bytes=payload_bytes,
            bottleneck_rate_bps=bottleneck_rate_bps,
            duration_seconds=duration_seconds, seed=seed,
        )
        for rate in (unloaded_rate_pps, congested_rate_pps)
    ]
    report = ExperimentReport(
        "E12v", "Fluid vs packet-level goodput on the shared dumbbell scenario"
    )
    report.add_table(
        ["regime", "offered pps", "packet-level pps", "fluid pps",
         "wire B/pkt", "rel. error"],
        [[arm.name, arm.offered_pps, arm.packet_goodput_pps, arm.fluid_goodput_pps,
          arm.wire_bytes_per_packet, arm.relative_error] for arm in arms],
    )
    report.add_note(
        "the fluid model uses the measured wire bytes per packet, so shim and "
        "envelope overhead cancel; agreement within 10 % licenses the "
        "million-client extrapolation"
    )
    result = CrossValidationResult(arms=arms, report=report)
    result.note_failures()
    return result


# ---------------------------------------------------------------------------
# Latency proxy vs packet-level delay (PR 4 acceptance: within 15 %)
# ---------------------------------------------------------------------------


class _TimestampedPoissonSource:
    """A Poisson UDP packet train that logs every send time.

    Deliberately local to the validation harness: the stock workload
    sources do not expose per-packet send times, and the FIFO matching
    below needs them.  Exponential gaps come from a seeded numpy stream,
    so the arm is deterministic.
    """

    def __init__(self, host, destination, *, packets_per_second: float,
                 payload_bytes: int, destination_port: int,
                 rng: np.random.Generator, send_log: List[float]) -> None:
        self.host = host
        self.destination = destination
        self.packets_per_second = packets_per_second
        self.payload_bytes = payload_bytes
        self.destination_port = destination_port
        self.rng = rng
        self.send_log = send_log

    def start(self, duration_seconds: float) -> int:
        elapsed = 0.0
        count = 0
        while True:
            elapsed += float(self.rng.exponential(1.0 / self.packets_per_second))
            if elapsed > duration_seconds:
                return count
            self.host.sim.schedule(elapsed, self._send_one)
            count += 1

    def _send_one(self) -> None:
        self.send_log.append(self.host.sim.now)
        self.host.send(udp_packet(
            self.host.address, self.destination, b"d" * self.payload_bytes,
            destination_port=self.destination_port,
        ))


@dataclass
class LatencyValidationArm:
    """One load level of the dumbbell, delay measured both ways."""

    name: str
    bottleneck_utilization: float
    samples: int
    measured_mean_seconds: float
    predicted_mean_seconds: float

    @property
    def relative_error(self) -> float:
        """|measured − predicted| over the packet-level measurement.

        Like the goodput twin: a nonpositive measured delay means the arm
        never measured anything, which must fail loudly instead of
        poisoning the tolerance check with infinity.
        """
        if self.measured_mean_seconds <= 0:
            raise WorkloadError(
                f"{self.name} arm of the scale-validation dumbbell scenario "
                f"measured no positive packet delay ({self.samples} samples) "
                f"— the relative error would divide by zero; check the "
                f"utilization target and run duration"
            )
        return (abs(self.measured_mean_seconds - self.predicted_mean_seconds)
                / self.measured_mean_seconds)

    def describe_disagreement(self, tolerance: float) -> str:
        """Name the arm and the side that is off, like the goodput twin."""
        side = ("proxy high" if self.predicted_mean_seconds > self.measured_mean_seconds
                else "proxy low")
        return (
            f"{self.name} arm: packet-level {self.measured_mean_seconds * 1e3:.2f} ms "
            f"vs proxy {self.predicted_mean_seconds * 1e3:.2f} ms ({side} by "
            f"{self.relative_error:.1%}, tolerance {tolerance:.0%})"
        )


@dataclass
class LatencyValidationResult(_ToleranceReporting):
    """Both load arms plus the rendered comparison table."""

    arms: List[LatencyValidationArm]
    report: ExperimentReport
    tolerance: float = 0.15


def _run_latency_arm(*, name: str, clients: int, utilization_target: float,
                     payload_bytes: int, bottleneck_rate_bps: float,
                     duration_seconds: float, seed: int,
                     model: LatencyModel) -> LatencyValidationArm:
    """Measure per-packet one-way delay and predict it with the proxy."""
    scenario = build_scale_validation_scenario(
        clients=clients, bottleneck_rate_bps=bottleneck_rate_bps, seed=seed
    )
    topology = scenario.topology
    server = scenario.server

    # Send times per source address, matched FIFO at the server: the path
    # is a fixed order-preserving chain of FIFO links, so packet k in is
    # packet k out as long as nothing is dropped (asserted below).
    send_logs: dict = {}
    pending: dict = {}
    delays: List[float] = []

    def on_arrival(packet, host) -> None:
        queue = pending.get(str(packet.ip.source))
        if queue:
            delays.append(host.sim.now - queue.pop(0))

    server.register_port_handler(_VALIDATION_PORT, on_arrival)

    for client in scenario.client_names:
        host = topology.host(client)
        host.send(udp_packet(host.address, server.address, b"prime",
                             destination_port=_VALIDATION_PORT))
    topology.run(_PRIME_SECONDS)

    stats = scenario.bottleneck_stats()
    packets_before, bytes_before = stats.packets_sent, stats.bytes_sent
    delays.clear()

    # A rough wire estimate just to hit the utilization target; the proxy's
    # prediction below uses the *measured* wire size instead.
    est_wire_bits = (payload_bytes + 80) * BITS_PER_BYTE
    rate_pps = utilization_target * bottleneck_rate_bps / (est_wire_bits * clients)
    streams = np.random.SeedSequence([seed, len(name)]).spawn(clients)
    sent = 0
    for index, client in enumerate(scenario.client_names):
        host = topology.host(client)
        log: List[float] = []
        send_logs[client] = log
        pending[str(host.address)] = log
        source = _TimestampedPoissonSource(
            host, server.address,
            packets_per_second=rate_pps, payload_bytes=payload_bytes,
            destination_port=_VALIDATION_PORT,
            rng=np.random.default_rng(streams[index]), send_log=log,
        )
        sent += source.start(duration_seconds)
    topology.run(duration_seconds + _DRAIN_SECONDS)

    if len(delays) != sent:
        raise WorkloadError(
            f"latency arm {name!r} lost {sent - len(delays)} of {sent} packets; "
            f"the FIFO send/arrival matching is only valid loss-free — lower "
            f"the utilization target"
        )
    if not delays:
        raise WorkloadError(f"latency arm {name!r} measured no packets")

    wire_packets = stats.packets_sent - packets_before
    wire_bytes = stats.bytes_sent - bytes_before
    wire_bits = wire_bytes / max(wire_packets, 1) * BITS_PER_BYTE
    offered_bps = rate_pps * clients * wire_bits
    rho_bottleneck = offered_bps / bottleneck_rate_bps

    # The proxy's prediction: per-hop transmission + P-K wait at the hop's
    # utilization (the LatencyModel formula under test), plus propagation.
    # Topology constants from build_dumbbell: 100 Mb/s / 1 ms access links,
    # the bottleneck at 10 ms.
    access_bps, access_delay, bottleneck_delay = 100e6, 1e-3, 10e-3
    hops = (
        (access_bps, access_delay, rate_pps * wire_bits / access_bps),
        (bottleneck_rate_bps, bottleneck_delay, rho_bottleneck),
        (access_bps, access_delay, offered_bps / access_bps),
    )
    predicted = 0.0
    for rate_bps, propagation, rho in hops:
        service = wire_bits / rate_bps
        predicted += propagation + service * (
            1.0 + float(model.queueing_factor(np.asarray(rho)))
        )
    return LatencyValidationArm(
        name=name,
        bottleneck_utilization=rho_bottleneck,
        samples=len(delays),
        measured_mean_seconds=float(np.mean(delays)),
        predicted_mean_seconds=predicted,
    )


def cross_validate_latency(
    *,
    clients: int = 6,
    payload_bytes: int = 200,
    bottleneck_rate_bps: float = 600_000.0,
    light_utilization: float = 0.35,
    loaded_utilization: float = 0.75,
    duration_seconds: float = 6.0,
    seed: int = 2006,
    model: Optional[LatencyModel] = None,
) -> LatencyValidationResult:
    """Run both load levels both ways and tabulate the delay agreement.

    Deterministic packet-size service means the proxy is exercised at
    ``service_cv = 0`` (the M/D/1 point of the P-K family), which is also
    what the packet arm's fixed-size packets realize.
    """
    model = model or LatencyModel(service_cv=0.0)
    arms = [
        _run_latency_arm(
            name=name, clients=clients, utilization_target=target,
            payload_bytes=payload_bytes,
            bottleneck_rate_bps=bottleneck_rate_bps,
            duration_seconds=duration_seconds, seed=seed, model=model,
        )
        for name, target in (("light", light_utilization),
                             ("loaded", loaded_utilization))
    ]
    report = ExperimentReport(
        "E15v", "Latency proxy vs packet-level delay on the shared dumbbell"
    )
    report.add_table(
        ["regime", "bottleneck util", "samples", "measured ms", "proxy ms",
         "rel. error"],
        [[arm.name, arm.bottleneck_utilization, arm.samples,
          arm.measured_mean_seconds * 1e3, arm.predicted_mean_seconds * 1e3,
          arm.relative_error] for arm in arms],
    )
    report.add_note(
        "Poisson arrivals against fixed-size service: the proxy's P-K term "
        "is evaluated at service_cv=0 (M/D/1), matching what the event "
        "engine realizes; agreement within 15 % licenses quoting fluid "
        "latency distributions at fleet scale"
    )
    result = LatencyValidationResult(arms=arms, report=report)
    result.note_failures()
    return result


# ---------------------------------------------------------------------------
# Adversary epoch vs packet-level discrimination (PR 5 acceptance: within 10 %)
# ---------------------------------------------------------------------------


@dataclass
class AdversaryValidationArm:
    """One adoption level, delivered fraction measured both ways."""

    name: str
    adoption: float
    throttle_factor: float
    offered_pps: float
    packet_delivered_fraction: float
    fluid_delivered_fraction: float

    @property
    def relative_error(self) -> float:
        """|packet − fluid| over the packet-level measurement."""
        if self.packet_delivered_fraction <= 0:
            raise WorkloadError(
                f"{self.name} arm of the adversary-validation dumbbell "
                f"scenario delivered nothing at the packet level (offered "
                f"{self.offered_pps:g} pps) — the relative error would "
                f"divide by zero; loosen the throttle or raise the rate"
            )
        return (abs(self.packet_delivered_fraction - self.fluid_delivered_fraction)
                / self.packet_delivered_fraction)

    def describe_disagreement(self, tolerance: float) -> str:
        """Name the arm and the side that is off, like its two siblings."""
        side = ("fluid high"
                if self.fluid_delivered_fraction > self.packet_delivered_fraction
                else "fluid low")
        return (
            f"{self.name} arm: packet-level {self.packet_delivered_fraction:.3f} "
            f"delivered vs fluid {self.fluid_delivered_fraction:.3f} ({side} by "
            f"{self.relative_error:.1%}, tolerance {tolerance:.0%})"
        )


@dataclass
class AdversaryValidationResult(_ToleranceReporting):
    """All adoption arms plus the rendered comparison table."""

    arms: List[AdversaryValidationArm]
    report: ExperimentReport
    tolerance: float = 0.10


def _run_adversary_packet_arm(*, name: str, clients: int, adopters: int,
                              rate_pps: float, payload_bytes: int,
                              bottleneck_rate_bps: float,
                              throttle_factor: float,
                              duration_seconds: float,
                              seed: int) -> Tuple[float, float]:
    """Measure delivered fraction under a destination-matched throttle.

    The first ``adopters`` clients run through the neutralizer (their wire
    packets carry the anycast destination, so the ISP's rule cannot match
    them); the rest send plain UDP to the server, which the discriminatory
    access ISP throttles to ``throttle_factor`` of its offered rate with a
    THROTTLE rule — :mod:`repro.discrimination` semantics end to end.
    Returns (delivered fraction, offered pps).
    """
    from ..analysis.scenarios import build_dumbbell
    from ..core.api import neutralize_isp
    from ..crypto.randomness import DeterministicRandom
    from ..discrimination.classifier import criteria_for_destination
    from ..discrimination.isp import install_policy
    from ..discrimination.policy import (
        Action,
        DiscriminationPolicy,
        DiscriminationRule,
    )
    from ..packet.addresses import ip

    topology = build_dumbbell(
        clients=clients, servers=1, bottleneck_rate_bps=bottleneck_rate_bps,
        seed=seed,
    )
    rng = DeterministicRandom(seed)
    deployment = neutralize_isp(topology, "right", ip("10.200.0.9"), rng=rng)
    server = topology.host("server0")
    deployment.attach_server(server)
    client_names = [f"client{index}" for index in range(clients)]
    for client in client_names[:adopters]:
        deployment.attach_client(topology.host(client))
        deployment.bootstrap_client(client, "server0")

    exposed = clients - adopters
    if exposed > 0 and throttle_factor < 1.0:
        plain_wire_bits = (payload_bytes + IPV4_HEADER_LEN
                           + UDP_HEADER_LEN) * BITS_PER_BYTE
        exposed_offered_bps = exposed * rate_pps * plain_wire_bits
        policy = DiscriminationPolicy(
            name="throttle-classifiable",
            rules=[DiscriminationRule(
                criteria=criteria_for_destination(
                    server.address, name="throttle plain traffic to server0"),
                action=Action.THROTTLE,
                throttle_rate_bps=throttle_factor * exposed_offered_bps,
                intent="squeeze the class we can still classify",
            )],
        )
        install_policy(topology, "left", policy, rng=rng)

    arrivals: List[float] = []
    server.register_port_handler(
        _VALIDATION_PORT, lambda packet, host: arrivals.append(host.sim.now)
    )
    # Prime key setups (adopters) and the policer (exposed traffic drains
    # the token bucket's initial burst before the measurement window).
    for client in client_names:
        host = topology.host(client)
        host.send(udp_packet(host.address, server.address, b"prime",
                             destination_port=_VALIDATION_PORT))
    topology.run(_PRIME_SECONDS)

    sources = [
        ConstantRateSource(
            topology.host(client), server.address, packets_per_second=rate_pps,
            payload_bytes=payload_bytes, destination_port=_VALIDATION_PORT,
            flow_id=f"adversary-check-{client}",
        )
        for client in client_names
    ]
    for source in sources:
        source.start(duration_seconds)
    start_time = topology.sim.now
    topology.run(duration_seconds + _DRAIN_SECONDS)

    window_start = start_time + _WARMUP_SECONDS
    window_end = start_time + duration_seconds
    delivered = sum(1 for at in arrivals if window_start < at <= window_end)
    offered_pps = rate_pps * clients
    delivered_fraction = delivered / (offered_pps * (window_end - window_start))
    return delivered_fraction, offered_pps


def _solve_adversary_fluid_arm(*, clients: int, adoption: float,
                               rate_pps: float, payload_bytes: int,
                               bottleneck_rate_bps: float,
                               throttle_factor: float,
                               seed: int) -> float:
    """The same epoch through the real fluid adversary machinery.

    One single-class population against one oversized site, the shared
    bottleneck as the regional uplink, and an :class:`AdversaryRun` with a
    perfect classifier (TP 1, FP 0, no leakage) pinned at the packet arm's
    adoption and throttle factor — exactly the confusion-model semantics
    under test, solved through ``ProblemTemplate.instantiate`` like any
    timeline epoch.
    """
    from .adversary import AdoptionModel, AdversaryGame, AdversaryRun
    from .adversary import ClassifierModel, IspStrategy
    from .fleet import FleetSite, NeutralizerFleet
    from .population import ClientPopulation, DemandClass, PopulationMix
    from .scenario import ScaleScenario
    from .solver import solve_allocation

    wire_bytes = payload_bytes + IPV4_HEADER_LEN + UDP_HEADER_LEN
    mix = PopulationMix(
        classes=(DemandClass(
            name="probe", packets_per_second=rate_pps,
            packet_bytes=wire_bytes, duty_cycle=1.0, key_setups_per_hour=0.0,
        ),),
        fractions=(1.0,),
    )
    population = ClientPopulation(clients, mix=mix, regions=1, seed=seed)
    fleet = NeutralizerFleet(
        [FleetSite("site00", cores=1e3, uplink_bps=1e12)]
    )
    template = ScaleScenario(
        population, fleet, region_uplink_bps=bottleneck_rate_bps,
    ).build_template()

    game = AdversaryGame(
        isp=IspStrategy(
            target_classes=("probe",), budget_fraction=1.0,
            classifier=ClassifierModel(true_positive=1.0, false_positive=0.0,
                                       neutralized_leakage=0.0),
        ),
        adoption=AdoptionModel(initial_adoption=adoption),
    )
    run = AdversaryRun(game, population)
    run.factor = throttle_factor  # pin the severity the packet arm enforces
    adv = run.step(0, template, np.ones(template.base_demands.shape), 3600.0)
    epoch = template.instantiate(adv.served_multiplier)
    allocation = solve_allocation(epoch.problem)
    delivered_pps = float(
        (allocation.rates * template.group_clients / template.bits_per_packet).sum()
    )
    offered_pps = rate_pps * clients
    if offered_pps <= 0:
        raise WorkloadError(
            "the fluid arm of the adversary-validation dumbbell scenario "
            "offers zero demand — nothing to validate against"
        )
    return delivered_pps / offered_pps


def cross_validate_adversary(
    *,
    clients: int = 6,
    payload_bytes: int = 200,
    bottleneck_rate_bps: float = 2_000_000.0,
    rate_pps: float = 25.0,
    throttle_factor: float = 0.3,
    adoptions: Sequence[float] = (0.0, 0.5),
    duration_seconds: float = 4.0,
    seed: int = 2006,
) -> AdversaryValidationResult:
    """Cross-check one fluid adversary epoch against the packet-level path.

    Both arms realize the same situation: a discriminatory access ISP
    throttles everything it can classify toward the server to
    ``throttle_factor`` of its rate, while an ``adoption`` share of clients
    has deployed the neutralizer and become unclassifiable.  The packet arm
    runs :mod:`repro.discrimination` rules against real (partly
    neutralized) traffic through :mod:`repro.netsim`; the fluid arm runs
    the same epoch through :class:`repro.scale.adversary.AdversaryRun` and
    the solver.  Delivered fractions must agree within 10 % at every
    adoption level — the license for quoting E16 frontiers at fleet scale.
    """
    if not adoptions:
        raise WorkloadError("the adversary validation needs adoption levels")
    arms: List[AdversaryValidationArm] = []
    for adoption in adoptions:
        if not 0.0 <= adoption <= 1.0:
            raise WorkloadError("adoption levels must be fractions in [0, 1]")
        adopters = int(round(clients * adoption))
        packet_fraction, offered_pps = _run_adversary_packet_arm(
            name=f"adoption {adoption:g}", clients=clients, adopters=adopters,
            rate_pps=rate_pps, payload_bytes=payload_bytes,
            bottleneck_rate_bps=bottleneck_rate_bps,
            throttle_factor=throttle_factor,
            duration_seconds=duration_seconds, seed=seed,
        )
        fluid_fraction = _solve_adversary_fluid_arm(
            clients=clients, adoption=adopters / clients, rate_pps=rate_pps,
            payload_bytes=payload_bytes,
            bottleneck_rate_bps=bottleneck_rate_bps,
            throttle_factor=throttle_factor, seed=seed,
        )
        arms.append(AdversaryValidationArm(
            name=f"adoption {adoption:g}",
            adoption=adoption,
            throttle_factor=throttle_factor,
            offered_pps=offered_pps,
            packet_delivered_fraction=packet_fraction,
            fluid_delivered_fraction=fluid_fraction,
        ))
    report = ExperimentReport(
        "E16v", "Fluid adversary epoch vs packet-level discrimination on the "
                "shared dumbbell"
    )
    report.add_table(
        ["arm", "adoption", "throttle", "packet delivered", "fluid delivered",
         "rel. error"],
        [[arm.name, arm.adoption, arm.throttle_factor,
          arm.packet_delivered_fraction, arm.fluid_delivered_fraction,
          arm.relative_error] for arm in arms],
    )
    report.add_note(
        "the packet arm throttles classifiable (non-neutralized) traffic "
        "with a repro.discrimination THROTTLE rule; neutralized traffic "
        "carries the anycast destination and cannot match — agreement "
        "licenses the E16 confusion-model semantics at fleet scale"
    )
    result = AdversaryValidationResult(arms=arms, report=report)
    result.note_failures()
    return result
