"""Cross-validation of the fluid model against the packet-level simulator.

Both simulators run the *same* small scenario — the neutralized dumbbell of
:func:`repro.analysis.scenarios.build_scale_validation_scenario`: N clients
behind one access ISP, a shared bottleneck, one server behind the
neutralizer.  Two quantities are checked:

*Goodput* (:func:`cross_validate`): the packet-level run measures
steady-state goodput at the server; the fluid side builds the equivalent
one-resource :class:`repro.scale.solver.CapacityProblem` using the
*measured* wire bytes per packet (so shim and envelope overhead enter both
models identically) and solves it with max-min fairness.  Agreement within
10 % on both the congested and the uncongested regime is an acceptance
criterion of the subsystem — it is what licenses extrapolating the fluid
model to populations the event engine cannot touch.

*Latency* (:func:`cross_validate_latency`): Poisson client sources run the
same dumbbell below saturation while every data packet's one-way delay is
measured at the server (send times matched FIFO per source — the path is
order-preserving and the regime is loss-free, which the harness asserts).
The proxy side composes the same path from per-hop transmission and
propagation plus the :class:`repro.scale.latency.LatencyModel`
Pollaczek–Khinchine term at each hop's measured utilization.  Agreement
within 15 % on a lightly- and a heavily-loaded transient is the acceptance
criterion of the latency subsystem (PR 4) — the queueing term is what is
being validated, so the loaded arm is tuned to make it a material share of
the path delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis.report import ExperimentReport
from ..analysis.scenarios import build_scale_validation_scenario
from ..apps.workloads import ConstantRateSource
from ..exceptions import WorkloadError
from ..packet.builder import udp_packet
from ..units import BITS_PER_BYTE
from .latency import LatencyModel
from .solver import CapacityProblem, max_min_allocation

#: Server port the validation traffic targets.
_VALIDATION_PORT = 46000
#: Settling time before and measurement guard after the sources run.
_PRIME_SECONDS = 1.0
_WARMUP_SECONDS = 0.5
_DRAIN_SECONDS = 2.0


class _ToleranceReporting:
    """Shared tolerance/failure plumbing of both validation results.

    Subclasses carry ``arms`` (each with ``relative_error`` and
    ``describe_disagreement(tolerance)``) and an acceptance ``tolerance``;
    everything downstream — the worst error, the pass/fail verdict, and
    the per-arm failure descriptions naming the arm and the side that is
    off — is identical between the goodput and the latency validation and
    lives here once.
    """

    @property
    def max_relative_error(self) -> float:
        """Worst disagreement across arms (acceptance: ≤ ``tolerance``)."""
        return max(arm.relative_error for arm in self.arms)

    @property
    def within_tolerance(self) -> bool:
        """Whether every arm agreed within the acceptance bound."""
        return self.max_relative_error <= self.tolerance

    @property
    def failures(self) -> List[str]:
        """Per-arm descriptions of every tolerance violation (empty = pass),
        each naming the arm and which side was high or low."""
        return [arm.describe_disagreement(self.tolerance) for arm in self.arms
                if arm.relative_error > self.tolerance]

    def failure_message(self) -> str:
        """One line summarizing which arm(s) exceeded tolerance and how."""
        return "; ".join(self.failures)

    def note_failures(self) -> None:
        """Append one report note per tolerance violation."""
        for failure in self.failures:
            self.report.add_note(f"TOLERANCE EXCEEDED: {failure}")


@dataclass
class ValidationArm:
    """One regime of the shared scenario, measured both ways."""

    name: str
    offered_pps: float
    packet_goodput_pps: float
    fluid_goodput_pps: float
    wire_bytes_per_packet: float

    @property
    def relative_error(self) -> float:
        """|packet − fluid| over the packet-level measurement."""
        if self.packet_goodput_pps <= 0:
            return float("inf")
        return abs(self.packet_goodput_pps - self.fluid_goodput_pps) / self.packet_goodput_pps

    def describe_disagreement(self, tolerance: float) -> str:
        """Name the arm *and the side that is off* — 'rel. error 0.13' alone
        does not say whether the fluid model over- or under-shot which
        regime, which is the first thing a debugging session needs."""
        side = ("fluid high" if self.fluid_goodput_pps > self.packet_goodput_pps
                else "fluid low")
        return (
            f"{self.name} arm: packet-level {self.packet_goodput_pps:.1f} pps "
            f"vs fluid {self.fluid_goodput_pps:.1f} pps ({side} by "
            f"{self.relative_error:.1%}, tolerance {tolerance:.0%})"
        )


@dataclass
class CrossValidationResult(_ToleranceReporting):
    """Both arms plus the rendered comparison table."""

    arms: List[ValidationArm]
    report: ExperimentReport
    #: Acceptance bound on the per-arm relative error.
    tolerance: float = 0.10


def _run_packet_arm(*, clients: int, rate_pps: float, payload_bytes: int,
                    bottleneck_rate_bps: float, duration_seconds: float,
                    seed: int) -> ValidationArm:
    """Run one regime through the event engine and measure steady goodput."""
    scenario = build_scale_validation_scenario(
        clients=clients, bottleneck_rate_bps=bottleneck_rate_bps, seed=seed
    )
    topology = scenario.topology
    server = scenario.server

    arrivals: List[float] = []
    server.register_port_handler(
        _VALIDATION_PORT, lambda packet, host: arrivals.append(host.sim.now)
    )

    # Prime every client's key setup so the measurement window sees only the
    # steady data path (the fluid model has no notion of setup transients).
    for name in scenario.client_names:
        host = topology.host(name)
        host.send(udp_packet(host.address, server.address, b"prime",
                             destination_port=_VALIDATION_PORT))
    topology.run(_PRIME_SECONDS)

    stats = scenario.bottleneck_stats()
    packets_before, bytes_before = stats.packets_sent, stats.bytes_sent
    primed = len(arrivals)

    sources = [
        ConstantRateSource(
            topology.host(name), server.address, packets_per_second=rate_pps,
            payload_bytes=payload_bytes, destination_port=_VALIDATION_PORT,
            flow_id=f"fluid-check-{name}",
        )
        for name in scenario.client_names
    ]
    for source in sources:
        source.start(duration_seconds)
    start_time = topology.sim.now
    topology.run(duration_seconds + _DRAIN_SECONDS)

    wire_packets = stats.packets_sent - packets_before
    wire_bytes = stats.bytes_sent - bytes_before
    if wire_packets <= 0:
        raise WorkloadError("no validation traffic crossed the bottleneck")
    wire_bytes_per_packet = wire_bytes / wire_packets

    # Steady-state window: skip the pipeline-fill transient, stop when the
    # sources stop (queued packets past that point belong to no rate).
    window_start = start_time + _WARMUP_SECONDS
    window_end = start_time + duration_seconds
    delivered = sum(1 for at in arrivals[primed:] if window_start < at <= window_end)
    goodput_pps = delivered / (window_end - window_start)

    fluid_goodput = _solve_fluid_arm(
        clients=clients, rate_pps=rate_pps,
        wire_bits=wire_bytes_per_packet * 8.0,
        bottleneck_rate_bps=bottleneck_rate_bps,
    )
    return ValidationArm(
        name="congested" if rate_pps * clients * wire_bytes_per_packet * 8.0
             > bottleneck_rate_bps else "unloaded",
        offered_pps=rate_pps * clients,
        packet_goodput_pps=goodput_pps,
        fluid_goodput_pps=fluid_goodput,
        wire_bytes_per_packet=wire_bytes_per_packet,
    )


def _solve_fluid_arm(*, clients: int, rate_pps: float, wire_bits: float,
                     bottleneck_rate_bps: float) -> float:
    """The same scenario as a one-bottleneck max-min problem."""
    problem = CapacityProblem(
        demands=np.full(clients, rate_pps),
        usage=np.full((1, clients), wire_bits),
        capacities=np.array([bottleneck_rate_bps]),
        flow_labels=[f"client{i}" for i in range(clients)],
        resource_labels=["bottleneck"],
    )
    allocation = max_min_allocation(problem)
    return float(allocation.rates.sum())


def cross_validate(
    *,
    clients: int = 4,
    payload_bytes: int = 200,
    bottleneck_rate_bps: float = 600_000.0,
    unloaded_rate_pps: float = 25.0,
    congested_rate_pps: float = 90.0,
    duration_seconds: float = 4.0,
    seed: int = 2006,
) -> CrossValidationResult:
    """Run both regimes both ways and tabulate the agreement."""
    arms = [
        _run_packet_arm(
            clients=clients, rate_pps=rate, payload_bytes=payload_bytes,
            bottleneck_rate_bps=bottleneck_rate_bps,
            duration_seconds=duration_seconds, seed=seed,
        )
        for rate in (unloaded_rate_pps, congested_rate_pps)
    ]
    report = ExperimentReport(
        "E12v", "Fluid vs packet-level goodput on the shared dumbbell scenario"
    )
    report.add_table(
        ["regime", "offered pps", "packet-level pps", "fluid pps",
         "wire B/pkt", "rel. error"],
        [[arm.name, arm.offered_pps, arm.packet_goodput_pps, arm.fluid_goodput_pps,
          arm.wire_bytes_per_packet, arm.relative_error] for arm in arms],
    )
    report.add_note(
        "the fluid model uses the measured wire bytes per packet, so shim and "
        "envelope overhead cancel; agreement within 10 % licenses the "
        "million-client extrapolation"
    )
    result = CrossValidationResult(arms=arms, report=report)
    result.note_failures()
    return result


# ---------------------------------------------------------------------------
# Latency proxy vs packet-level delay (PR 4 acceptance: within 15 %)
# ---------------------------------------------------------------------------


class _TimestampedPoissonSource:
    """A Poisson UDP packet train that logs every send time.

    Deliberately local to the validation harness: the stock workload
    sources do not expose per-packet send times, and the FIFO matching
    below needs them.  Exponential gaps come from a seeded numpy stream,
    so the arm is deterministic.
    """

    def __init__(self, host, destination, *, packets_per_second: float,
                 payload_bytes: int, destination_port: int,
                 rng: np.random.Generator, send_log: List[float]) -> None:
        self.host = host
        self.destination = destination
        self.packets_per_second = packets_per_second
        self.payload_bytes = payload_bytes
        self.destination_port = destination_port
        self.rng = rng
        self.send_log = send_log

    def start(self, duration_seconds: float) -> int:
        elapsed = 0.0
        count = 0
        while True:
            elapsed += float(self.rng.exponential(1.0 / self.packets_per_second))
            if elapsed > duration_seconds:
                return count
            self.host.sim.schedule(elapsed, self._send_one)
            count += 1

    def _send_one(self) -> None:
        self.send_log.append(self.host.sim.now)
        self.host.send(udp_packet(
            self.host.address, self.destination, b"d" * self.payload_bytes,
            destination_port=self.destination_port,
        ))


@dataclass
class LatencyValidationArm:
    """One load level of the dumbbell, delay measured both ways."""

    name: str
    bottleneck_utilization: float
    samples: int
    measured_mean_seconds: float
    predicted_mean_seconds: float

    @property
    def relative_error(self) -> float:
        """|measured − predicted| over the packet-level measurement."""
        if self.measured_mean_seconds <= 0:
            return float("inf")
        return (abs(self.measured_mean_seconds - self.predicted_mean_seconds)
                / self.measured_mean_seconds)

    def describe_disagreement(self, tolerance: float) -> str:
        """Name the arm and the side that is off, like the goodput twin."""
        side = ("proxy high" if self.predicted_mean_seconds > self.measured_mean_seconds
                else "proxy low")
        return (
            f"{self.name} arm: packet-level {self.measured_mean_seconds * 1e3:.2f} ms "
            f"vs proxy {self.predicted_mean_seconds * 1e3:.2f} ms ({side} by "
            f"{self.relative_error:.1%}, tolerance {tolerance:.0%})"
        )


@dataclass
class LatencyValidationResult(_ToleranceReporting):
    """Both load arms plus the rendered comparison table."""

    arms: List[LatencyValidationArm]
    report: ExperimentReport
    tolerance: float = 0.15


def _run_latency_arm(*, name: str, clients: int, utilization_target: float,
                     payload_bytes: int, bottleneck_rate_bps: float,
                     duration_seconds: float, seed: int,
                     model: LatencyModel) -> LatencyValidationArm:
    """Measure per-packet one-way delay and predict it with the proxy."""
    scenario = build_scale_validation_scenario(
        clients=clients, bottleneck_rate_bps=bottleneck_rate_bps, seed=seed
    )
    topology = scenario.topology
    server = scenario.server

    # Send times per source address, matched FIFO at the server: the path
    # is a fixed order-preserving chain of FIFO links, so packet k in is
    # packet k out as long as nothing is dropped (asserted below).
    send_logs: dict = {}
    pending: dict = {}
    delays: List[float] = []

    def on_arrival(packet, host) -> None:
        queue = pending.get(str(packet.ip.source))
        if queue:
            delays.append(host.sim.now - queue.pop(0))

    server.register_port_handler(_VALIDATION_PORT, on_arrival)

    for client in scenario.client_names:
        host = topology.host(client)
        host.send(udp_packet(host.address, server.address, b"prime",
                             destination_port=_VALIDATION_PORT))
    topology.run(_PRIME_SECONDS)

    stats = scenario.bottleneck_stats()
    packets_before, bytes_before = stats.packets_sent, stats.bytes_sent
    delays.clear()

    # A rough wire estimate just to hit the utilization target; the proxy's
    # prediction below uses the *measured* wire size instead.
    est_wire_bits = (payload_bytes + 80) * BITS_PER_BYTE
    rate_pps = utilization_target * bottleneck_rate_bps / (est_wire_bits * clients)
    streams = np.random.SeedSequence([seed, len(name)]).spawn(clients)
    sent = 0
    for index, client in enumerate(scenario.client_names):
        host = topology.host(client)
        log: List[float] = []
        send_logs[client] = log
        pending[str(host.address)] = log
        source = _TimestampedPoissonSource(
            host, server.address,
            packets_per_second=rate_pps, payload_bytes=payload_bytes,
            destination_port=_VALIDATION_PORT,
            rng=np.random.default_rng(streams[index]), send_log=log,
        )
        sent += source.start(duration_seconds)
    topology.run(duration_seconds + _DRAIN_SECONDS)

    if len(delays) != sent:
        raise WorkloadError(
            f"latency arm {name!r} lost {sent - len(delays)} of {sent} packets; "
            f"the FIFO send/arrival matching is only valid loss-free — lower "
            f"the utilization target"
        )
    if not delays:
        raise WorkloadError(f"latency arm {name!r} measured no packets")

    wire_packets = stats.packets_sent - packets_before
    wire_bytes = stats.bytes_sent - bytes_before
    wire_bits = wire_bytes / max(wire_packets, 1) * BITS_PER_BYTE
    offered_bps = rate_pps * clients * wire_bits
    rho_bottleneck = offered_bps / bottleneck_rate_bps

    # The proxy's prediction: per-hop transmission + P-K wait at the hop's
    # utilization (the LatencyModel formula under test), plus propagation.
    # Topology constants from build_dumbbell: 100 Mb/s / 1 ms access links,
    # the bottleneck at 10 ms.
    access_bps, access_delay, bottleneck_delay = 100e6, 1e-3, 10e-3
    hops = (
        (access_bps, access_delay, rate_pps * wire_bits / access_bps),
        (bottleneck_rate_bps, bottleneck_delay, rho_bottleneck),
        (access_bps, access_delay, offered_bps / access_bps),
    )
    predicted = 0.0
    for rate_bps, propagation, rho in hops:
        service = wire_bits / rate_bps
        predicted += propagation + service * (
            1.0 + float(model.queueing_factor(np.asarray(rho)))
        )
    return LatencyValidationArm(
        name=name,
        bottleneck_utilization=rho_bottleneck,
        samples=len(delays),
        measured_mean_seconds=float(np.mean(delays)),
        predicted_mean_seconds=predicted,
    )


def cross_validate_latency(
    *,
    clients: int = 6,
    payload_bytes: int = 200,
    bottleneck_rate_bps: float = 600_000.0,
    light_utilization: float = 0.35,
    loaded_utilization: float = 0.75,
    duration_seconds: float = 6.0,
    seed: int = 2006,
    model: Optional[LatencyModel] = None,
) -> LatencyValidationResult:
    """Run both load levels both ways and tabulate the delay agreement.

    Deterministic packet-size service means the proxy is exercised at
    ``service_cv = 0`` (the M/D/1 point of the P-K family), which is also
    what the packet arm's fixed-size packets realize.
    """
    model = model or LatencyModel(service_cv=0.0)
    arms = [
        _run_latency_arm(
            name=name, clients=clients, utilization_target=target,
            payload_bytes=payload_bytes,
            bottleneck_rate_bps=bottleneck_rate_bps,
            duration_seconds=duration_seconds, seed=seed, model=model,
        )
        for name, target in (("light", light_utilization),
                             ("loaded", loaded_utilization))
    ]
    report = ExperimentReport(
        "E15v", "Latency proxy vs packet-level delay on the shared dumbbell"
    )
    report.add_table(
        ["regime", "bottleneck util", "samples", "measured ms", "proxy ms",
         "rel. error"],
        [[arm.name, arm.bottleneck_utilization, arm.samples,
          arm.measured_mean_seconds * 1e3, arm.predicted_mean_seconds * 1e3,
          arm.relative_error] for arm in arms],
    )
    report.add_note(
        "Poisson arrivals against fixed-size service: the proxy's P-K term "
        "is evaluated at service_cv=0 (M/D/1), matching what the event "
        "engine realizes; agreement within 15 % licenses quoting fluid "
        "latency distributions at fleet scale"
    )
    result = LatencyValidationResult(arms=arms, report=report)
    result.note_failures()
    return result
