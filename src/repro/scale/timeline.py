"""Time-stepped fluid simulation: a fleet riding out events over epochs.

One :class:`ScaleScenario` solve is a busy *instant*; deployments live
through *days* — diurnal load swings, flash crowds, regional outages with
failover, staged discrimination rollouts.  :class:`FluidTimeline` advances
the max-min solver through a sequence of epochs:

* demand is driven by a pluggable :class:`LoadCurve` returning a per-region
  multiplier for each epoch (sinusoidal diurnal cycles with timezone spread,
  flash-crowd spikes, linear ramps, compositions thereof);
* the fleet evolves through :class:`FleetEvent` items — site failure and
  recovery remap clients through the consistent-hash ring, capacity
  degradation scales a site's budgets, discrimination toggles throttle a
  region's served classes;
* an optional closed-loop :class:`repro.scale.autoscale.Autoscaler`
  observes each epoch's utilization (and, with a latency model attached,
  its P95 path delay) and commissions or drains sites through the same
  ring-remap machinery, with warm-up delay, cooldown, and dollar accounting
  via :class:`repro.scale.costmodel.ProvisioningCostModel`;
* an optional :class:`repro.scale.latency.LatencyModel` maps every epoch's
  utilization to client-weighted path-delay percentiles (P50/P95/P99) and
  the fraction of clients violating a latency SLO, recorded per epoch;
* an optional closed-loop :class:`repro.scale.adversary.AdversaryGame` plays
  the paper's arms race each epoch: an adaptive ISP strategy flags and
  throttles classifiable traffic under a policing budget while per-region
  neutralizer adoption reacts to the experienced harm, feeding per-flow
  served-demand caps and adopter re-key load back into the solve;
* each epoch is solved *warm*: the flow structure is a cached
  :class:`repro.scale.scenario.ProblemTemplate` (rebuilt incrementally, in
  O(moved clients), only when the ring actually changes) and the previous
  epoch's allocation is offered to
  :func:`repro.scale.solver.max_min_allocation` as a verified warm start,
  so an event-free epoch costs a few vectorized passes over per-flow
  vectors, independent of population size.

The result is a :class:`TimelineResult`: per-epoch goodput, delivered
fraction, per-site utilization matrices, serving-site counts, provisioning
cost, and remap churn (clients moved plus the hash-space fraction the ring
diff says changed owner).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import WorkloadError
from .adversary import (
    AdoptionModel,
    AdversaryGame,
    AdversaryRun,
    experienced_latency,
    split_latency_by_class,
)
from .autoscale import AutoscalePolicy, AutoscaleRun, Autoscaler, EpochMetrics
from .costmodel import ProvisioningCostModel
from .fleet import NeutralizerFleet
from .latency import LatencyModel, evaluate_latency
from .population import ClientPopulation
from .scenario import ProblemTemplate, ScaleScenario
from .solver import Allocation, solve_allocation
from .telemetry import NULL, Telemetry


def _optional_arrays_equal(left: Optional[np.ndarray],
                           right: Optional[np.ndarray]) -> bool:
    """Whether two maybe-absent per-flow/per-site vectors are identical."""
    if left is None or right is None:
        return left is None and right is None
    return np.array_equal(left, right)

DAY_SECONDS = 86_400.0


# ---------------------------------------------------------------------------
# Load curves
# ---------------------------------------------------------------------------


class LoadCurve:
    """Demand multiplier over time, possibly different per access region.

    ``multipliers(t, regions)`` returns one non-negative factor per region;
    a factor of 1.0 means the population's nominal busy-instant demand.
    """

    def multipliers(self, t_seconds: float, regions: int) -> np.ndarray:
        """Per-region demand multipliers at absolute time ``t_seconds``."""
        raise NotImplementedError

    def __mul__(self, other: "LoadCurve") -> "CompositeLoad":
        return CompositeLoad((self, other))


@dataclass(frozen=True)
class ConstantLoad(LoadCurve):
    """Flat demand at ``level`` times nominal."""

    level: float = 1.0

    def __post_init__(self) -> None:
        if self.level < 0:
            raise WorkloadError("load level must be non-negative")

    def multipliers(self, t_seconds: float, regions: int) -> np.ndarray:
        return np.full(regions, self.level)


@dataclass(frozen=True)
class DiurnalLoad(LoadCurve):
    """A day-night sinusoid between ``trough`` and ``peak``.

    ``peak_time_seconds`` places the daily maximum; ``timezone_spread``
    staggers the regions' peaks uniformly across that fraction of the period
    (regions of a continental deployment do not peak together).
    """

    trough: float = 0.4
    peak: float = 1.0
    period_seconds: float = DAY_SECONDS
    peak_time_seconds: float = DAY_SECONDS * 20 / 24  # 8 pm local
    timezone_spread: float = 0.25

    def __post_init__(self) -> None:
        if not 0 <= self.trough <= self.peak:
            raise WorkloadError("diurnal load needs 0 <= trough <= peak")
        if self.period_seconds <= 0:
            raise WorkloadError("diurnal period must be positive")
        if not 0 <= self.timezone_spread <= 1:
            raise WorkloadError("timezone spread is a fraction of the period")

    def multipliers(self, t_seconds: float, regions: int) -> np.ndarray:
        mean = (self.peak + self.trough) / 2.0
        amplitude = (self.peak - self.trough) / 2.0
        offsets = np.arange(regions) / max(regions, 1) * self.timezone_spread
        phase = (t_seconds - self.peak_time_seconds) / self.period_seconds - offsets
        return mean + amplitude * np.cos(2.0 * math.pi * phase)


@dataclass(frozen=True)
class FlashCrowdLoad(LoadCurve):
    """A sudden spike on top of a base level, optionally region-targeted.

    Demand ramps linearly from ``base`` to ``base × spike`` over
    ``ramp_seconds``, holds for ``hold_seconds``, and decays back over
    ``ramp_seconds``.  ``regions_hit`` restricts the spike to those region
    indices (the rest stay at ``base``); ``None`` hits everyone.
    """

    base: float = 1.0
    spike: float = 6.0
    start_seconds: float = 0.0
    ramp_seconds: float = 1800.0
    hold_seconds: float = 3600.0
    regions_hit: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.base < 0 or self.spike < 1.0:
            raise WorkloadError("flash crowd needs base >= 0 and spike >= 1")
        if self.ramp_seconds < 0 or self.hold_seconds < 0:
            raise WorkloadError("flash crowd ramp/hold must be non-negative")
        if self.regions_hit is not None and any(r < 0 for r in self.regions_hit):
            raise WorkloadError("flash crowd region indices must be non-negative")

    def _level(self, t: float) -> float:
        dt = t - self.start_seconds
        if dt < 0 or dt > 2 * self.ramp_seconds + self.hold_seconds:
            return self.base
        if dt < self.ramp_seconds:
            fraction = dt / self.ramp_seconds if self.ramp_seconds else 1.0
        elif dt <= self.ramp_seconds + self.hold_seconds:
            fraction = 1.0
        else:
            fraction = (2 * self.ramp_seconds + self.hold_seconds - dt) / self.ramp_seconds
        return self.base * (1.0 + (self.spike - 1.0) * fraction)

    def multipliers(self, t_seconds: float, regions: int) -> np.ndarray:
        out = np.full(regions, self.base)
        level = self._level(t_seconds)
        if self.regions_hit is None:
            out[:] = level
        else:
            # A typo'd region index must fail loudly, not flatten the spike.
            bad = [r for r in self.regions_hit if r >= regions]
            if bad:
                raise WorkloadError(
                    f"flash crowd hits region(s) {bad}, only {regions} exist"
                )
            out[list(self.regions_hit)] = level
        return out


@dataclass(frozen=True)
class LinearRampLoad(LoadCurve):
    """Linear growth from ``start_level`` to ``end_level`` over the window."""

    start_level: float = 1.0
    end_level: float = 2.0
    t0_seconds: float = 0.0
    t1_seconds: float = DAY_SECONDS

    def __post_init__(self) -> None:
        if self.start_level < 0 or self.end_level < 0:
            raise WorkloadError("ramp levels must be non-negative")
        if self.t1_seconds <= self.t0_seconds:
            raise WorkloadError("ramp needs t1 > t0")

    def multipliers(self, t_seconds: float, regions: int) -> np.ndarray:
        fraction = (t_seconds - self.t0_seconds) / (self.t1_seconds - self.t0_seconds)
        fraction = min(max(fraction, 0.0), 1.0)
        level = self.start_level + (self.end_level - self.start_level) * fraction
        return np.full(regions, level)


@dataclass(frozen=True)
class CompositeLoad(LoadCurve):
    """Pointwise product of several curves (e.g. diurnal × flash crowd)."""

    curves: Tuple[LoadCurve, ...]

    def __post_init__(self) -> None:
        if not self.curves:
            raise WorkloadError("composite load needs at least one curve")

    def multipliers(self, t_seconds: float, regions: int) -> np.ndarray:
        out = np.ones(regions)
        for curve in self.curves:
            out = out * curve.multipliers(t_seconds, regions)
        return out


# ---------------------------------------------------------------------------
# Fleet events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetEvent:
    """Something that happens to the fleet at the start of one epoch."""

    at_epoch: int

    def __post_init__(self) -> None:
        if self.at_epoch < 0:
            raise WorkloadError("events must be scheduled at epoch >= 0")

    def describe(self) -> str:
        """Short label recorded on the epoch the event fired."""
        raise NotImplementedError


@dataclass(frozen=True)
class SiteFailure(FleetEvent):
    """A site goes dark; the ring withdraws its points and clients move."""

    site: str = ""

    def describe(self) -> str:
        return f"fail {self.site}"


@dataclass(frozen=True)
class SiteRecovery(FleetEvent):
    """A failed site returns and reclaims exactly its old ring points."""

    site: str = ""

    def describe(self) -> str:
        return f"recover {self.site}"


@dataclass(frozen=True)
class CapacityDegradation(FleetEvent):
    """A site's CPU and uplink budgets shrink to ``factor`` of nominal.

    The site stays in the ring (clients do not move); ``until_epoch`` ends
    the degradation, ``None`` leaves it in place for the rest of the run.
    """

    site: str = ""
    factor: float = 0.5
    until_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.factor <= 1:
            raise WorkloadError("degradation factor must be in [0, 1]")
        if self.until_epoch is not None and self.until_epoch <= self.at_epoch:
            raise WorkloadError("degradation must end after it starts")

    def describe(self) -> str:
        return f"degrade {self.site} x{self.factor:g}"


@dataclass(frozen=True)
class DiscriminationToggle(FleetEvent):
    """An access region's ISP starts throttling classes to ``factor``.

    This is the fluid-model form of the paper's discriminatory ISP: traffic
    of the named classes originating in ``region`` is served at ``factor``
    of its demand from this epoch on (``until_epoch`` repeals the policy).
    ``class_names=None`` throttles every class.
    """

    region: int = 0
    factor: float = 0.5
    class_names: Optional[Tuple[str, ...]] = None
    until_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.region < 0:
            raise WorkloadError("discrimination region must be a valid index")
        if not 0 <= self.factor <= 1:
            raise WorkloadError("discrimination factor must be in [0, 1]")
        if self.until_epoch is not None and self.until_epoch <= self.at_epoch:
            raise WorkloadError("policy must be repealed after it starts")

    def describe(self) -> str:
        classes = ",".join(self.class_names) if self.class_names else "all"
        return f"discriminate r{self.region} {classes} x{self.factor:g}"


@dataclass(frozen=True)
class ReconfigEvent(FleetEvent):
    """A committed operator transaction, applied atomically at an epoch.

    The typed form of a :class:`repro.scale.config.ConfigTransaction`
    commit: swap the autoscaler's policy and/or bounds, activate/drain
    sites (region add/drain), and retune the adversary's adoption model —
    all at the top of one epoch, before the controller and the game tick.
    Feasibility is re-checked at the boundary *before* anything mutates
    (a drain set that would empty the ring rejects the whole event), so
    the event applies entirely or not at all.
    """

    policy: Optional[AutoscalePolicy] = None
    min_sites: Optional[int] = None
    max_sites: Optional[int] = None
    activate_sites: Tuple[str, ...] = ()
    drain_sites: Tuple[str, ...] = ()
    adoption: Optional[AdoptionModel] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        overlap = set(self.activate_sites) & set(self.drain_sites)
        if overlap:
            raise WorkloadError(
                f"reconfig both activates and drains {sorted(overlap)}"
            )

    def describe(self) -> str:
        parts: List[str] = []
        if self.policy is not None:
            parts.append(f"policy={type(self.policy).__name__}")
        if self.min_sites is not None:
            parts.append(f"min_sites={self.min_sites}")
        if self.max_sites is not None:
            parts.append(f"max_sites={self.max_sites}")
        parts += [f"+{name}" for name in self.activate_sites]
        parts += [f"-{name}" for name in self.drain_sites]
        if self.adoption is not None:
            parts.append(f"adoption.sensitivity={self.adoption.sensitivity:g}")
        return "reconfig " + ",".join(parts) if parts else "reconfig noop"


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EpochRecord:
    """One solved epoch of a timeline."""

    epoch: int
    t_seconds: float
    #: Labels of the events that fired entering this epoch.
    events: Tuple[str, ...]
    #: Population-weighted mean demand multiplier in effect.
    demand_multiplier: float
    demand_bps: float
    goodput_bps: float
    goodput_bps_by_class: Dict[str, float]
    delivered_fraction: float
    peak_cpu_utilization: float
    peak_uplink_utilization: float
    key_setup_pps: float
    #: Clients whose site changed entering this epoch (ring remap churn).
    clients_remapped: int
    #: Hash-space fraction the ring diff says changed owner (0 if no change).
    ring_moved_fraction: float
    warm_started: bool
    solver_iterations: int
    solve_seconds: float
    #: Sites serving this epoch (healthy AND active).
    sites_in_service: int = 0
    #: Sites committed by the autoscaler but still warming up.
    sites_warming: int = 0
    #: Labels of the autoscaler's actions entering this epoch.
    autoscale_actions: Tuple[str, ...] = ()
    #: Dollars this epoch cost (committed capacity + remap churn).
    provision_cost: float = 0.0
    #: Client-weighted path-delay percentiles (seconds); 0.0 when the
    #: timeline runs without a latency model.  With an adversary game they
    #: are the *experienced* delays — flagged clients include the access
    #: ISP's policer queue, matching the game's own harm accounting.
    latency_p50_seconds: float = 0.0
    latency_p95_seconds: float = 0.0
    latency_p99_seconds: float = 0.0
    #: Fraction of clients whose path delay exceeded the latency SLO.
    latency_slo_violations: float = 0.0
    #: Offered (pre-throttle) bits/s per demand class this epoch.
    demand_bps_by_class: Dict[str, float] = field(default_factory=dict)
    #: Share of offered traffic the adversary's ISP flagged and throttled
    #: (0.0 when the timeline runs without an adversary game).
    discriminated_share: float = 0.0
    #: Client-weighted neutralizer-adoption fraction in effect this epoch.
    adoption_fraction: float = 0.0
    #: New adopters who re-keyed through the hash ring entering this epoch.
    clients_rekeyed: int = 0
    #: Labels of the adversary game's moves entering this epoch.
    adversary_events: Tuple[str, ...] = ()
    #: Per-class P95 path delay (seconds) split by neutralized vs exposed
    #: clients (empty unless both an adversary and a latency model run).
    neutralized_latency_p95: Dict[str, float] = field(default_factory=dict)
    exposed_latency_p95: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class TimelineResult:
    """A fully solved timeline: per-epoch records plus per-site matrices."""

    n_clients: int
    epoch_seconds: float
    site_names: Tuple[str, ...]
    class_names: Tuple[str, ...]
    records: Tuple[EpochRecord, ...]
    #: ``[epoch, site]`` matrices.
    cpu_utilization: np.ndarray
    uplink_utilization: np.ndarray
    clients_per_site: np.ndarray
    wall_seconds: float

    @property
    def epochs(self) -> int:
        """Number of solved epochs."""
        return len(self.records)

    @property
    def payload_nbytes(self) -> int:
        """Bytes held by the result's per-epoch matrices.

        Campaign units ship one of these back from each worker process;
        this is the dominant term of that pickled payload, so it is the
        number to watch when a long timeline makes parallel campaign
        results expensive to return (see docs/parallel.md).
        """
        return int(self.cpu_utilization.nbytes
                   + self.uplink_utilization.nbytes
                   + self.clients_per_site.nbytes)

    @property
    def goodput_bps(self) -> np.ndarray:
        """Delivered bits/s per epoch."""
        return np.array([record.goodput_bps for record in self.records])

    @property
    def demand_bps(self) -> np.ndarray:
        """Offered bits/s per epoch."""
        return np.array([record.demand_bps for record in self.records])

    @property
    def delivered_fraction(self) -> np.ndarray:
        """Goodput/demand ratio per epoch."""
        return np.array([record.delivered_fraction for record in self.records])

    @property
    def min_delivered_fraction(self) -> float:
        """The worst epoch's delivered fraction (the headline of an outage)."""
        return float(self.delivered_fraction.min())

    @property
    def mean_delivered_fraction(self) -> float:
        """Average delivered fraction across epochs."""
        return float(self.delivered_fraction.mean())

    @property
    def total_clients_remapped(self) -> int:
        """Total remap churn over the run (client·moves)."""
        return int(sum(record.clients_remapped for record in self.records))

    @property
    def peak_remap_epoch(self) -> Optional[int]:
        """Epoch with the most churn, or ``None`` if nothing ever moved."""
        churn = [record.clients_remapped for record in self.records]
        if not churn or max(churn) == 0:
            return None
        return int(np.argmax(churn))

    @property
    def warm_fraction(self) -> float:
        """Fraction of epochs solved by reusing the previous allocation."""
        if not self.records:
            return 0.0
        return sum(record.warm_started for record in self.records) / len(self.records)

    @property
    def fast_fraction(self) -> float:
        """Fraction of epochs that skipped the fill entirely (iterations 0).

        Covers both fast paths: the demand certificate (uncongested epochs,
        available in warm and cold modes alike) and warm-start reuse.
        """
        if not self.records:
            return 0.0
        return (sum(record.solver_iterations == 0 for record in self.records)
                / len(self.records))

    @property
    def solve_seconds_total(self) -> float:
        """Cumulative time spent inside the max-min solver."""
        return float(sum(record.solve_seconds for record in self.records))

    @property
    def sites_in_service(self) -> np.ndarray:
        """Serving-site count per epoch (constant unless autoscaled)."""
        return np.array([record.sites_in_service for record in self.records])

    @property
    def total_provision_cost(self) -> float:
        """Dollars the whole run cost (committed capacity plus churn)."""
        return float(sum(record.provision_cost for record in self.records))

    @property
    def total_autoscale_actions(self) -> int:
        """Controller actions over the run (scale-ups, drains, cancels)."""
        return sum(len(record.autoscale_actions) for record in self.records)

    def slo_attainment(self, threshold: float = 0.95) -> float:
        """Fraction of epochs whose delivered fraction met ``threshold``."""
        if not self.records:
            return 1.0
        met = (self.delivered_fraction >= threshold).sum()
        return float(met) / len(self.records)

    @property
    def has_latency(self) -> bool:
        """Whether the timeline ran with a latency model attached."""
        return any(record.latency_p95_seconds > 0 for record in self.records)

    @property
    def latency_p95_seconds(self) -> np.ndarray:
        """Per-epoch client-weighted P95 path delay (zeros without a model)."""
        return np.array([record.latency_p95_seconds for record in self.records])

    @property
    def worst_latency_p95_seconds(self) -> float:
        """The worst epoch's P95 path delay — the headline of a latency SLO."""
        if not self.records:
            return 0.0
        return float(self.latency_p95_seconds.max())

    @property
    def mean_latency_slo_violations(self) -> float:
        """Mean over epochs of the client fraction violating the latency SLO."""
        if not self.records:
            return 0.0
        return float(np.mean([record.latency_slo_violations
                              for record in self.records]))

    def latency_slo_attainment(self, max_violations: float = 0.05) -> float:
        """Fraction of epochs keeping SLO violations at or under the budget.

        An epoch passes when at most ``max_violations`` of clients exceeded
        the timeline's ``latency_slo_seconds`` — the latency twin of
        :meth:`slo_attainment`.
        """
        if not self.records:
            return 1.0
        met = sum(record.latency_slo_violations <= max_violations
                  for record in self.records)
        return float(met) / len(self.records)

    @property
    def has_adversary(self) -> bool:
        """Whether an adversary game left any trace on this timeline."""
        return any(record.discriminated_share > 0 or record.adoption_fraction > 0
                   or record.adversary_events for record in self.records)

    @property
    def adoption_fraction(self) -> np.ndarray:
        """Per-epoch client-weighted neutralizer-adoption fraction."""
        return np.array([record.adoption_fraction for record in self.records])

    @property
    def discriminated_share(self) -> np.ndarray:
        """Per-epoch share of offered traffic flagged and throttled."""
        return np.array([record.discriminated_share for record in self.records])

    @property
    def final_adoption_fraction(self) -> float:
        """The last epoch's adoption fraction (the game's resting point)."""
        if not self.records:
            return 0.0
        return self.records[-1].adoption_fraction

    @property
    def total_clients_rekeyed(self) -> int:
        """Total adopter re-key churn over the run (client·setups)."""
        return int(sum(record.clients_rekeyed for record in self.records))

    def class_delivered_fraction(self, class_names: Sequence[str]) -> np.ndarray:
        """Per-epoch goodput/offered ratio summed over the named classes.

        The harm ledger of the discrimination story: the throttled classes'
        delivered fraction against their *offered* (pre-throttle) demand.
        """
        unknown = set(class_names) - set(self.class_names)
        if unknown:
            raise WorkloadError(f"unknown demand classes {sorted(unknown)}")
        out = np.empty(len(self.records))
        for index, record in enumerate(self.records):
            offered = sum(record.demand_bps_by_class.get(name, 0.0)
                          for name in class_names)
            served = sum(record.goodput_bps_by_class.get(name, 0.0)
                         for name in class_names)
            out[index] = served / offered if offered > 0 else 1.0
        return out

    def series(self) -> Dict[str, List[float]]:
        """Per-epoch columns for :func:`repro.analysis.report.format_series`."""
        out: Dict[str, List[float]] = {
            "demand Mb/s": [record.demand_bps / 1e6 for record in self.records],
            "goodput Mb/s": [record.goodput_bps / 1e6 for record in self.records],
            "delivered": [record.delivered_fraction for record in self.records],
            "peak cpu": [record.peak_cpu_utilization for record in self.records],
            "sites": [float(record.sites_in_service) for record in self.records],
            "remapped": [float(record.clients_remapped) for record in self.records],
        }
        if self.has_latency:
            out["p95 ms"] = [record.latency_p95_seconds * 1e3
                             for record in self.records]
            out["slo viol"] = [record.latency_slo_violations
                               for record in self.records]
        if self.has_adversary:
            out["adoption"] = [record.adoption_fraction
                               for record in self.records]
            out["discr share"] = [record.discriminated_share
                                  for record in self.records]
        return out


# ---------------------------------------------------------------------------
# The timeline engine
# ---------------------------------------------------------------------------


class FluidTimeline:
    """Advance a population×fleet scenario through epochs of load and events."""

    def __init__(
        self,
        population: ClientPopulation,
        fleet: NeutralizerFleet,
        *,
        epochs: int,
        epoch_seconds: float = 3600.0,
        load: Optional[LoadCurve] = None,
        events: Sequence[FleetEvent] = (),
        region_uplink_bps: Optional[float] = None,
        warm_start: bool = True,
        autoscaler: Optional[Autoscaler] = None,
        provisioning_cost: Optional[ProvisioningCostModel] = None,
        latency: Optional[LatencyModel] = None,
        latency_slo_seconds: float = 0.1,
        adversary: Optional[AdversaryGame] = None,
        scenario: Optional[ScaleScenario] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if epochs <= 0:
            raise WorkloadError("a timeline needs at least one epoch")
        if epoch_seconds <= 0:
            raise WorkloadError("epoch length must be positive")
        if latency_slo_seconds <= 0:
            raise WorkloadError("the latency SLO must be positive")
        self.population = population
        self.fleet = fleet
        self.epochs = int(epochs)
        self.epoch_seconds = float(epoch_seconds)
        self.load = load if load is not None else ConstantLoad()
        self.events = tuple(sorted(events, key=lambda event: event.at_epoch))
        #: The per-epoch problems come from this scenario's cached template,
        #: which also supplies the region-uplink default and validation.
        #: Passing a pre-built ``scenario`` shares its cached template
        #: across timelines (Monte-Carlo campaigns reuse one population x
        #: fleet structure over many replicas); after a previous run
        #: restored the fleet, the stale template rebuilds incrementally
        #: over zero moved clients instead of paying the O(n_clients) pass.
        if scenario is not None:
            if scenario.population is not population or scenario.fleet is not fleet:
                raise WorkloadError(
                    "a shared scenario must wrap this timeline's population and fleet"
                )
            if (region_uplink_bps is not None
                    and scenario.region_uplink_bps != region_uplink_bps):
                raise WorkloadError(
                    "a shared scenario disagrees with region_uplink_bps"
                )
            self._scenario = scenario
        else:
            self._scenario = ScaleScenario(
                population, fleet, region_uplink_bps=region_uplink_bps
            )
        self.region_uplink_bps = self._scenario.region_uplink_bps
        self.warm_start = warm_start
        #: Closed-loop controller configuration; per-run state is created
        #: fresh inside every run() so timelines stay re-runnable.
        self.autoscaler = autoscaler
        self.provisioning_cost = provisioning_cost or ProvisioningCostModel()
        #: Optional utilization → queueing-delay proxy; when present every
        #: epoch records client-weighted latency percentiles and the
        #: fraction of clients violating ``latency_slo_seconds``.
        self.latency = latency
        self.latency_slo_seconds = float(latency_slo_seconds)
        #: Optional ISP-vs-adoption game configuration; per-run state is
        #: created fresh inside every run(), like the autoscaler's.
        self.adversary = adversary
        if adversary is not None:
            adversary.validate_against(population)
        #: Observes, never participates: spans and work counters only.
        #: Mutable so a caller (catalogue, campaign runner) can attach a
        #: collecting telemetry after construction without re-building.
        self.telemetry: Telemetry = telemetry if telemetry is not None else NULL
        #: The declarative document this timeline was built from, when it
        #: came through :meth:`repro.scale.config.ScenarioConfig.build` —
        #: what :class:`repro.scale.config.ConfigTransaction` diffs against.
        self.config = None
        self._validate_events()

    def _validate_events(self) -> None:
        names = {site.name for site in self.fleet.sites}
        for event in self.events:
            if event.at_epoch >= self.epochs:
                raise WorkloadError(
                    f"event {event.describe()!r} at epoch {event.at_epoch} is "
                    f"beyond the {self.epochs}-epoch horizon"
                )
            site = getattr(event, "site", None)
            if site is not None and site not in names:
                raise WorkloadError(f"event names unknown site {site!r}")
            region = getattr(event, "region", None)
            if region is not None and region >= self.population.regions:
                raise WorkloadError(
                    f"event names region {region}, population has "
                    f"{self.population.regions}"
                )
            class_names = getattr(event, "class_names", None)
            if class_names:
                known = set(self.population.mix.names)
                unknown = set(class_names) - known
                if unknown:
                    raise WorkloadError(f"event names unknown classes {sorted(unknown)}")
            for name in (*getattr(event, "activate_sites", ()),
                         *getattr(event, "drain_sites", ())):
                if name not in names:
                    raise WorkloadError(f"event names unknown site {name!r}")

    # -- live event scheduling -------------------------------------------------------

    def schedule_event(self, event: FleetEvent) -> None:
        """Add one event to the timeline, keeping the schedule validated.

        Insertion is stable: among events of the same epoch the new one
        fires last, so committing the same transaction after a rollback
        always converges on the same schedule.  A rejected event leaves the
        schedule exactly as it was.
        """
        previous = self.events
        self.events = tuple(sorted((*self.events, event),
                                   key=lambda item: item.at_epoch))
        try:
            self._validate_events()
        except WorkloadError:
            self.events = previous
            raise

    def unschedule_event(self, event: FleetEvent) -> None:
        """Remove one previously scheduled event (identity match)."""
        kept: List[FleetEvent] = []
        removed = False
        for item in self.events:
            if item is event and not removed:
                removed = True
                continue
            kept.append(item)
        if not removed:
            raise WorkloadError("event is not scheduled on this timeline")
        self.events = tuple(kept)

    # -- stepping --------------------------------------------------------------------

    def _apply_reconfig(self, event: ReconfigEvent,
                        autoscale: Optional[AutoscaleRun],
                        adversary: Optional[AdversaryRun],
                        snapshot_ring) -> None:
        """Apply one committed transaction atomically at the epoch boundary.

        Every feasibility check runs before the first mutation, so a
        rejected reconfiguration raises with the fleet, the controller and
        the game exactly as they were.
        """
        fleet = self.fleet
        if (event.policy is not None or event.min_sites is not None
                or event.max_sites is not None) and autoscale is None:
            raise WorkloadError(
                "reconfig retunes an autoscaler this timeline does not run"
            )
        if event.adoption is not None and adversary is None:
            raise WorkloadError(
                "reconfig retunes an adversary game this timeline does not run"
            )
        will_be_active = {site.name: site.active for site in fleet.sites}
        for name in event.activate_sites:
            will_be_active[name] = True
        for name in event.drain_sites:
            will_be_active[name] = False
        if not any(will_be_active[site.name] and site.healthy
                   for site in fleet.sites):
            raise WorkloadError(
                f"reconfig at epoch {event.at_epoch} would leave no site "
                f"in service"
            )
        # Activations before drains, so the ring never empties transiently.
        for name in event.activate_sites:
            site = fleet.site(name)
            if not site.active:
                if site.healthy:
                    snapshot_ring()
                fleet.activate_site(name)
            if autoscale is not None:
                autoscale.note_external_activation(name)
        for name in event.drain_sites:
            site = fleet.site(name)
            if autoscale is not None:
                autoscale.note_external_drain(name)
            if site.active:
                if site.in_service:
                    snapshot_ring()
                fleet.drain_site(name)
        if autoscale is not None:
            autoscale.reconfigure(policy=event.policy,
                                  min_sites=event.min_sites,
                                  max_sites=event.max_sites)
        if event.adoption is not None and adversary is not None:
            adversary.retune(event.adoption)

    def _fire(self, event: FleetEvent, throttles: List[DiscriminationToggle],
              degradations: List[CapacityDegradation]) -> bool:
        """Apply one event; returns whether the hash ring changed."""
        if isinstance(event, SiteFailure):
            self.fleet.fail_site(event.site)
            return True
        if isinstance(event, SiteRecovery):
            self.fleet.restore_site(event.site)
            return True
        if isinstance(event, CapacityDegradation):
            degradations.append(event)
            return False
        if isinstance(event, DiscriminationToggle):
            throttles.append(event)
            return False
        raise WorkloadError(f"unknown fleet event {event!r}")

    def _demand_scale(self, template: ProblemTemplate, epoch: int, t: float,
                      throttles: Sequence[DiscriminationToggle],
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-flow (offered, served) demand multipliers for this epoch.

        The load curve scales what clients *offer*; discrimination throttles
        further cap what the access ISP lets through.  Delivered fraction is
        judged against the offered demand, so a rollout shows up as harm
        rather than as demand conveniently disappearing.
        """
        regional = self.load.multipliers(t, self.population.regions)
        if regional.shape != (self.population.regions,):
            raise WorkloadError("load curve returned the wrong number of regions")
        if np.any(regional < 0):
            raise WorkloadError("load curve returned a negative multiplier")
        offered = regional[template.region_of].astype(np.float64)
        served = offered.copy()
        for toggle in throttles:
            if toggle.until_epoch is not None and epoch >= toggle.until_epoch:
                continue
            hit = template.region_of == toggle.region
            if toggle.class_names is not None:
                class_ids = [self.population.mix.names.index(name)
                             for name in toggle.class_names]
                hit &= np.isin(template.class_of, class_ids)
            served[hit] *= toggle.factor
        return offered, served

    def _capacity_scale(self, epoch: int,
                        degradations: Sequence[CapacityDegradation]) -> Optional[np.ndarray]:
        if not degradations:
            return None
        scale = np.ones(self.fleet.n_sites)
        for event in degradations:
            if event.until_epoch is not None and epoch >= event.until_epoch:
                continue
            index = self.fleet.index_of_site(event.site)
            scale[index] = min(scale[index], event.factor)
        if (scale == 1.0).all():
            return None
        return scale

    def _forecast(self, t_now: float, region_demand: Optional[np.ndarray]):
        """A demand forecast for predictive autoscaling policies.

        Returns offered demand ``lead`` epochs ahead relative to nominal,
        weighted by each region's share of base demand — exactly the
        ``demand_multiplier`` the future epoch will record, assuming no
        discrimination throttles (a forecaster sees load, not policy).
        """
        def forecast(lead: int) -> float:
            future = self.load.multipliers(
                t_now + lead * self.epoch_seconds, self.population.regions
            )
            if region_demand is None or region_demand.sum() <= 0:
                return float(future.mean())
            return float((future * region_demand).sum() / region_demand.sum())
        return forecast

    def run(self) -> TimelineResult:
        """Solve every epoch and assemble the result.

        The fleet's health is restored to its pre-run state afterwards, so a
        timeline whose events leave sites failed can be re-run (or its fleet
        reused) without silently simulating an already-degraded fleet.
        """
        initial_health = self.fleet.health_snapshot()
        try:
            return self._run()
        finally:
            self.fleet.restore_health(initial_health)

    def _run(self) -> TimelineResult:
        telemetry = self.telemetry
        elog = telemetry.events
        if elog is not None:
            elog.emit(
                "timeline_started",
                epochs=self.epochs,
                clients=self.population.n_clients,
                sites=[site.name for site in self.fleet.sites],
                epoch_seconds=float(self.epoch_seconds),
                latency_slo_seconds=float(self.latency_slo_seconds),
            )
        run_span = telemetry.span(
            "timeline", epochs=self.epochs, clients=self.population.n_clients
        )
        with run_span:
            records, cpu_util, uplink_util, clients_matrix = self._run_epochs(
                telemetry
            )
        if elog is not None:
            elog.emit(
                "timeline_complete",
                epochs=len(records),
                delivered_fraction_mean=(
                    float(sum(r.delivered_fraction for r in records)
                          / len(records)) if records else 1.0),
                delivered_fraction_min=(
                    min(float(r.delivered_fraction) for r in records)
                    if records else 1.0),
                latency_slo_violations_max=(
                    max(float(r.latency_slo_violations) for r in records)
                    if records else 0.0),
            )
        return TimelineResult(
            n_clients=self.population.n_clients,
            epoch_seconds=self.epoch_seconds,
            site_names=tuple(site.name for site in self.fleet.sites),
            class_names=tuple(self.population.mix.names),
            records=tuple(records),
            cpu_utilization=cpu_util,
            uplink_utilization=uplink_util,
            clients_per_site=clients_matrix,
            wall_seconds=run_span.seconds,
        )

    def _run_epochs(
        self, telemetry: Telemetry,
    ) -> Tuple[List[EpochRecord], np.ndarray, np.ndarray, np.ndarray]:
        population = self.population
        fleet = self.fleet
        sites = fleet.n_sites
        elog = telemetry.events

        throttles: List[DiscriminationToggle] = []
        degradations: List[CapacityDegradation] = []
        pending = list(self.events)
        autoscale = (AutoscaleRun(self.autoscaler, fleet, telemetry=telemetry)
                     if self.autoscaler is not None else None)
        adversary = (AdversaryRun(self.adversary, population,
                                  latency=self.latency,
                                  latency_slo_seconds=self.latency_slo_seconds,
                                  telemetry=telemetry)
                     if self.adversary is not None else None)

        template: Optional[ProblemTemplate] = None
        previous_rates: Optional[np.ndarray] = None
        #: Congestion prices of the previous elastic solve.  Prices are
        #: per-resource, and the resource list (regions + site uplinks +
        #: site CPUs, indices stable across failures) never changes shape,
        #: so unlike the rates they survive template rebuilds.
        previous_prices: Optional[np.ndarray] = None
        base_demand_bps: Optional[float] = None
        #: Demand-weighted per-region weights for the autoscaler's forecast.
        region_demand: Optional[np.ndarray] = None
        last_metrics: Optional[EpochMetrics] = None
        #: The previous epoch's full solved state: an epoch with the same
        #: template, demand scaling and capacity scaling (steady load, no
        #: events) is the *same problem*, so the instantiated problem, the
        #: allocation, the interpreted fluid result and the latency metrics
        #: are all reused outright — the steady-state epoch costs two small
        #: array comparisons, independent of anything else.
        previous_template = None
        previous_served_scale: Optional[np.ndarray] = None
        previous_capacity_scale: Optional[np.ndarray] = None
        previous_extra_setups: Optional[np.ndarray] = None
        previous_epoch_problem = None
        previous_allocation = None
        previous_fluid = None
        previous_latency = (0.0, 0.0, 0.0, 0.0)
        previous_latency_result = None
        previous_split: Tuple[Dict[str, float], Dict[str, float]] = ({}, {})
        previous_experienced = (0.0, 0.0, 0.0, 0.0)
        #: Committed-capacity sums, cached while fleet state is unchanged.
        committed_key = None
        committed_totals = (0.0, 0.0, 0, 0.0, 0.0, 0)

        records: List[EpochRecord] = []
        cpu_util = np.zeros((self.epochs, sites))
        uplink_util = np.zeros((self.epochs, sites))
        clients_matrix = np.zeros((self.epochs, sites), dtype=np.int64)

        for epoch in range(self.epochs):
            with telemetry.span("epoch", epoch=epoch):
                t = epoch * self.epoch_seconds

                # The pre-change ring is snapshotted lazily: only epochs where
                # an event or autoscale action actually touches the ring pays
                # for it (and the array form is zero-copy — rebuilds allocate
                # anew).
                ring_before: List = []

                def snapshot_ring() -> None:
                    if not ring_before:
                        ring_before.append(fleet.ring_state())

                # Expired windows can never re-activate; pruning them keeps
                # the per-epoch scans bounded by *live* windows even on long
                # runs with frequent attack onsets.
                if throttles:
                    throttles[:] = [toggle for toggle in throttles
                                    if toggle.until_epoch is None
                                    or epoch < toggle.until_epoch]
                if degradations:
                    degradations[:] = [event for event in degradations
                                       if event.until_epoch is None
                                       or epoch < event.until_epoch]

                fired: List[str] = []
                while pending and pending[0].at_epoch == epoch:
                    event = pending.pop(0)
                    if isinstance(event, ReconfigEvent):
                        self._apply_reconfig(event, autoscale, adversary,
                                             snapshot_ring)
                        fired.append(event.describe())
                        if elog is not None:
                            elog.emit("reconfig", epoch=epoch,
                                      description=fired[-1])
                        continue
                    if isinstance(event, (SiteFailure, SiteRecovery)):
                        snapshot_ring()
                    self._fire(event, throttles, degradations)
                    fired.append(event.describe())
                    if elog is not None:
                        elog.emit("fleet_event", epoch=epoch,
                                  description=fired[-1])

                actions: Tuple[str, ...] = ()
                if autoscale is not None:
                    with telemetry.span("autoscale_step"):
                        actions = tuple(autoscale.step(
                            epoch, last_metrics,
                            self._forecast(t, region_demand),
                            snapshot_ring,
                        ))
                    if elog is not None and actions:
                        elog.emit("autoscale", epoch=epoch,
                                  actions=list(actions))

                ring_moved = 0.0
                if ring_before:
                    ring_moved = NeutralizerFleet.ring_moved_fraction(
                        ring_before[0], fleet.ring_state()
                    )

                with telemetry.span("ring_remap"):
                    new_template = self._scenario.build_template()
                remapped = 0
                if new_template is not template:
                    previous_rates = None  # flow structure changed; rates misaligned
                    if template is not None:
                        remapped = new_template.remapped_from_parent
                template = new_template
                telemetry.inc("timeline.clients_remapped", remapped)
                if base_demand_bps is None:
                    per_flow_bps = template.base_demands * template.group_clients
                    base_demand_bps = float(per_flow_bps.sum())
                    region_demand = np.bincount(
                        template.region_of, weights=per_flow_bps,
                        minlength=population.regions,
                    )

                offered_scale, served_scale = self._demand_scale(
                    template, epoch, t, throttles
                )
                capacity_scale = self._capacity_scale(epoch, degradations)

                adversary_epoch = None
                extra_setups: Optional[np.ndarray] = None
                if adversary is not None:
                    with telemetry.span("adversary_step"):
                        adversary_epoch = adversary.step(
                            epoch, template, offered_scale, self.epoch_seconds
                        )
                    served_scale = served_scale * adversary_epoch.served_multiplier
                    extra_setups = adversary_epoch.extra_setups_per_flow
                    if elog is not None and adversary_epoch.events:
                        elog.emit("adversary", epoch=epoch,
                                  events=list(adversary_epoch.events))

                offered_flow_bps = (template.base_demands * offered_scale
                                    * template.group_clients)
                offered_bps = float(offered_flow_bps.sum())
                offered_by_class = np.bincount(
                    template.class_of, weights=offered_flow_bps,
                    minlength=population.n_classes,
                )
                demand_bps_by_class = {
                    name: float(offered_by_class[index])
                    for index, name in enumerate(population.mix.names)
                }

                scales_unchanged = (
                    self.warm_start
                    and previous_epoch_problem is not None
                    and template is previous_template
                    and np.array_equal(served_scale, previous_served_scale)
                    and _optional_arrays_equal(capacity_scale,
                                               previous_capacity_scale)
                    and _optional_arrays_equal(extra_setups,
                                               previous_extra_setups)
                )
                if scales_unchanged:
                    # Bit-identical problem (steady load, same fleet state):
                    # the previous answer IS the answer — reuse the
                    # instantiated problem, the allocation, the fluid
                    # interpretation and the latency metrics without
                    # rebuilding any of them.
                    reuse_span = telemetry.span("solve", reused=True)
                    with reuse_span:
                        epoch_problem = previous_epoch_problem
                        allocation = Allocation(
                            rates=previous_allocation.rates,
                            bottleneck=previous_allocation.bottleneck,
                            iterations=0,
                            warm_started=True,
                            prices=previous_allocation.prices,
                        )
                        fluid = previous_fluid
                        latency_result = previous_latency_result
                        (latency_p50, latency_p95, latency_p99,
                         latency_violations) = previous_latency
                    solve_seconds = reuse_span.seconds
                    telemetry.inc("timeline.epochs_reused")
                else:
                    instantiate_span = telemetry.span("template_instantiate")
                    with instantiate_span:
                        epoch_problem = template.instantiate(
                            served_scale, capacity_scale, extra_setups
                        )
                    solve_span = telemetry.span("solve")
                    with solve_span:
                        allocation = solve_allocation(
                            epoch_problem.problem,
                            warm_start=(previous_rates if self.warm_start
                                        else None),
                            warm_prices=(previous_prices if self.warm_start
                                         else None),
                            telemetry=telemetry,
                        )
                        fluid = template.interpret(epoch_problem, allocation)
                    latency_result = None
                    latency_p50 = latency_p95 = latency_p99 = 0.0
                    latency_violations = 0.0
                    latency_seconds = 0.0
                    if self.latency is not None:
                        latency_span = telemetry.span("latency_proxy")
                        with latency_span:
                            latency_result = evaluate_latency(
                                template, epoch_problem, allocation,
                                self.latency
                            )
                            latency_p50, latency_p95, latency_p99 = (
                                latency_result.percentiles((0.50, 0.95, 0.99))
                            )
                            latency_violations = (
                                latency_result.slo_violation_fraction(
                                    self.latency_slo_seconds
                                )
                            )
                        latency_seconds = latency_span.seconds
                    solve_seconds = (instantiate_span.seconds
                                     + solve_span.seconds + latency_seconds)
                    telemetry.observe("timeline.solver_iterations",
                                      allocation.iterations)
                telemetry.inc("timeline.epochs")
                previous_rates = allocation.rates
                previous_prices = allocation.prices
                previous_template = template
                previous_served_scale = served_scale
                previous_capacity_scale = capacity_scale
                previous_extra_setups = extra_setups
                previous_epoch_problem = epoch_problem
                previous_allocation = allocation
                previous_fluid = fluid
                previous_latency_result = latency_result
                previous_latency = (latency_p50, latency_p95, latency_p99,
                                    latency_violations)

                neutralized_p95: Dict[str, float] = {}
                exposed_p95: Dict[str, float] = {}
                #: What the epoch record quotes.  Without an adversary this
                #: is the fleet-path proxy; with one it is the
                #: client-experienced mixture including the policer delay of
                #: flagged traffic, so the headline fields agree with the
                #: game's own harm ledger.  The autoscaler's control signal
                #: stays the fleet-path P95 — capacity cannot buy back a
                #: policer queue.
                recorded_latency = (latency_p50, latency_p95, latency_p99,
                                    latency_violations)
                if adversary is not None:
                    adversary.observe(template, allocation,
                                      epoch_problem.problem, latency_result)
                    if latency_result is not None:
                        # A bit-identical epoch with no game moves has the
                        # same split; only a fresh solve or an
                        # adoption/strategy move can change it.
                        if scales_unchanged and not adversary_epoch.events:
                            neutralized_p95, exposed_p95 = previous_split
                            recorded_latency = previous_experienced
                        else:
                            neutralized_p95, exposed_p95 = split_latency_by_class(
                                template, latency_result, adversary_epoch
                            )
                            recorded_latency = experienced_latency(
                                template, latency_result, adversary_epoch,
                                self.latency_slo_seconds,
                            )
                        previous_split = (neutralized_p95, exposed_p95)
                        previous_experienced = recorded_latency

                cpu_util[epoch] = fluid.cpu_utilization
                uplink_util[epoch] = fluid.uplink_utilization
                clients_matrix[epoch] = fluid.clients_per_site

                in_service = fleet.in_service_mask()
                n_in_service = int(in_service.sum())
                n_warming = len(autoscale.warming) if autoscale is not None else 0
                demand_multiplier = (offered_bps / base_demand_bps
                                     if base_demand_bps else 0.0)
                delivered = (fluid.total_goodput_bps / offered_bps
                             if offered_bps > 0 else 1.0)

                site_load = np.maximum(fluid.cpu_utilization,
                                       fluid.uplink_utilization)
                serving_load = site_load[in_service]
                last_metrics = EpochMetrics(
                    served_sites=n_in_service,
                    mean_utilization=(float(serving_load.mean())
                                      if n_in_service else 0.0),
                    peak_utilization=(float(serving_load.max())
                                      if n_in_service else 0.0),
                    delivered_fraction=delivered,
                    demand_multiplier=demand_multiplier,
                    latency_p95_seconds=latency_p95,
                    adoption_fraction=(adversary_epoch.adoption_fraction
                                       if adversary_epoch is not None else 0.0),
                )

                # Billing covers every *commissioned* site — active (even
                # while failed: a box being down does not stop its bill) plus
                # warming ones — unlike the controller's capacity view, which
                # counts only sites actually serving.
                warming_names = (tuple(autoscale.warming)
                                 if autoscale is not None else ())
                epoch_key = (fleet.active_version, warming_names)
                if epoch_key != committed_key:
                    committed_sites = [site for site in fleet.sites
                                       if site.active]
                    committed_sites += [fleet.site(name)
                                        for name in warming_names]
                    reserved = [site for site in committed_sites
                                if site.tier != "spot"]
                    spot = [site for site in committed_sites
                            if site.tier == "spot"]
                    committed_totals = (
                        sum(site.cores for site in reserved),
                        sum(site.uplink_bps for site in reserved),
                        len(reserved),
                        sum(site.cores for site in spot),
                        sum(site.uplink_bps for site in spot),
                        len(spot),
                    )
                    committed_key = epoch_key
                provision_cost = self.provisioning_cost.epoch_cost(
                    cores=committed_totals[0],
                    uplink_bps=committed_totals[1],
                    sites=committed_totals[2],
                    epoch_seconds=self.epoch_seconds,
                    clients_remapped=remapped,
                    spot_cores=committed_totals[3],
                    spot_uplink_bps=committed_totals[4],
                    spot_sites=committed_totals[5],
                )

                records.append(EpochRecord(
                    epoch=epoch,
                    t_seconds=t,
                    events=tuple(fired),
                    demand_multiplier=demand_multiplier,
                    demand_bps=offered_bps,
                    goodput_bps=fluid.total_goodput_bps,
                    goodput_bps_by_class=dict(fluid.goodput_bps),
                    delivered_fraction=delivered,
                    peak_cpu_utilization=float(fluid.cpu_utilization.max()),
                    peak_uplink_utilization=float(fluid.uplink_utilization.max()),
                    key_setup_pps=fluid.key_setup_pps,
                    clients_remapped=remapped,
                    ring_moved_fraction=ring_moved,
                    warm_started=allocation.warm_started,
                    solver_iterations=allocation.iterations,
                    solve_seconds=solve_seconds,
                    sites_in_service=n_in_service,
                    sites_warming=n_warming,
                    autoscale_actions=actions,
                    provision_cost=provision_cost,
                    latency_p50_seconds=recorded_latency[0],
                    latency_p95_seconds=recorded_latency[1],
                    latency_p99_seconds=recorded_latency[2],
                    latency_slo_violations=recorded_latency[3],
                    demand_bps_by_class=demand_bps_by_class,
                    discriminated_share=(adversary_epoch.discriminated_share
                                         if adversary_epoch is not None
                                         else 0.0),
                    adoption_fraction=(adversary_epoch.adoption_fraction
                                       if adversary_epoch is not None
                                       else 0.0),
                    clients_rekeyed=(adversary_epoch.clients_rekeyed
                                     if adversary_epoch is not None else 0),
                    adversary_events=(adversary_epoch.events
                                      if adversary_epoch is not None else ()),
                    neutralized_latency_p95=neutralized_p95,
                    exposed_latency_p95=exposed_p95,
                ))

                if elog is not None:
                    # Per-site served capacity: the in-service flag times the
                    # degradation scale — the availability signal the
                    # black-hole detector runs CUSUM over.  ``site_active``
                    # masks out drained/warming sites (not commissioned to
                    # serve), so scale-downs are never mistaken for faults.
                    if capacity_scale is None:
                        site_served = [1.0 if flag else 0.0
                                       for flag in in_service]
                    else:
                        site_served = [float(scale) if flag else 0.0
                                       for flag, scale
                                       in zip(in_service, capacity_scale)]
                    elog.emit(
                        "epoch",
                        epoch=epoch,
                        delivered_fraction=float(delivered),
                        demand_multiplier=float(demand_multiplier),
                        latency_p95_seconds=float(recorded_latency[1]),
                        latency_slo_violations=float(recorded_latency[3]),
                        sites_in_service=n_in_service,
                        sites_warming=n_warming,
                        site_served=site_served,
                        site_active=[bool(site.active)
                                     for site in fleet.sites],
                    )

        return records, cpu_util, uplink_util, clients_matrix
