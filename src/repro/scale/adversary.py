"""Adaptive ISP discrimination vs. neutralizer adoption: the arms race, fluid.

The paper's core tension is a *game*: access ISPs discriminate against
traffic classes they can identify, and clients respond by deploying the
neutralizer, which makes their traffic unclassifiable — at which point the
ISP either escalates to blunter instruments (the §3.6 residual cases) or
gives up.  The catalogue's :class:`repro.scale.timeline.DiscriminationToggle`
renders only one still frame of that game (a static, hand-scheduled
throttle); this module closes the loop, the way
:mod:`repro.scale.autoscale` closed the provisioning loop:

*The ISP side* is an adaptive strategy stack
(:class:`IspStrategy` + per-run state in :class:`AdversaryRun`):

* **classifier-driven targeting** reusing the semantics of
  :mod:`repro.discrimination.policy` in fluid form: a
  :class:`ClassifierModel` confusion matrix says what fraction of *exposed*
  (non-neutralized) traffic of the targeted classes the ISP's DPI flags
  (true positives), what fraction of exposed bystander traffic it flags by
  mistake (false positives), and how much *neutralized* traffic still leaks
  through traffic analysis (packet sizes and timing survive encryption);
* **budget-constrained throttling**: policing traffic costs the ISP
  inspection capacity and support/complaint goodwill, so at most
  ``budget_fraction`` of each region's offered traffic may be flagged and
  throttled in any epoch — when the classifier flags more, coverage is
  scaled down pro rata (the conservation law the tests check);
* **escalation/backoff** reacting to *observed evasion*: when the flagged
  share of the target classes collapses (adopters disappeared from the
  classifier's view), the ISP throttles harder, and past
  ``blanket_evasion`` it goes blunt — throttling everything it cannot
  classify, i.e. all neutralized traffic, the fluid rendering of §3.6's
  "throttle encrypted traffic as a class".  When the collateral share of
  what it polices — bystander-class false positives plus every flagged
  neutralized byte, which is indiscriminate by construction — exceeds
  ``backoff_collateral``, it retreats one step.

*The client side* is a per-region adoption model (:class:`AdoptionModel`):
each epoch, every client weighs the harm it would experience exposed
(throughput shortfall plus latency-SLO violations, including the policer
queue of a throttled flow) against the harm it would experience neutralized,
and the region's adoption fraction relaxes toward a thresholded logistic in
that *harm gain* — adoption has a cost (subscription friction,
``adoption_cost``) and inertia (``adopt_rate`` / ``churn_rate`` per epoch).
New adopters re-key through the consistent-hash ring: each one performs a
fresh key setup against the site that owns its ring position, so a wave of
adoption shows up as a key-setup load spike at the fleet (the §3.2
cheap-RSA story is what keeps that survivable) and as
``clients_rekeyed`` churn in the epoch record.

Modelling frame: the fleet serves the neutral ISP's traffic whether or not a
client has adopted (the services live behind the neutral ISP either way, and
the population's wire sizes already include the shim); adoption toggles
*classifiability* of the access leg, not the traffic's existence.  Everything
is an O(flows) vectorized pass per epoch, so a million-client arms race
costs the same as a million-client diurnal day.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import WorkloadError
from .latency import LatencyModel, LatencyResult, _weighted_percentiles
from .population import ClientPopulation
from .scenario import ProblemTemplate
from .solver import Allocation
from .telemetry import NULL, Telemetry

#: Adoption steps smaller than this are clamped to zero so the game reaches
#: an exact fixed point — once it does, the epoch's scale vectors are
#: bit-identical and the timeline's steady-state reuse fast path fires.
#: 1e-4 of a region is far below anything the metrics resolve, and the
#: geometric relaxation would otherwise spend tens of epochs in a tail of
#: sub-client steps, each forcing a full re-solve.
_ADOPTION_QUANTUM = 1e-4


@dataclass(frozen=True)
class ClassifierModel:
    """Confusion model of the ISP's classifier against (non-)neutralized traffic.

    Fractions of *traffic* (equivalently, of a flow group's clients, since
    clients of a group are identical):

    ``true_positive``
        Exposed traffic of a targeted class that the DPI correctly flags.
    ``false_positive``
        Exposed traffic of a *non*-targeted class flagged by mistake — the
        collateral a blunt classifier inflicts on bystanders.
    ``neutralized_leakage``
        Neutralized traffic of *any* class still flagged via traffic
        analysis (packet sizes and timing survive the shim); the paper's
        claim is that this residual is small, and it is the knob that prices
        how much protection adoption actually buys.
    """

    true_positive: float = 0.9
    false_positive: float = 0.02
    neutralized_leakage: float = 0.05

    def __post_init__(self) -> None:
        for name in ("true_positive", "false_positive", "neutralized_leakage"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"classifier {name} must be a fraction in [0, 1]")


@dataclass(frozen=True)
class IspStrategy:
    """The discriminatory ISP's adaptive strategy configuration.

    ``aggressiveness`` in [0, 1] prices how much harm the ISP is willing to
    inflict: it opens at half its severity
    (``initial_factor = 1 - aggressiveness/2 * (1 - throttle_floor)``) and
    escalations move the served fraction down in ``escalation_step``
    decrements, but never below ``min_factor = 1 - aggressiveness *
    (1 - throttle_floor)`` — a timid ISP will not escalate into severities
    it was never prepared to impose, so aggressiveness shapes the *whole
    trajectory*, not just the opening move.  0 never throttles (the
    strategy is inert and the timeline matches a policy-free run); 1 is
    prepared to go all the way to ``throttle_floor``.
    """

    aggressiveness: float = 0.5
    target_classes: Tuple[str, ...] = ("video", "web")
    #: The most severe served fraction the ISP will ever impose.
    throttle_floor: float = 0.2
    #: Max share of a region's offered traffic it can flag+police per epoch.
    budget_fraction: float = 0.3
    classifier: ClassifierModel = field(default_factory=ClassifierModel)
    #: Observed-evasion fraction of target traffic above which it escalates.
    escalate_evasion: float = 0.25
    #: Evasion above which it goes blanket (throttle all neutralized traffic).
    blanket_evasion: float = 0.85
    #: Collateral share of flagged traffic above which it backs off one step.
    backoff_collateral: float = 0.5
    #: Throttle-factor change per escalation or backoff.
    escalation_step: float = 0.15
    #: Whether the §3.6 blanket move (flag everything neutralized) is on the
    #: table at all — a regulated ISP may not be able to afford it.
    allow_blanket: bool = True
    #: Epochs the strategy holds still after any escalate/backoff/blanket
    #: move — policy changes have operational inertia, like the
    #: autoscaler's cooldown.
    cooldown_epochs: int = 1
    #: Extra one-way delay a flagged client's surviving traffic picks up in
    #: the policer queue — the fluid twin of a DELAY rule in
    #: :mod:`repro.discrimination.policy` (its stock competitor-degradation
    #: rule adds 150 ms; a throttling policer is worse).
    throttle_delay_seconds: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.aggressiveness <= 1.0:
            raise WorkloadError("aggressiveness must be a fraction in [0, 1]")
        if not self.target_classes:
            raise WorkloadError("the ISP needs at least one target class")
        if not 0.0 <= self.throttle_floor <= 1.0:
            raise WorkloadError("the throttle floor must be a fraction in [0, 1]")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise WorkloadError("the policing budget must be a fraction in (0, 1]")
        if not 0.0 <= self.escalate_evasion <= self.blanket_evasion <= 1.0:
            raise WorkloadError(
                "evasion thresholds need 0 <= escalate <= blanket <= 1"
            )
        if not 0.0 < self.backoff_collateral <= 1.0:
            raise WorkloadError("the collateral threshold must be in (0, 1]")
        if not 0.0 < self.escalation_step <= 1.0:
            raise WorkloadError("the escalation step must be in (0, 1]")
        if self.throttle_delay_seconds < 0:
            raise WorkloadError("the policer delay must be non-negative")
        if self.cooldown_epochs < 0:
            raise WorkloadError("the strategy cooldown must be non-negative")

    @property
    def initial_factor(self) -> float:
        """Served fraction of flagged traffic before any escalation."""
        return 1.0 - 0.5 * self.aggressiveness * (1.0 - self.throttle_floor)

    @property
    def min_factor(self) -> float:
        """The lowest served fraction this ISP is willing to escalate to."""
        return 1.0 - self.aggressiveness * (1.0 - self.throttle_floor)

    @property
    def enabled(self) -> bool:
        """Whether the strategy throttles at all (``aggressiveness > 0``)."""
        return self.aggressiveness > 0.0


@dataclass(frozen=True)
class AdoptionModel:
    """Per-region neutralizer adoption dynamics.

    Each epoch the adoption target is a thresholded logistic in the *harm
    gain* — the harm an exposed client experiences minus the harm a
    neutralized one does (throughput shortfall plus, when a latency model
    is attached, ``latency_weight`` times the SLO-violating indicator,
    policer queueing included):

    ``a* = max(0, tanh(sensitivity * (gain - adoption_cost) / 2))``

    so adoption only starts once discrimination hurts more than the
    neutralizer costs, and saturates when the gap is large.  The region's
    fraction relaxes toward the target at ``adopt_rate`` per epoch on the
    way up and ``churn_rate`` on the way down (subscribing is a decision,
    lapsing is neglect).  Every *new* adopter performs one key setup at the
    site owning its ring position.
    """

    sensitivity: float = 8.0
    #: Harm-gain level below which nobody bothers to adopt.
    adoption_cost: float = 0.05
    #: Fraction of the gap to the target closed per epoch, upward.
    adopt_rate: float = 0.25
    #: Fraction of the gap closed per epoch, downward (abandonment).
    churn_rate: float = 0.1
    initial_adoption: float = 0.0
    #: Weight of latency-SLO violations next to throughput shortfall.
    latency_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.sensitivity <= 0:
            raise WorkloadError("adoption sensitivity must be positive")
        if self.adoption_cost < 0:
            raise WorkloadError("adoption cost must be non-negative")
        if not 0.0 < self.adopt_rate <= 1.0 or not 0.0 < self.churn_rate <= 1.0:
            raise WorkloadError("adoption rates must be fractions in (0, 1]")
        if not 0.0 <= self.initial_adoption <= 1.0:
            raise WorkloadError("initial adoption must be a fraction in [0, 1]")
        if self.latency_weight < 0:
            raise WorkloadError("the latency weight must be non-negative")

    def target(self, harm_gain: np.ndarray) -> np.ndarray:
        """The per-region adoption target for a given harm gain."""
        return np.maximum(
            0.0, np.tanh(self.sensitivity * (harm_gain - self.adoption_cost) / 2.0)
        )


@dataclass(frozen=True)
class AdversaryGame:
    """The frozen game configuration a timeline runs with.

    Mirrors :class:`repro.scale.autoscale.Autoscaler`: the timeline's
    ``run()`` builds a fresh :class:`AdversaryRun` each time, so timelines
    with an adversary stay re-runnable.
    """

    isp: IspStrategy = field(default_factory=IspStrategy)
    adoption: AdoptionModel = field(default_factory=AdoptionModel)

    def validate_against(self, population: ClientPopulation) -> None:
        """Fail fast when the strategy names classes the mix does not have."""
        known = set(population.mix.names)
        unknown = set(self.isp.target_classes) - known
        if unknown:
            raise WorkloadError(
                f"adversary targets unknown classes {sorted(unknown)}; "
                f"population mix has {population.mix.names}"
            )


@dataclass(frozen=True)
class AdversaryObservation:
    """What the game learned from one solved epoch (consumed one epoch later)."""

    #: Share of target-class traffic the classifier did NOT flag.
    evasion: float
    #: Share of flagged traffic belonging to non-target classes.
    collateral: float
    #: Per-region harm(exposed) - harm(neutralized), the adoption driver.
    harm_gain: np.ndarray


@dataclass(frozen=True)
class AdversaryEpoch:
    """One epoch's game output: the solver inputs plus the telemetry.

    ``exposed_hit`` / ``neutralized_hit`` are, per flow, the fraction of its
    exposed / neutralized clients whose traffic is flagged and policed this
    epoch (budget coverage already applied); ``served_multiplier`` folds
    both into the access ISP's served-demand cap for the merged flow.
    """

    served_multiplier: np.ndarray
    #: Extra key-setup requests/s per flow from adopters re-keying (None
    #: when nobody adopted this epoch).
    extra_setups_per_flow: Optional[np.ndarray]
    exposed_hit: np.ndarray
    neutralized_hit: np.ndarray
    #: Policer sojourn added to a flagged client's path delay (None without
    #: a latency model or when nothing is throttled).
    penalty_seconds: Optional[np.ndarray]
    #: Share of offered traffic (bps) flagged and policed this epoch.
    discriminated_share: float
    #: Client-weighted adoption fraction across the population.
    adoption_fraction: float
    clients_rekeyed: int
    events: Tuple[str, ...]
    #: Per-region flagged and offered bps (the budget-conservation ledger).
    flagged_bps_by_region: np.ndarray
    offered_bps_by_region: np.ndarray
    #: The served fraction applied to flagged traffic this epoch.
    throttle_factor: float
    #: Snapshot of the per-region adoption fractions in effect this epoch.
    adoption_by_region: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Per-flow offered bps this epoch (the ISP's traffic-volume ledger).
    offered_bps_per_flow: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: What the classifier saw this epoch, *before* the budget clamp: the
    #: share of target-class traffic it failed to flag, and the share of
    #: what it flagged that belongs to bystander classes.  The budget limits
    #: how much the ISP can police, not what it can measure.
    evasion: float = 0.0
    collateral: float = 0.0


class AdversaryRun:
    """Mutable game state for one timeline run.

    Owns the per-region adoption fractions, the ISP's current throttle
    factor and blanket flag, and the previous epoch's observation.  The
    control loop is deliberately lagged, like the autoscaler's: the epoch's
    flagging is computed from the state *before* the epoch solves, and the
    solve's outcome only informs the next epoch's strategy and adoption
    updates.
    """

    def __init__(self, game: AdversaryGame, population: ClientPopulation,
                 latency: Optional[LatencyModel] = None,
                 latency_slo_seconds: float = 0.1,
                 telemetry: Optional[Telemetry] = None) -> None:
        game.validate_against(population)
        self.game = game
        self.population = population
        self.latency = latency
        self.latency_slo_seconds = float(latency_slo_seconds)
        #: Observation only: counts game moves, never influences them.
        self.telemetry = telemetry if telemetry is not None else NULL
        self.adoption = np.full(
            population.regions, game.adoption.initial_adoption, dtype=np.float64
        )
        self.factor = game.isp.initial_factor
        self.blanket = False
        self.region_clients = population.region_counts().astype(np.float64)
        self._target_ids = np.array(
            [population.mix.names.index(name) for name in game.isp.target_classes],
            dtype=np.int64,
        )
        self._observation: Optional[AdversaryObservation] = None
        self._epoch: Optional[AdversaryEpoch] = None
        #: First epoch at which the strategy may move again (cooldown).
        self._hold_until = 0
        #: (template, mask) pair — the target mask only changes when the
        #: template's flow structure does, not every epoch.
        self._mask_cache: Tuple[Optional[ProblemTemplate], Optional[np.ndarray]] = (
            None, None,
        )

    def retune(self, adoption: "AdoptionModel") -> None:
        """Swap the adoption disposition mid-run (a committed reconfig event).

        Only the *model* changes — current per-region adoption fractions and
        the ISP's throttle state carry over, so the retune reads as clients
        becoming more (or less) price/harm sensitive from this epoch on, not
        as a population reset.
        """
        self.game = replace(self.game, adoption=adoption)

    def _count_moves(self, events: List[str], rekeyed: int) -> None:
        """Record this tick's game moves as counters, by event label."""
        telemetry = self.telemetry
        telemetry.inc("adversary.steps")
        telemetry.inc("adversary.events", len(events))
        telemetry.inc("adversary.clients_rekeyed", rekeyed)
        for label in events:
            if label.startswith(("escalate", "blanket on")):
                telemetry.inc("adversary.escalations")
            elif label.startswith(("backoff", "blanket off")):
                telemetry.inc("adversary.backoffs")
            elif label.startswith("adoption"):
                telemetry.inc("adversary.adoption_steps")

    def _target_mask(self, template: ProblemTemplate) -> np.ndarray:
        """Per-flow targeted-class mask, cached per template."""
        cached_template, cached_mask = self._mask_cache
        if cached_template is not template:
            cached_mask = np.isin(template.class_of, self._target_ids)
            self._mask_cache = (template, cached_mask)
        return cached_mask

    # -- the per-epoch control step ---------------------------------------------------

    def step(self, epoch: int, template: ProblemTemplate,
             offered_scale: np.ndarray, epoch_seconds: float) -> AdversaryEpoch:
        """One game tick at the top of ``epoch``, before the solve.

        Applies the strategy and adoption updates earned by the previous
        epoch's observation, then computes this epoch's flagging, budget
        coverage, served multipliers, rekey load, and telemetry.
        """
        events: List[str] = []
        self._update_strategy(epoch, events)
        rekeyed, joiners = self._update_adoption(events)
        self._count_moves(events, rekeyed)

        isp = self.game.isp
        region_of = template.region_of
        regions = template.regions
        a_flow = self.adoption[region_of]
        offered_bps = template.base_demands * offered_scale * template.group_clients
        offered_region = np.bincount(region_of, weights=offered_bps,
                                     minlength=regions)
        total_offered = float(offered_bps.sum())
        adoption_fraction = float(
            (self.adoption * self.region_clients).sum()
            / max(self.region_clients.sum(), 1.0)
        )

        extra_setups: Optional[np.ndarray] = None
        if rekeyed > 0:
            # Each joining client performs one key setup at the site that
            # owns its ring position; spread over the epoch it is a rate.
            extra_setups = (joiners[region_of] * template.group_clients
                            / epoch_seconds)

        if not isp.enabled:
            n_flows = region_of.size
            self._epoch = AdversaryEpoch(
                served_multiplier=np.ones(n_flows),
                extra_setups_per_flow=extra_setups,
                exposed_hit=np.zeros(n_flows),
                neutralized_hit=np.zeros(n_flows),
                penalty_seconds=None,
                discriminated_share=0.0,
                adoption_fraction=adoption_fraction,
                clients_rekeyed=rekeyed,
                events=tuple(events),
                flagged_bps_by_region=np.zeros(regions),
                offered_bps_by_region=offered_region,
                throttle_factor=1.0,
                adoption_by_region=self.adoption.copy(),
                offered_bps_per_flow=offered_bps,
            )
            return self._epoch

        classifier = isp.classifier
        target_mask = self._target_mask(template)
        exposure_rate = np.where(target_mask, classifier.true_positive,
                                 classifier.false_positive)
        leakage = 1.0 if self.blanket else classifier.neutralized_leakage
        flagged = (1.0 - a_flow) * exposure_rate + a_flow * leakage

        # What the classifier *measures* (pre-budget): how much target
        # traffic it failed to flag, and how much of what it polices it
        # cannot vouch for.  In targeted mode every flag comes from a
        # positive classifier match (even traffic-analysis leakage claims a
        # target signature), so only the non-target flags count as
        # collateral; in blanket mode the ISP knowingly throttles
        # unclassifiable traffic wholesale, so everything beyond the
        # exposed-target share it could actually vouch for is collateral —
        # §3.6's bluntness, and what backoff reacts to.
        flagged_bps_raw = flagged * offered_bps
        target_bps = float(offered_bps[target_mask].sum())
        flagged_target_bps = float(flagged_bps_raw[target_mask].sum())
        if self.blanket:
            intended_bps = float(
                ((1.0 - a_flow) * exposure_rate * offered_bps)[target_mask].sum()
            )
        else:
            intended_bps = flagged_target_bps
        flagged_total_bps = float(flagged_bps_raw.sum())
        evasion = (1.0 - flagged_target_bps / target_bps
                   if target_bps > 0 else 0.0)
        collateral = (1.0 - intended_bps / flagged_total_bps
                      if flagged_total_bps > 0 else 0.0)

        # Budget: flagging beyond the region's policing capacity is scaled
        # down pro rata — the ISP polices as much as it can afford, no more.
        flagged_region = np.bincount(region_of, weights=flagged_bps_raw,
                                     minlength=regions)
        budget_region = isp.budget_fraction * offered_region
        coverage = np.where(
            flagged_region > budget_region,
            budget_region / np.maximum(flagged_region, 1e-300),
            1.0,
        )
        cover_flow = coverage[region_of]
        exposed_hit = exposure_rate * cover_flow
        neutralized_hit = leakage * cover_flow
        flagged = flagged * cover_flow
        flagged_bps = flagged * offered_bps

        served_multiplier = 1.0 - flagged * (1.0 - self.factor)
        discriminated_share = (float(flagged_bps.sum()) / total_offered
                               if total_offered > 0 else 0.0)

        penalty: Optional[np.ndarray] = None
        if self.factor < 1.0 and isp.throttle_delay_seconds > 0:
            # Flagged traffic that survives the policer sits in its queue —
            # the fluid twin of the DELAY action in
            # repro.discrimination.policy, deepening with severity: a light
            # shave barely queues, a hard throttle holds a standing queue.
            penalty = np.full(
                region_of.size,
                isp.throttle_delay_seconds * (1.0 - self.factor),
            )

        self._epoch = AdversaryEpoch(
            served_multiplier=served_multiplier,
            extra_setups_per_flow=extra_setups,
            exposed_hit=exposed_hit,
            neutralized_hit=neutralized_hit,
            penalty_seconds=penalty,
            discriminated_share=discriminated_share,
            adoption_fraction=adoption_fraction,
            clients_rekeyed=rekeyed,
            events=tuple(events),
            flagged_bps_by_region=flagged_region * coverage,
            offered_bps_by_region=offered_region,
            throttle_factor=self.factor,
            adoption_by_region=self.adoption.copy(),
            offered_bps_per_flow=offered_bps,
            evasion=evasion,
            collateral=collateral,
        )
        return self._epoch

    def observe(self, template: ProblemTemplate, allocation: Allocation,
                problem, latency_result: Optional[LatencyResult]) -> None:
        """Digest one solved epoch into the next epoch's observation.

        ``problem`` is the epoch's :class:`CapacityProblem` (its demands are
        the *served* demands after the access multiplier, which is what the
        fleet's satisfaction ratio is relative to).
        """
        adv = self._epoch
        if adv is None:
            return
        region_of = template.region_of
        satisfaction = allocation.satisfaction(problem)

        # What each client would experience exposed vs neutralized: the
        # access leg serves (1 - hit x (1 - factor)) of its demand, and the
        # fleet serves `satisfaction` of whatever crossed the access leg.
        factor = adv.throttle_factor
        exposed_access = 1.0 - adv.exposed_hit * (1.0 - factor)
        neutral_access = 1.0 - adv.neutralized_hit * (1.0 - factor)
        harm_exposed = 1.0 - exposed_access * satisfaction
        harm_neutral = 1.0 - neutral_access * satisfaction

        if latency_result is not None:
            weight = self.game.adoption.latency_weight
            slo = self.latency_slo_seconds
            base_over = latency_result.flow_delay_seconds > slo
            if adv.penalty_seconds is not None:
                hit_over = (latency_result.flow_delay_seconds
                            + adv.penalty_seconds) > slo
            else:
                hit_over = base_over
            harm_exposed = harm_exposed + weight * np.where(
                hit_over, adv.exposed_hit, 0.0
            ) + weight * np.where(base_over, 1.0 - adv.exposed_hit, 0.0)
            harm_neutral = harm_neutral + weight * np.where(
                hit_over, adv.neutralized_hit, 0.0
            ) + weight * np.where(base_over, 1.0 - adv.neutralized_hit, 0.0)

        # Every client weighs both options, so both harms are averaged over
        # the whole group — no degenerate weights when a region is fully
        # (un)adopted.
        clients = template.group_clients
        client_region = np.bincount(region_of, weights=clients,
                                    minlength=template.regions)
        client_region = np.maximum(client_region, 1.0)
        gain_region = (
            np.bincount(region_of, weights=(harm_exposed - harm_neutral) * clients,
                        minlength=template.regions)
            / client_region
        )

        # The ISP's ledger (evasion/collateral) was measured at step time,
        # pre-budget; only the harm gain needs the solved epoch.
        self._observation = AdversaryObservation(
            evasion=adv.evasion, collateral=adv.collateral, harm_gain=gain_region,
        )

    # -- lagged updates ---------------------------------------------------------------

    def _update_strategy(self, epoch: int, events: List[str]) -> None:
        observation = self._observation
        isp = self.game.isp
        if observation is None or not isp.enabled or epoch < self._hold_until:
            return
        if observation.collateral > isp.backoff_collateral:
            if self.blanket:
                self.blanket = False
                events.append("blanket off")
            elif self.factor < 1.0:
                self.factor = min(1.0, round(self.factor + isp.escalation_step, 9))
                events.append(f"backoff x{self.factor:g}")
            else:
                return
        elif (observation.evasion > isp.blanket_evasion and isp.allow_blanket
                and not self.blanket):
            self.blanket = True
            events.append("blanket on")
        elif (observation.evasion > isp.escalate_evasion
                and self.factor > isp.min_factor):
            self.factor = max(isp.min_factor,
                              round(self.factor - isp.escalation_step, 9))
            events.append(f"escalate x{self.factor:g}")
        else:
            return
        self._hold_until = epoch + 1 + isp.cooldown_epochs

    def _update_adoption(self, events: List[str]) -> Tuple[int, np.ndarray]:
        """Relax adoption toward the harm-gain target; returns rekey churn."""
        joiners = np.zeros_like(self.adoption)
        observation = self._observation
        if observation is None:
            return 0, joiners
        model = self.game.adoption
        target = model.target(observation.harm_gain)
        delta = target - self.adoption
        step = np.where(delta > 0, model.adopt_rate, model.churn_rate) * delta
        # Clamp micro-steps to zero so the game reaches an exact fixed point
        # (the timeline's bit-identical-epoch reuse depends on it).
        step[np.abs(step) < _ADOPTION_QUANTUM] = 0.0
        if not step.any():
            return 0, joiners
        updated = np.clip(self.adoption + step, 0.0, 1.0)
        joiners = np.maximum(updated - self.adoption, 0.0)
        rekeyed = int(round(float((joiners * self.region_clients).sum())))
        before = float((self.adoption * self.region_clients).sum())
        after = float((updated * self.region_clients).sum())
        self.adoption = updated
        total = max(self.region_clients.sum(), 1.0)
        events.append(f"adoption {before / total:.3f}->{after / total:.3f}")
        return rekeyed, joiners


def split_latency_by_class(
    template: ProblemTemplate,
    latency_result: LatencyResult,
    adversary_epoch: AdversaryEpoch,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Per-class P95 path delay, split neutralized vs exposed.

    Within one flow, clients fall into four delay groups: neutralized or
    exposed, each either flagged (base delay plus the policer penalty) or
    unflagged (base delay).  The split is the neutrality check made
    adversarial: a throttled class shows its exposed tail displaced while
    its neutralized twin — same class, same regions, same fleet — stays on
    the base curve.
    """
    adoption = adversary_epoch
    base = latency_result.flow_delay_seconds
    penalty = (adoption.penalty_seconds if adoption.penalty_seconds is not None
               else np.zeros_like(base))
    hit_delay = base + penalty
    clients = template.group_clients.astype(np.float64)
    a_flow = adoption.adoption_by_region[template.region_of]

    neutralized: Dict[str, float] = {}
    exposed: Dict[str, float] = {}
    for index, name in enumerate(latency_result.class_names):
        members = template.class_members[index]
        values = np.concatenate([base[members], hit_delay[members]])
        neutral_clients = a_flow[members] * clients[members]
        exposed_clients = (1.0 - a_flow[members]) * clients[members]
        neutral_weights = np.concatenate([
            neutral_clients * (1.0 - adoption.neutralized_hit[members]),
            neutral_clients * adoption.neutralized_hit[members],
        ])
        exposed_weights = np.concatenate([
            exposed_clients * (1.0 - adoption.exposed_hit[members]),
            exposed_clients * adoption.exposed_hit[members],
        ])
        # One sort serves both weightings — the values are shared.
        order = np.argsort(values, kind="stable")
        neutralized[name] = _weighted_percentiles(
            values, neutral_weights, [0.95], order=order)[0]
        exposed[name] = _weighted_percentiles(
            values, exposed_weights, [0.95], order=order)[0]
    return neutralized, exposed


def experienced_latency(
    template: ProblemTemplate,
    latency_result: LatencyResult,
    adversary_epoch: AdversaryEpoch,
    slo_seconds: float,
) -> Tuple[float, float, float, float]:
    """Aggregate (P50, P95, P99, SLO-violation fraction) *as experienced*.

    The proxy's :class:`LatencyResult` measures the fleet path; flagged
    clients additionally sit in the access ISP's policer queue.  This is
    the population-wide mixture of both — what the epoch record quotes, so
    the headline latency fields and the adoption model's harm ledger agree
    on what a client experienced.  (The autoscaler keeps the fleet-path
    P95 as its control signal: capacity cannot buy back a policer queue.)
    """
    base = latency_result.flow_delay_seconds
    if adversary_epoch.penalty_seconds is None:
        p50, p95, p99 = latency_result.percentiles((0.50, 0.95, 0.99))
        return p50, p95, p99, latency_result.slo_violation_fraction(slo_seconds)
    a_flow = adversary_epoch.adoption_by_region[template.region_of]
    hit = ((1.0 - a_flow) * adversary_epoch.exposed_hit
           + a_flow * adversary_epoch.neutralized_hit)
    clients = template.group_clients.astype(np.float64)
    values = np.concatenate([base, base + adversary_epoch.penalty_seconds])
    weights = np.concatenate([clients * (1.0 - hit), clients * hit])
    p50, p95, p99 = _weighted_percentiles(values, weights, (0.50, 0.95, 0.99))
    total = weights.sum()
    violations = (float(weights[values > slo_seconds].sum() / total)
                  if total > 0 else 0.0)
    return p50, p95, p99, violations
