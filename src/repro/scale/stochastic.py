"""Seeded stochastic event processes for availability campaigns.

The timeline catalogue replays *hand-written* transients; real availability
is a distribution over random ones.  This module draws fleet-event sequences
from seeded random processes and compiles them to the existing
:class:`repro.scale.timeline.FleetEvent` machinery, so a Monte-Carlo
campaign (:class:`repro.scale.runner.StochasticCampaignRunner`, E14) can run
many replicas of the same scenario and report availability/churn/cost
percentiles instead of single curves — the "availability is a distribution
over correlated failure events" view of the backbone-operations literature
in PAPERS.md.

Three processes cover the failure families the paper's deployment would
face:

:class:`PoissonSiteFailures`
    Independent per-site failures (hardware, operator error) with geometric
    downtime — the memoryless baseline.
:class:`CorrelatedRegionalOutage`
    A contiguous block of sites fails *together* (regional power or transit
    event) and recovers together; correlation is what makes tail
    availability much worse than independent-failure math predicts.
:class:`AttackOnset`
    A DoS flood of junk key-setup requests eats a random subset of sites'
    CPU for a while — compiled to :class:`CapacityDegradation` windows, the
    fluid rendering of the paper's attack-resilience story (§3.2's cheap
    RSA direction is what keeps the degradation factor survivable).

Determinism: :func:`compile_events` derives one independent substream per
process from the campaign seed via ``numpy.random.SeedSequence``, so the
same seed always yields the identical event list, regardless of how many
replicas run or in what order.  Overlapping downtime windows for the same
site (two processes, or one process re-failing early) are merged into their
union before emitting ``SiteFailure``/``SiteRecovery`` pairs, so the
compiled sequence is always well-formed: one failure, one recovery, in
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import WorkloadError
from .timeline import CapacityDegradation, FleetEvent, SiteFailure, SiteRecovery

#: One site-downtime window: (site index, first down epoch, first up epoch).
#: ``until`` may exceed the horizon — the site then stays down to the end.
DowntimeWindow = Tuple[int, int, int]


# ---------------------------------------------------------------------------
# Variance-reduction uniform transforms
# ---------------------------------------------------------------------------


class _TransformedUniforms:
    """A Generator proxy whose ``random()`` draws pass through a transform.

    Every event process decides *whether* something happens by comparing
    ``rng.random(...)`` draws against a hazard; transforming only those
    uniforms (durations, target picks etc. delegate untouched) keeps each
    replica's marginal distribution exact while correlating replicas the
    way a variance-reduction scheme wants.  Duck-typed on the Generator
    methods the stock processes use; everything else delegates.
    """

    def __init__(self, rng: np.random.Generator,
                 transform: Callable[[np.ndarray], np.ndarray]) -> None:
        self._rng = rng
        self._transform = transform

    def random(self, size=None):
        return self._transform(np.asarray(self._rng.random(size)))

    def __getattr__(self, name):
        return getattr(self._rng, name)


def antithetic_uniforms(rng: np.random.Generator) -> _TransformedUniforms:
    """The antithetic mirror: every hazard draw ``u`` becomes ``1 - u``.

    ``1 - U`` is uniform, so a mirrored replica is a perfectly valid draw —
    but paired with its twin (same substream, untransformed) the Bernoulli
    hazard indicators are negatively correlated: an epoch that failed in one
    member tends not to fail in the other, so the pair's *mean* is a
    lower-variance estimate than two independent replicas.
    """
    return _TransformedUniforms(rng, lambda u: 1.0 - u)


def rotated_uniforms(rng: np.random.Generator,
                     offset: float) -> _TransformedUniforms:
    """Rotation (systematic/stratified) sampling: ``u -> (u + offset) mod 1``.

    With one *common* substream and equally spaced offsets ``r / replicas``,
    the replica set covers the hazard quantile space systematically instead
    of by luck — low-event and high-event months are guaranteed to appear in
    proportion, which is what sharpens the availability tail estimate at the
    same replica budget.  Each individual replica remains a valid draw
    (a rotated uniform is uniform).
    """
    if not 0.0 <= offset < 1.0:
        raise WorkloadError("the rotation offset must be a fraction in [0, 1)")
    return _TransformedUniforms(rng, lambda u: (u + offset) % 1.0)


@dataclass(frozen=True)
class SampledEvents:
    """What one process contributes: downtime windows plus direct events."""

    downtime: Tuple[DowntimeWindow, ...] = ()
    events: Tuple[FleetEvent, ...] = ()


class EventProcess:
    """A seeded generator of fleet events over a fixed horizon."""

    def sample(self, rng: np.random.Generator, *, epochs: int,
               site_names: Sequence[str]) -> SampledEvents:
        """Draw this process's contribution for one replica."""
        raise NotImplementedError


def _geometric_epochs(rng: np.random.Generator, mean: float) -> int:
    """A downtime duration of at least one epoch with the given mean."""
    if mean <= 1.0:
        return 1
    return int(rng.geometric(1.0 / mean))


@dataclass(frozen=True)
class PoissonSiteFailures(EventProcess):
    """Independent site failures: each site fails with a per-epoch hazard.

    ``failures_per_site_epoch`` is the Bernoulli-per-epoch approximation of
    a Poisson hazard (exact for the epoch-quantized timeline); downtime is
    geometric with ``mean_downtime_epochs`` (memoryless repair).  A site
    cannot re-fail while still down.
    """

    failures_per_site_epoch: float = 0.001
    mean_downtime_epochs: float = 3.0

    def __post_init__(self) -> None:
        if not 0 <= self.failures_per_site_epoch <= 1:
            raise WorkloadError("failure hazard must be a probability")
        if self.mean_downtime_epochs < 1:
            raise WorkloadError("mean downtime must be at least one epoch")

    def sample(self, rng: np.random.Generator, *, epochs: int,
               site_names: Sequence[str]) -> SampledEvents:
        windows: List[DowntimeWindow] = []
        n_sites = len(site_names)
        # One draw per (site, epoch), sites outer so the stream is stable.
        draws = rng.random((n_sites, epochs))
        for site in range(n_sites):
            up_at = 1
            for epoch in range(1, epochs):
                if epoch < up_at or draws[site, epoch] >= self.failures_per_site_epoch:
                    continue
                up_at = epoch + _geometric_epochs(rng, self.mean_downtime_epochs)
                windows.append((site, epoch, up_at))
        return SampledEvents(downtime=tuple(windows))


@dataclass(frozen=True)
class CorrelatedRegionalOutage(EventProcess):
    """A whole region's sites fail together and recover together.

    ``outages_per_epoch`` is the fleet-wide hazard of a correlated event;
    each outage takes down a contiguous block of ``group_fraction`` of the
    fleet starting at a random site (contiguous site indices stand in for
    geographic co-location, matching how the catalogue names its fleets).
    """

    outages_per_epoch: float = 0.01
    group_fraction: float = 0.25
    mean_downtime_epochs: float = 4.0

    def __post_init__(self) -> None:
        if not 0 <= self.outages_per_epoch <= 1:
            raise WorkloadError("outage hazard must be a probability")
        if not 0 < self.group_fraction <= 1:
            raise WorkloadError("outage group fraction must be in (0, 1]")
        if self.mean_downtime_epochs < 1:
            raise WorkloadError("mean downtime must be at least one epoch")

    def sample(self, rng: np.random.Generator, *, epochs: int,
               site_names: Sequence[str]) -> SampledEvents:
        windows: List[DowntimeWindow] = []
        n_sites = len(site_names)
        group = max(1, int(round(n_sites * self.group_fraction)))
        draws = rng.random(epochs)
        for epoch in range(1, epochs):
            if draws[epoch] >= self.outages_per_epoch:
                continue
            start = int(rng.integers(n_sites))
            until = epoch + _geometric_epochs(rng, self.mean_downtime_epochs)
            for offset in range(group):
                windows.append(((start + offset) % n_sites, epoch, until))
        return SampledEvents(downtime=tuple(windows))


@dataclass(frozen=True)
class AttackOnset(EventProcess):
    """A DoS onset: junk key-setup floods eat CPU at a subset of sites.

    Compiled to :class:`CapacityDegradation` windows — the attacked sites
    stay in the ring (anycast keeps absorbing), but only ``severity`` of
    their capacity serves legitimate traffic while the attack lasts.
    """

    attacks_per_epoch: float = 0.02
    #: Fraction of nominal capacity left for legitimate traffic under attack.
    severity: float = 0.5
    mean_duration_epochs: float = 4.0
    #: Fraction of the fleet each attack wave lands on.
    sites_hit_fraction: float = 0.375

    def __post_init__(self) -> None:
        if not 0 <= self.attacks_per_epoch <= 1:
            raise WorkloadError("attack hazard must be a probability")
        if not 0 <= self.severity <= 1:
            raise WorkloadError("attack severity must leave a capacity factor in [0, 1]")
        if self.mean_duration_epochs < 1:
            raise WorkloadError("mean attack duration must be at least one epoch")
        if not 0 < self.sites_hit_fraction <= 1:
            raise WorkloadError("sites-hit fraction must be in (0, 1]")

    def sample(self, rng: np.random.Generator, *, epochs: int,
               site_names: Sequence[str]) -> SampledEvents:
        events: List[FleetEvent] = []
        n_sites = len(site_names)
        hit = max(1, int(round(n_sites * self.sites_hit_fraction)))
        draws = rng.random(epochs)
        for epoch in range(1, epochs):
            if draws[epoch] >= self.attacks_per_epoch:
                continue
            until = epoch + _geometric_epochs(rng, self.mean_duration_epochs)
            targets = rng.choice(n_sites, size=hit, replace=False)
            for site in sorted(int(s) for s in targets):
                events.append(CapacityDegradation(
                    epoch, site=site_names[site], factor=self.severity,
                    until_epoch=until,
                ))
        return SampledEvents(events=tuple(events))


def _merge_windows(windows: Sequence[DowntimeWindow]) -> List[DowntimeWindow]:
    """Union overlapping/adjacent downtime windows per site."""
    by_site: Dict[int, List[Tuple[int, int]]] = {}
    for site, start, until in windows:
        by_site.setdefault(site, []).append((start, until))
    merged: List[DowntimeWindow] = []
    for site, intervals in by_site.items():
        intervals.sort()
        current_start, current_until = intervals[0]
        for start, until in intervals[1:]:
            if start <= current_until:
                current_until = max(current_until, until)
            else:
                merged.append((site, current_start, current_until))
                current_start, current_until = start, until
        merged.append((site, current_start, current_until))
    return merged


def _sample_processes(
    processes: Sequence[EventProcess],
    *,
    seed: int,
    epochs: int,
    site_names: Sequence[str],
    rng_transform: Optional[Callable[[np.random.Generator], object]] = None,
) -> List[SampledEvents]:
    """Draw every process from its own substream — the one sampling loop.

    Both :func:`compile_events` (the timeline input) and
    :func:`compile_schedule` (the ground-truth surface) run through here,
    so for identical arguments they consume identical draws and describe
    the *same* replica.
    """
    if epochs <= 0:
        raise WorkloadError("stochastic compilation needs a positive horizon")
    if not site_names:
        raise WorkloadError("stochastic compilation needs at least one site")
    streams = np.random.SeedSequence(seed).spawn(max(len(processes), 1))
    sampled: List[SampledEvents] = []
    for process, stream in zip(processes, streams):
        rng = np.random.default_rng(stream)
        if rng_transform is not None:
            rng = rng_transform(rng)
        sampled.append(process.sample(rng, epochs=epochs,
                                      site_names=site_names))
    return sampled


def compile_events(
    processes: Sequence[EventProcess],
    *,
    seed: int,
    epochs: int,
    site_names: Sequence[str],
    rng_transform: Optional[Callable[[np.random.Generator], object]] = None,
) -> List[FleetEvent]:
    """Draw every process and compile one well-formed fleet-event list.

    Each process gets an independent substream spawned from ``seed`` (so
    adding a process never perturbs the others' draws), downtime windows are
    merged per site across processes, and the result is a sorted list of
    plain :class:`FleetEvent` items the :class:`FluidTimeline` machinery
    already knows how to fire.  Deterministic: same arguments, same list.
    ``rng_transform`` wraps each process's generator before sampling (the
    hook :func:`antithetic_uniforms` / :func:`rotated_uniforms` variance
    reduction plugs into); ``None`` leaves the draws untouched.
    """
    sampled = _sample_processes(processes, seed=seed, epochs=epochs,
                                site_names=site_names,
                                rng_transform=rng_transform)
    windows: List[DowntimeWindow] = []
    direct: List[FleetEvent] = []
    for contribution in sampled:
        windows.extend(contribution.downtime)
        direct.extend(contribution.events)

    events: List[FleetEvent] = list(direct)
    for site, start, until in _merge_windows(windows):
        if start >= epochs:
            continue
        events.append(SiteFailure(start, site_names[site]))
        if until < epochs:
            events.append(SiteRecovery(until, site_names[site]))
    events.sort(key=lambda event: event.at_epoch)
    return events


# ---------------------------------------------------------------------------
# Ground-truth fault schedule (what the detectors are graded against)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionalOutageRecord:
    """One :class:`CorrelatedRegionalOutage` occurrence: a site block that
    failed together at ``onset_epoch`` and recovers at ``until_epoch``
    (which may exceed the horizon — the block then stays down to the end)."""

    onset_epoch: int
    until_epoch: int
    #: Site indices in block order (contiguous modulo the fleet size).
    sites: Tuple[int, ...]


@dataclass(frozen=True)
class FaultSchedule:
    """The injected fault ground truth of one stochastic replica.

    Produced by :func:`compile_schedule` from the *same* draws as
    :func:`compile_events`, so it describes exactly the replica the
    timeline simulates: ``downtime`` holds the merged per-site windows the
    compiled ``SiteFailure``/``SiteRecovery`` events realize, and
    ``regional_outages`` names each correlated-outage occurrence with its
    full site block.  This is what detector tests grade verdicts against —
    a black-hole verdict is a true positive iff its (site, epoch) falls
    inside a scheduled window.
    """

    epochs: int
    site_names: Tuple[str, ...]
    #: Merged per-site windows with an in-horizon start, sorted.
    downtime: Tuple[DowntimeWindow, ...]
    regional_outages: Tuple[RegionalOutageRecord, ...]

    def covers(self, site_index: int, epoch: int) -> bool:
        """Whether ``site_index`` is scheduled down at ``epoch``."""
        return any(site == site_index and start <= epoch < until
                   for site, start, until in self.downtime)

    def window_starting(self, site_index: int,
                        epoch: int) -> Optional[DowntimeWindow]:
        """The merged window of ``site_index`` beginning at ``epoch``."""
        for window in self.downtime:
            if window[0] == site_index and window[1] == epoch:
                return window
        return None


def compile_schedule(
    processes: Sequence[EventProcess],
    *,
    seed: int,
    epochs: int,
    site_names: Sequence[str],
    rng_transform: Optional[Callable[[np.random.Generator], object]] = None,
) -> FaultSchedule:
    """The fault ground truth for the replica :func:`compile_events` builds.

    Re-draws the same substreams (identical arguments, identical draws) and
    reports what was injected instead of compiling it to timeline events:
    the merged per-site downtime windows, plus each correlated regional
    outage grouped back into its site block.  A window's ``(start, until)``
    is recoverable per occurrence because a process fires at most one
    outage per epoch, so within one process equal ``(start, until)`` pairs
    are the same occurrence.
    """
    sampled = _sample_processes(processes, seed=seed, epochs=epochs,
                                site_names=site_names,
                                rng_transform=rng_transform)
    windows: List[DowntimeWindow] = []
    for contribution in sampled:
        windows.extend(contribution.downtime)
    merged = sorted(window for window in _merge_windows(windows)
                    if window[1] < epochs)

    outages: List[RegionalOutageRecord] = []
    for process, contribution in zip(processes, sampled):
        if not isinstance(process, CorrelatedRegionalOutage):
            continue
        groups: Dict[Tuple[int, int], List[int]] = {}
        for site, start, until in contribution.downtime:
            groups.setdefault((start, until), []).append(site)
        for (start, until), sites in groups.items():
            if start >= epochs:
                continue
            outages.append(RegionalOutageRecord(
                onset_epoch=start, until_epoch=until, sites=tuple(sites)))
    outages.sort(key=lambda record: (record.onset_epoch, record.sites))
    return FaultSchedule(epochs=epochs, site_names=tuple(site_names),
                         downtime=tuple(merged),
                         regional_outages=tuple(outages))


def default_processes(
    *,
    failure_rate: float = 0.0005,
    outage_rate: float = 0.004,
    attack_rate: float = 0.012,
) -> Tuple[EventProcess, ...]:
    """The stock process mix E14 campaigns run: failures, outages, attacks."""
    return (
        PoissonSiteFailures(failures_per_site_epoch=failure_rate,
                            mean_downtime_epochs=3.0),
        CorrelatedRegionalOutage(outages_per_epoch=outage_rate,
                                 group_fraction=0.25,
                                 mean_downtime_epochs=4.0),
        AttackOnset(attacks_per_epoch=attack_rate, severity=0.5,
                    mean_duration_epochs=4.0, sites_hit_fraction=0.375),
    )
