"""The neutralizer fleet: sites, capacity, health, and client assignment.

A *site* is one anycast entry point into the neutral domain — in the
packet-level simulator, one :class:`repro.core.neutralizer.Neutralizer` on a
border router; here, a CPU budget (cores × the calibrated per-packet cost)
plus an uplink.  Clients are spread over healthy sites with the
:class:`repro.core.anycast.ConsistentHashRing`, evaluated vectorized: the
ring's position table is pulled into numpy arrays once and a million clients
are assigned with a single ``searchsorted``.  Failing a site withdraws its
ring points, so exactly the failed site's clients move — the fleet-level
analogue of a router withdrawing its anycast route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.anycast import ConsistentHashRing, NeutralizerDeployment
from ..exceptions import TopologyError
from ..units import gbps
from .costmodel import CryptoCostModel


@dataclass
class FleetSite:
    """One neutralizer site: a point of presence with CPU and uplink budgets."""

    name: str
    cores: float = 8.0
    uplink_bps: float = gbps(10)
    healthy: bool = True

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.uplink_bps <= 0:
            raise TopologyError(f"site {self.name!r} needs positive cores and uplink")


class NeutralizerFleet:
    """A set of sites plus the consistent-hash ring that spreads clients."""

    def __init__(
        self,
        sites: List[FleetSite],
        *,
        cost_model: Optional[CryptoCostModel] = None,
        replicas: int = 64,
    ) -> None:
        if not sites:
            raise TopologyError("a fleet needs at least one site")
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise TopologyError("site names must be unique")
        self.sites = list(sites)
        self.cost_model = cost_model or CryptoCostModel.default()
        self.replicas = replicas
        self._index_by_name: Dict[str, int] = {name: i for i, name in enumerate(names)}
        #: Bumped on every ring rebuild, so cached client assignments and
        #: problem templates know when they are stale.
        self.generation = 0
        self._rebuild_ring()

    @classmethod
    def build(cls, n_sites: int, *, cores: float = 8.0, uplink_bps: float = gbps(10),
              cost_model: Optional[CryptoCostModel] = None,
              replicas: int = 64) -> "NeutralizerFleet":
        """A homogeneous fleet of ``n_sites`` identical sites."""
        sites = [FleetSite(f"site{i:02d}", cores=cores, uplink_bps=uplink_bps)
                 for i in range(n_sites)]
        return cls(sites, cost_model=cost_model, replicas=replicas)

    @classmethod
    def from_deployment(
        cls,
        deployment: NeutralizerDeployment,
        *,
        cores: float = 8.0,
        uplink_bps: float = gbps(10),
        cost_model: Optional[CryptoCostModel] = None,
        replicas: int = 64,
    ) -> "NeutralizerFleet":
        """Mirror a packet-level anycast deployment: one site per deployed box."""
        sites = [FleetSite(name, cores=cores, uplink_bps=uplink_bps)
                 for name in deployment.router_names]
        return cls(sites, cost_model=cost_model, replicas=replicas)

    # -- health ----------------------------------------------------------------------

    def _rebuild_ring(self) -> None:
        healthy = [site.name for site in self.sites if site.healthy]
        if not healthy:
            raise TopologyError("every site of the fleet is down")
        self.ring = ConsistentHashRing(healthy, replicas=self.replicas)
        positions, owners = self.ring.table()
        self._ring_positions = np.asarray(positions, dtype=np.uint64)
        self._ring_owner_index = np.asarray(
            [self._index_by_name[name] for name in owners], dtype=np.int64
        )
        self.generation += 1

    def ring_snapshot(self):
        """Freeze the current ring state (see :meth:`ConsistentHashRing.snapshot`)."""
        return self.ring.snapshot()

    def site(self, name: str) -> FleetSite:
        """Look up one site by name."""
        return self.sites[self.index_of_site(name)]

    def index_of_site(self, name: str) -> int:
        """A site's index into :attr:`sites` (stable across failures)."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise TopologyError(
                f"unknown site {name!r}; fleet has {', '.join(self._index_by_name)}"
            ) from None

    def fail_site(self, name: str) -> None:
        """Take a site down; its ring points are withdrawn immediately."""
        self.site(name).healthy = False
        self._rebuild_ring()

    def restore_site(self, name: str) -> None:
        """Bring a failed site back; it reclaims exactly its old ring points."""
        self.site(name).healthy = True
        self._rebuild_ring()

    def health_snapshot(self) -> Tuple[bool, ...]:
        """Per-site health flags, in :attr:`sites` order, for later restore."""
        return tuple(site.healthy for site in self.sites)

    def restore_health(self, snapshot: Tuple[bool, ...]) -> None:
        """Reset every site's health to ``snapshot`` (one ring rebuild).

        The undo operation for a sequence of failures/recoveries — timeline
        runs use it to hand the fleet back in its pre-run state.
        """
        if len(snapshot) != len(self.sites):
            raise TopologyError("health snapshot does not match the fleet's sites")
        if snapshot == self.health_snapshot():
            return
        for site, healthy in zip(self.sites, snapshot):
            site.healthy = healthy
        self._rebuild_ring()

    @property
    def healthy_site_names(self) -> List[str]:
        """Names of sites currently in the ring."""
        return [site.name for site in self.sites if site.healthy]

    # -- vectorized assignment -------------------------------------------------------

    def assign_sites(self, ring_positions: np.ndarray) -> np.ndarray:
        """Map client ring positions to site indices (into :attr:`sites`).

        The successor lookup of :meth:`ConsistentHashRing.site_for`, done for
        the whole population at once with ``searchsorted`` (wrapping past the
        last ring point back to the first).
        """
        slots = np.searchsorted(self._ring_positions, ring_positions, side="left")
        slots[slots == len(self._ring_positions)] = 0
        return self._ring_owner_index[slots]

    # -- capacity --------------------------------------------------------------------

    @property
    def n_sites(self) -> int:
        """Number of sites, healthy or not (indices are stable across failures)."""
        return len(self.sites)

    def cpu_capacity_cores(self) -> np.ndarray:
        """Per-site CPU budget in cores (zero when down)."""
        return np.array(
            [site.cores if site.healthy else 0.0 for site in self.sites], dtype=np.float64
        )

    def uplink_capacity_bps(self) -> np.ndarray:
        """Per-site uplink budget in bits/s (zero when down)."""
        return np.array(
            [site.uplink_bps if site.healthy else 0.0 for site in self.sites],
            dtype=np.float64,
        )

    def data_capacity_pps(self) -> np.ndarray:
        """Per-site data-path forwarding budget in packets/s."""
        return self.cpu_capacity_cores() / self.cost_model.data_packet_cost_seconds

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        healthy = self.healthy_site_names
        per_site = self.cost_model.data_packets_per_second(self.sites[0].cores)
        return (
            f"fleet of {len(self.sites)} sites ({len(healthy)} healthy), "
            f"~{per_site:,.0f} pkt/s per site data path"
        )
