"""The neutralizer fleet: sites, capacity, health, and client assignment.

This is the supply side of the paper's §4 scaling argument (neutralizer
boxes at the neutral ISP's borders, reached by anycast).  A *site* is one
anycast entry point into the neutral domain — in the
packet-level simulator, one :class:`repro.core.neutralizer.Neutralizer` on a
border router; here, a CPU budget (cores × the calibrated per-packet cost)
plus an uplink.  Clients are spread over healthy sites with the
:class:`repro.core.anycast.ConsistentHashRing`, evaluated vectorized: the
ring's position table is pulled into numpy arrays once and a million clients
are assigned with a single ``searchsorted``.  Failing a site withdraws its
ring points, so exactly the failed site's clients move — the fleet-level
analogue of a router withdrawing its anycast route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.anycast import ConsistentHashRing, NeutralizerDeployment
from ..exceptions import TopologyError
from ..units import gbps
from .costmodel import CryptoCostModel


@dataclass
class FleetSite:
    """One neutralizer site: a point of presence with CPU and uplink budgets.

    Two independent flags gate whether the site serves clients: ``healthy``
    is involuntary (failures and recoveries, flipped by fleet events) and
    ``active`` is voluntary (commissioned vs drained, flipped by the
    autoscaler).  A site is *in service* — present in the hash ring,
    contributing capacity — only when both are true, so a drained site that
    fails, recovers, and is reactivated passes through every state exactly
    once.
    """

    name: str
    cores: float = 8.0
    uplink_bps: float = gbps(10)
    healthy: bool = True
    active: bool = True
    #: Billing tier: ``"reserved"`` (full price) or ``"spot"`` (discounted
    #: by the provisioning model's ``spot_multiplier``).  Purely a cost
    #: label — capacity and ring behavior are tier-blind.
    tier: str = "reserved"

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.uplink_bps <= 0:
            raise TopologyError(f"site {self.name!r} needs positive cores and uplink")
        if self.tier not in ("reserved", "spot"):
            raise TopologyError(
                f"site {self.name!r} tier must be 'reserved' or 'spot'"
            )

    @property
    def in_service(self) -> bool:
        """Whether the site currently serves clients (healthy AND active)."""
        return self.healthy and self.active


class NeutralizerFleet:
    """A set of sites plus the consistent-hash ring that spreads clients."""

    def __init__(
        self,
        sites: List[FleetSite],
        *,
        cost_model: Optional[CryptoCostModel] = None,
        replicas: int = 64,
    ) -> None:
        if not sites:
            raise TopologyError("a fleet needs at least one site")
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise TopologyError("site names must be unique")
        self.sites = list(sites)
        self.cost_model = cost_model or CryptoCostModel.default()
        self.replicas = replicas
        self._index_by_name: Dict[str, int] = {name: i for i, name in enumerate(names)}
        # Every site's ring points are hashed once here (through an empty
        # ring, so the hash stays the single source of truth); membership
        # changes then assemble the in-service table from these cached
        # arrays instead of re-hashing, so a failover epoch costs an argsort
        # over ~10^3 points, not thousands of blake2b calls plus sorted
        # list inserts.
        hasher = ConsistentHashRing([], replicas=replicas)
        self._site_points: Dict[str, np.ndarray] = {}
        for name in names:
            points = np.fromiter(
                (hasher._position(f"{name}#{replica}".encode())
                 for replica in range(replicas)),
                dtype=np.uint64, count=replicas,
            )
            points.sort()
            self._site_points[name] = points
        self._ring_object: Optional[ConsistentHashRing] = None
        self._cpu_capacity: Optional[np.ndarray] = None
        self._uplink_capacity: Optional[np.ndarray] = None
        self._service_mask: Optional[np.ndarray] = None
        #: Bumped whenever any site's ``active`` flag flips — unlike
        #: :attr:`generation` this moves even when the ring does not (e.g.
        #: draining an already-failed site), so billing caches can key on it.
        self.active_version = 0
        #: Bumped on every ring rebuild, so cached client assignments and
        #: problem templates know when they are stale.
        self.generation = 0
        self._rebuild_ring()

    @classmethod
    def build(cls, n_sites: int, *, cores: float = 8.0, uplink_bps: float = gbps(10),
              cost_model: Optional[CryptoCostModel] = None,
              replicas: int = 64) -> "NeutralizerFleet":
        """A homogeneous fleet of ``n_sites`` identical sites."""
        sites = [FleetSite(f"site{i:02d}", cores=cores, uplink_bps=uplink_bps)
                 for i in range(n_sites)]
        return cls(sites, cost_model=cost_model, replicas=replicas)

    @classmethod
    def from_deployment(
        cls,
        deployment: NeutralizerDeployment,
        *,
        cores: float = 8.0,
        uplink_bps: float = gbps(10),
        cost_model: Optional[CryptoCostModel] = None,
        replicas: int = 64,
    ) -> "NeutralizerFleet":
        """Mirror a packet-level anycast deployment: one site per deployed box."""
        sites = [FleetSite(name, cores=cores, uplink_bps=uplink_bps)
                 for name in deployment.router_names]
        return cls(sites, cost_model=cost_model, replicas=replicas)

    # -- health and commissioning ----------------------------------------------------

    def _rebuild_ring(self) -> None:
        serving = [site.name for site in self.sites if site.in_service]
        if not serving:
            raise TopologyError("every site of the fleet is out of service")
        positions = np.concatenate([self._site_points[name] for name in serving])
        owners = np.concatenate([
            np.full(self._site_points[name].size, self._index_by_name[name],
                    dtype=np.int64)
            for name in serving
        ])
        order = np.argsort(positions, kind="stable")
        self._ring_positions = positions[order]
        self._ring_owner_index = owners[order]
        self._ring_object = None
        self._cpu_capacity = None
        self._uplink_capacity = None
        self._service_mask = None
        self.generation += 1

    @property
    def ring(self) -> ConsistentHashRing:
        """The in-service consistent-hash ring as a full ring object.

        The vectorized paths use the cached position table directly; this
        object form (built lazily, for ``site_for``-style point lookups)
        always agrees with it because both hash the same site names.
        """
        if self._ring_object is None:
            self._ring_object = ConsistentHashRing(
                self.in_service_names, replicas=self.replicas
            )
        return self._ring_object

    def _set_site_state(self, name: str, *, healthy: Optional[bool] = None,
                        active: Optional[bool] = None) -> None:
        """Flip one site's flags, rebuilding the ring only on membership change.

        A drain of an already-failed site (or a recovery of a drained one)
        leaves the in-service set untouched, so cached problem templates stay
        valid and no churn is charged — the ring moves only when a site
        actually enters or leaves service.
        """
        site = self.site(name)
        was_serving = site.in_service
        will_be_healthy = site.healthy if healthy is None else healthy
        will_be_active = site.active if active is None else active
        will_serve = will_be_healthy and will_be_active
        # Refuse before mutating anything: a rejected transition must leave
        # the flags, the ring, and every cached array exactly as they were.
        if was_serving and not will_serve and self.n_in_service == 1:
            raise TopologyError(
                f"refusing to take {name!r} out of service: it is the "
                f"fleet's last serving site"
            )
        if will_be_active != site.active:
            self.active_version += 1
        site.healthy = will_be_healthy
        site.active = will_be_active
        if will_serve != was_serving:
            self._rebuild_ring()

    def ring_snapshot(self):
        """Freeze the current ring state (see :meth:`ConsistentHashRing.snapshot`)."""
        from ..core.anycast import RingSnapshot

        return RingSnapshot(
            positions=tuple(int(p) for p in self._ring_positions),
            owners=tuple(self.sites[i].name for i in self._ring_owner_index),
        )

    def ring_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ring's (positions, owner indices) arrays, cheap to snapshot.

        Rebuilds allocate fresh arrays, so holding the returned references
        across a membership change is a valid zero-copy snapshot — the fast
        path timelines use for per-epoch churn accounting (the tuple-based
        :meth:`ring_snapshot` stays for API/diagnostic use).
        """
        return self._ring_positions, self._ring_owner_index

    @staticmethod
    def ring_moved_fraction(before: Tuple[np.ndarray, np.ndarray],
                            after: Tuple[np.ndarray, np.ndarray]) -> float:
        """Hash-space fraction whose owner differs between two ring states.

        Same arc semantics as :meth:`repro.core.anycast.RingSnapshot.diff` —
        both delegate to :func:`repro.core.anycast.arc_moved_fraction` —
        but operating directly on the position/owner-index arrays from
        :meth:`ring_state`, with no tuple conversion.
        """
        from ..core.anycast import ConsistentHashRing, arc_moved_fraction

        return arc_moved_fraction(
            before[0], before[1], after[0], after[1],
            1 << ConsistentHashRing._SPACE_BITS,
        )

    def site(self, name: str) -> FleetSite:
        """Look up one site by name."""
        return self.sites[self.index_of_site(name)]

    def index_of_site(self, name: str) -> int:
        """A site's index into :attr:`sites` (stable across failures)."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise TopologyError(
                f"unknown site {name!r}; fleet has {', '.join(self._index_by_name)}"
            ) from None

    def fail_site(self, name: str) -> None:
        """Take a site down; its ring points are withdrawn immediately."""
        self._set_site_state(name, healthy=False)

    def restore_site(self, name: str) -> None:
        """Bring a failed site back; it reclaims exactly its old ring points
        (unless it was drained meanwhile, in which case it stays out)."""
        self._set_site_state(name, healthy=True)

    def drain_site(self, name: str) -> None:
        """Decommission a site voluntarily (autoscaler scale-down)."""
        self._set_site_state(name, active=False)

    def activate_site(self, name: str) -> None:
        """Commission a site (autoscaler scale-up after its warm-up)."""
        self._set_site_state(name, active=True)

    def health_snapshot(self) -> Tuple[Tuple[bool, bool], ...]:
        """Per-site ``(healthy, active)`` flags, in :attr:`sites` order."""
        return tuple((site.healthy, site.active) for site in self.sites)

    def restore_health(self, snapshot: Tuple[Tuple[bool, bool], ...]) -> None:
        """Reset every site's flags to ``snapshot`` (at most one ring rebuild).

        The undo operation for a sequence of failures/recoveries/autoscale
        actions — timeline runs use it to hand the fleet back in its pre-run
        state.
        """
        if len(snapshot) != len(self.sites):
            raise TopologyError("health snapshot does not match the fleet's sites")
        if snapshot == self.health_snapshot():
            return
        before = [site.in_service for site in self.sites]
        for site, (healthy, active) in zip(self.sites, snapshot):
            site.healthy = healthy
            site.active = active
        if [site.in_service for site in self.sites] != before:
            self._rebuild_ring()

    @property
    def healthy_site_names(self) -> List[str]:
        """Names of healthy sites (failed excluded; drained ones included)."""
        return [site.name for site in self.sites if site.healthy]

    @property
    def in_service_names(self) -> List[str]:
        """Names of sites currently in the ring (healthy AND active)."""
        return [site.name for site in self.sites if site.in_service]

    def in_service_mask(self) -> np.ndarray:
        """Boolean per-site in-service flags, in :attr:`sites` order.

        Cached per ring state (like the capacity arrays) — treat as
        read-only.
        """
        if self._service_mask is None:
            self._service_mask = np.array(
                [site.in_service for site in self.sites], dtype=bool
            )
        return self._service_mask

    @property
    def n_in_service(self) -> int:
        """Number of sites currently serving."""
        return int(self.in_service_mask().sum())

    # -- vectorized assignment -------------------------------------------------------

    def assign_sites(self, ring_positions: np.ndarray) -> np.ndarray:
        """Map client ring positions to site indices (into :attr:`sites`).

        The successor lookup of :meth:`ConsistentHashRing.site_for`, done for
        the whole population at once with ``searchsorted`` (wrapping past the
        last ring point back to the first).
        """
        slots = np.searchsorted(self._ring_positions, ring_positions, side="left")
        slots[slots == len(self._ring_positions)] = 0
        return self._ring_owner_index[slots]

    def assignment_segments(self, positions_sorted: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """The ring assignment of *sorted* client positions, as segments.

        Instead of looking up every client (O(n_clients log ring)), invert
        the lookup: ``searchsorted`` the ring's points into the sorted client
        positions, which costs O(ring points × log n_clients) and describes
        the whole assignment as contiguous segments.  Returns ``(cuts,
        owners)`` where clients ``cuts[i]:cuts[i + 1]`` of the sorted order
        belong to site index ``owners[i]`` (the final segment wraps past the
        last ring point back to the first).  Equivalent to
        :meth:`assign_sites` on the same positions, verified by tests;
        :class:`repro.scale.scenario.ProblemTemplate` diffs two segment
        structures to update group counts in O(moved clients) after a ring
        change.
        """
        bounds = np.searchsorted(positions_sorted, self._ring_positions, side="right")
        cuts = np.concatenate([
            np.zeros(1, dtype=np.int64),
            bounds.astype(np.int64),
            np.array([positions_sorted.size], dtype=np.int64),
        ])
        owners = np.concatenate([self._ring_owner_index, self._ring_owner_index[:1]])
        return cuts, owners

    # -- capacity --------------------------------------------------------------------

    @property
    def n_sites(self) -> int:
        """Number of sites, healthy or not (indices are stable across failures)."""
        return len(self.sites)

    def cpu_capacity_cores(self) -> np.ndarray:
        """Per-site CPU budget in cores (zero when failed or drained).

        Cached per ring state and rebuilt lazily; epoch loops call this
        every step, so treat the returned array as read-only.
        """
        if self._cpu_capacity is None:
            self._cpu_capacity = np.array(
                [site.cores if site.in_service else 0.0 for site in self.sites],
                dtype=np.float64,
            )
        return self._cpu_capacity

    def uplink_capacity_bps(self) -> np.ndarray:
        """Per-site uplink budget in bits/s (zero when failed or drained).

        Cached per ring state, like :meth:`cpu_capacity_cores`.
        """
        if self._uplink_capacity is None:
            self._uplink_capacity = np.array(
                [site.uplink_bps if site.in_service else 0.0 for site in self.sites],
                dtype=np.float64,
            )
        return self._uplink_capacity

    def data_capacity_pps(self) -> np.ndarray:
        """Per-site data-path forwarding budget in packets/s."""
        return self.cpu_capacity_cores() / self.cost_model.data_packet_cost_seconds

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        serving = self.in_service_names
        per_site = self.cost_model.data_packets_per_second(self.sites[0].cores)
        return (
            f"fleet of {len(self.sites)} sites ({len(serving)} in service), "
            f"~{per_site:,.0f} pkt/s per site data path"
        )
