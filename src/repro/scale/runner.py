"""Campaign runners: fleet-scale sweeps, timeline catalogues, Monte Carlo.

Each runner owns one configured campaign and exposes the same contract as
the experiment-runner pattern in SNIPPETS.md: ``run()`` produces a frozen
result object with a run id, timing, per-point records, and a rendered
report.  For live progress, attach an event log (``Telemetry(events=True)``)
and subscribe to the structured event stream (:mod:`repro.scale.obs`) —
the campaign emits ``campaign_started`` / ``unit_started`` /
``unit_complete`` / ``campaign_complete`` lifecycle events, so consumers
never need a poll loop; ``get_current_state()`` remains as a passive
snapshot for callers without an event log.
:class:`FleetScaleRunner` sweeps population sizes against one fleet shape
(E12, the paper's §4 scaling argument as a curve);
:class:`TimelineCampaignRunner` runs the named scenarios of
:mod:`repro.scale.catalogue` through the time-stepped fluid simulator
(E13); :class:`StochasticCampaignRunner` runs Monte-Carlo replicas of one
autoscaled scenario against seeded stochastic event sequences and
aggregates availability/churn/cost *distributions* (E14), with
:func:`run_churn_slo_frontier` sweeping the autoscaler's operating point;
:class:`LatencyCampaignRunner` is the queueing-latency variant (E15) — an
elastic demand mix, per-epoch latency percentiles through the
:mod:`repro.scale.latency` proxy, a latency-aware autoscaler, and
:func:`run_latency_cost_frontier` charting dollars against delay.
Everything the *simulation* produces is deterministic from the seed; only
the wall-clock fields reflect the machine the campaign ran on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..analysis.report import ExperimentReport, format_series
from ..exceptions import WorkloadError
from ..units import gbps
from .adversary import AdoptionModel, AdversaryGame, IspStrategy
from .autoscale import (
    Autoscaler,
    TargetLatencyPolicy,
    TargetUtilizationPolicy,
    elastic_fleet,
)
from .costmodel import CryptoCostModel, ProvisioningCostModel
from .fleet import NeutralizerFleet
from .latency import LatencyModel
from .parallel import (
    CampaignUnit,
    ProcessPoolCampaignExecutor,
    StreamingPercentiles,
)
from .population import ClientPopulation, PopulationMix, default_mix, elastic_mix
from .scenario import FluidResult, ScaleScenario
from .stochastic import (
    EventProcess,
    antithetic_uniforms,
    compile_events,
    default_processes,
    rotated_uniforms,
)
from .telemetry import Telemetry
from .timeline import FluidTimeline, LoadCurve, TimelineResult

#: Monte-Carlo seed-allocation schemes for the campaign runners.
VARIANCE_SCHEMES = ("iid", "stratified", "antithetic")


def _default_telemetry() -> Telemetry:
    """A runner's out-of-the-box telemetry: work counters, no span trace.

    Progress counters must function without any opt-in (they back
    ``get_current_state()``), but span collection on a long campaign is a
    memory commitment the caller should make explicitly by passing a
    tracing :class:`Telemetry`.
    """
    return Telemetry(trace=False)


def _progress_count(telemetry: Telemetry, counter: str, base: float,
                    fallback: int, total: Optional[int] = None) -> int:
    """Completed points/replicas, preferring the telemetry counter.

    The counter is incremented the moment a point's simulation finishes —
    before record assembly and statistics — so polling no longer lags a
    full sweep point.  ``base`` is the counter value at ``run()`` start (a
    runner can be re-run); ``fallback`` covers callers that supplied a
    metrics-less telemetry.  ``total`` clamps the answer for campaigns
    whose registry merges multi-worker deltas — a custom ``run_unit`` that
    also bumps the campaign counter would otherwise double-count and
    report more progress than there are units.
    """
    counted = int(round(telemetry.counter_value(counter) - base))
    counted = max(counted, fallback)
    if total is not None:
        counted = min(counted, int(total))
    return counted


@dataclass(frozen=True)
class _RotationTransform:
    """A picklable rng transform applying :func:`rotated_uniforms`.

    Stratified campaigns used to build this as a closure, which cannot cross
    a process boundary; campaign units carry their transform to worker
    processes, so it is a frozen dataclass with ``__call__`` instead.
    """

    offset: float

    def __call__(self, rng):
        return rotated_uniforms(rng, self.offset)


def _rotation(offset: float) -> _RotationTransform:
    """An rng transform applying :func:`rotated_uniforms` at ``offset``."""
    return _RotationTransform(offset)


def replica_seed_draws(seed: int, replicas: int,
                       variance_reduction: str) -> List[Tuple[int, object]]:
    """Per-replica (event seed, rng transform) under the chosen scheme.

    ``iid`` spawns one independent substream per replica (the classic
    allocation, bit-compatible with earlier campaigns).  ``stratified``
    shares ONE substream and rotates its uniforms by ``r / replicas`` —
    systematic sampling over the hazard quantile space.  ``antithetic``
    spawns one substream per *pair*; the second member mirrors every
    hazard draw.  All three are deterministic from the campaign seed, and
    every draw is picklable so campaign units can ship to worker processes.
    """
    if variance_reduction == "stratified":
        common = np.random.SeedSequence(seed).spawn(1)[0]
        common_seed = int(common.generate_state(1)[0])
        return [
            (common_seed, (None if replica == 0 else
                           _RotationTransform(replica / replicas)))
            for replica in range(replicas)
        ]
    if variance_reduction == "antithetic":
        pairs = (replicas + 1) // 2
        streams = np.random.SeedSequence(seed).spawn(pairs)
        draws: List[Tuple[int, object]] = []
        for replica in range(replicas):
            stream = streams[replica // 2]
            draws.append(
                (int(stream.generate_state(1)[0]),
                 antithetic_uniforms if replica % 2 else None)
            )
        return draws
    streams = np.random.SeedSequence(seed).spawn(replicas)
    return [(int(stream.generate_state(1)[0]), None) for stream in streams]

#: The default campaign sweep: three decades up to a million clients.
DEFAULT_CLIENT_COUNTS: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)


class ExperimentRunnerProtocol(Protocol):
    """The runner contract shared with the campaign harness pattern."""

    def run(self) -> "FleetScaleResult":
        """Run the campaign to completion and return its result."""
        ...

    def get_current_state(self) -> "ScaleExperimentState":
        """Snapshot campaign progress."""
        ...


#: Percentile-aggregation strategies for the Monte-Carlo runners.
AGGREGATION_MODES = ("exact", "p2")


class _UnitCampaignMixin:
    """Shared unit-decomposed campaign loop (the campaign-runner core).

    A campaign is a deterministic list of independent work units
    (:meth:`unit_specs`), a per-unit simulation whose outcome depends only
    on the unit and the campaign configuration (:meth:`run_unit`), and a
    merge that always consumes outcomes in unit-index order
    (:meth:`merge_units`) — so *completion* order can never change a
    result.  ``run()`` is the serial composition of the three; the
    process-pool executor in :mod:`repro.scale.parallel` farms the same
    units over workers and calls the same merge, which is why
    ``n_workers=1`` is bit-identical to this loop and ``n_workers=N`` is
    bit-identical to ``n_workers=1``.
    """

    #: Telemetry counter incremented once per completed unit.
    _progress_counter = "campaign.replicas_completed"
    #: Caches that cannot (and must not) cross a process boundary; workers
    #: rebuild them from shared-memory arrays in their initializer.
    _worker_dropped = ("_population", "_population_cache", "_scenario_cache",
                       "_point_runners")

    # -- campaign decomposition (per-runner) -----------------------------------------

    def unit_specs(self) -> List[CampaignUnit]:
        """The campaign's work units, in canonical (index) order."""
        raise NotImplementedError

    def run_unit(self, unit: CampaignUnit) -> object:
        """Simulate one unit; the outcome must be picklable."""
        raise NotImplementedError

    def merge_units(self, outcomes: Sequence[object], *, started_at: float,
                    duration_seconds: float) -> object:
        """Assemble the campaign result from outcomes in unit order."""
        raise NotImplementedError

    # -- hooks with per-runner overrides ----------------------------------------------

    def _prepare(self) -> None:
        """Build the state every unit shares (population, fleet, template)."""

    def _begin_campaign(self) -> None:
        """Campaign-scoped accounting that runs inside the campaign span."""

    def _campaign_span_attrs(self, n_units: int) -> Dict[str, object]:
        return {"experiment": self.experiment_id, "replicas": n_units}

    def _unit_marker(self, unit: CampaignUnit) -> object:
        """The ``_current`` progress marker shown while a unit runs."""
        return unit.label

    # -- event stream -----------------------------------------------------------------
    #
    # Campaign lifecycle events are emitted through the same helpers by the
    # serial loop below and by the process-pool executor, so the two paths
    # produce byte-identical streams.  Consumers subscribe to the log
    # (``telemetry.events.subscribe``) instead of polling
    # ``get_current_state()``; the final ``campaign_complete`` event marks
    # termination.

    def _emit_campaign_started(self, n_units: int) -> None:
        self.telemetry.emit("campaign_started",
                            experiment=self.experiment_name, units=n_units)

    def _emit_campaign_complete(self, n_units: int) -> None:
        self.telemetry.emit("campaign_complete",
                            experiment=self.experiment_name, units=n_units)

    def _run_unit_logged(self, unit: CampaignUnit) -> object:
        """``run_unit`` wrapped in unit lifecycle events (both run paths)."""
        self.telemetry.emit("unit_started", unit=unit.index, label=unit.label,
                            replica=unit.replica)
        outcome = self.run_unit(unit)
        self.telemetry.emit("unit_complete", unit=unit.index, label=unit.label)
        return outcome

    # -- worker transport -------------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        # Telemetry holds thread locks and the caches hold O(n_clients)
        # arrays; workers get a fresh registry and the shared-memory
        # population instead.
        state["telemetry"] = None
        for name in self._worker_dropped:
            if name in state:
                state[name] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.telemetry is None:
            self.telemetry = _default_telemetry()

    # -- the serial loop --------------------------------------------------------------

    def run(self):
        """Run every unit in order and merge — the reference serial path."""
        telemetry = self.telemetry
        started_at = time.time()
        self._progress_base = telemetry.counter_value(self._progress_counter)
        self._completed = 0
        self._prepare()
        units = self.unit_specs()
        outcomes: List[object] = []
        campaign_span = telemetry.span("campaign",
                                       **self._campaign_span_attrs(len(units)))
        with campaign_span:
            self._begin_campaign()
            self._emit_campaign_started(len(units))
            for unit in units:
                self._current = self._unit_marker(unit)
                outcomes.append(self._run_unit_logged(unit))
                telemetry.inc(self._progress_counter)
                self._completed += 1
        self._current = None
        result = self.merge_units(outcomes, started_at=started_at,
                                  duration_seconds=campaign_span.seconds)
        self._emit_campaign_complete(len(units))
        return result

    def run_parallel(self, *, n_workers: Optional[int] = None,
                     checkpoint_dir=None, trace_dir=None, monitor=None):
        """Run this campaign through the process-pool executor.

        Convenience for ``ProcessPoolCampaignExecutor(self, ...).run()``;
        see :mod:`repro.scale.parallel` for the determinism contract.
        ``monitor`` mounts a :class:`repro.scale.monitor.MonitorServer`
        on this campaign's telemetry for the duration of the run: live
        ``/metrics``, ``/progress``, ``/stream``, and out-of-band worker
        heartbeats, without changing a single campaign number or
        canonical event byte (see docs/observability.md).
        """
        executor = ProcessPoolCampaignExecutor(
            self, n_workers=n_workers, checkpoint_dir=checkpoint_dir,
            trace_dir=trace_dir, monitor=monitor,
        )
        return executor.run()


@dataclass(frozen=True)
class SweepRecord:
    """One sweep point: a solved population size against the fleet."""

    clients: int
    wall_seconds: float
    solver_iterations: int
    goodput_bps: Dict[str, float]
    demand_bps: Dict[str, float]
    delivered_fraction: float
    peak_cpu_utilization: float
    peak_uplink_utilization: float
    key_setup_pps: float


@dataclass(frozen=True)
class ScaleExperimentState:
    """Progress snapshot of a running campaign."""

    completed_points: int
    total_points: int
    current_clients: Optional[int]
    #: Human-readable label of the in-flight point (e.g. the scenario name
    #: of a timeline campaign); ``None`` when idle or for plain sweeps.
    current_label: Optional[str] = None

    @property
    def done(self) -> bool:
        """Whether every sweep point has been solved."""
        return self.completed_points >= self.total_points


@dataclass(frozen=True)
class FleetScaleResult:
    """Final result of one campaign run."""

    run_id: str
    experiment_name: str
    started_at: float
    completed_at: float
    duration_seconds: float
    records: Tuple[SweepRecord, ...]
    report: ExperimentReport

    @property
    def largest_point(self) -> SweepRecord:
        """The record with the most clients (the headline number)."""
        return max(self.records, key=lambda record: record.clients)


class FleetScaleRunner:
    """Sweeps client counts against a neutralizer fleet and tabulates results."""

    def __init__(
        self,
        *,
        client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
        n_sites: int = 16,
        cores_per_site: float = 8.0,
        uplink_bps: float = gbps(10),
        regions: int = 8,
        region_uplink_bps: Optional[float] = None,
        mix: Optional[PopulationMix] = None,
        cost_model: Optional[CryptoCostModel] = None,
        failed_sites: Sequence[str] = (),
        seed: int = 2006,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not client_counts or min(client_counts) <= 0:
            raise WorkloadError("the sweep needs at least one positive client count")
        self.client_counts = tuple(sorted(client_counts))
        self.n_sites = n_sites
        self.cores_per_site = cores_per_site
        self.uplink_bps = uplink_bps
        self.regions = regions
        self.region_uplink_bps = region_uplink_bps
        self.mix = mix or default_mix()
        self.cost_model = cost_model or CryptoCostModel.default()
        self.failed_sites = tuple(failed_sites)
        self.seed = seed
        self.run_id = f"fleet-scale-{seed:08x}-{n_sites}x{len(self.client_counts)}"
        self.experiment_name = "fleet_scale_sweep"
        self.telemetry = telemetry if telemetry is not None else _default_telemetry()
        self._progress_base = 0.0
        self._completed = 0
        self._current: Optional[int] = None
        self._fleet: Optional[NeutralizerFleet] = None
        self._fleet_config: Optional[tuple] = None

    # -- protocol --------------------------------------------------------------------

    def get_current_state(self) -> ScaleExperimentState:
        """Snapshot campaign progress (poll-safe, cheap)."""
        return ScaleExperimentState(
            completed_points=_progress_count(
                self.telemetry, "campaign.points_completed",
                self._progress_base, self._completed,
                total=len(self.client_counts),
            ),
            total_points=len(self.client_counts),
            current_clients=self._current,
        )

    @property
    def fleet(self) -> NeutralizerFleet:
        """The campaign's fleet, built once and shared by every sweep point.

        The fleet's consistent-hash ring (an O(sites × replicas) sorted
        insert) and its capacity arrays do not depend on the population, so
        they are constructed a single time instead of once per point; only
        the population and its group counts are per-point work.  The cache
        is keyed on the fleet-shaping attributes, so mutating e.g.
        ``failed_sites`` between runs still takes effect.
        """
        config = (self.n_sites, self.cores_per_site, self.uplink_bps,
                  self.cost_model, tuple(self.failed_sites))
        if self._fleet is None or self._fleet_config != config:
            fleet = NeutralizerFleet.build(
                self.n_sites,
                cores=self.cores_per_site,
                uplink_bps=self.uplink_bps,
                cost_model=self.cost_model,
            )
            for name in self.failed_sites:
                fleet.fail_site(name)
            self._fleet = fleet
            self._fleet_config = config
        return self._fleet

    def solve_point(self, clients: int) -> Tuple[FluidResult, float]:
        """Solve one sweep point; returns the fluid result and its wall time."""
        telemetry = self.telemetry
        point_span = telemetry.span("point", clients=clients)
        with point_span:
            with telemetry.span("population_build"):
                population = ClientPopulation(
                    clients, mix=self.mix, regions=self.regions, seed=self.seed
                )
                scenario = ScaleScenario(
                    population, self.fleet,
                    region_uplink_bps=self.region_uplink_bps
                )
            with telemetry.span("solve"):
                result = scenario.solve(telemetry=telemetry)
        return result, point_span.seconds

    def run(self) -> FleetScaleResult:
        """Run the whole sweep and render the campaign report."""
        telemetry = self.telemetry
        started_at = time.time()
        self._progress_base = telemetry.counter_value("campaign.points_completed")
        records: List[SweepRecord] = []
        self._completed = 0
        campaign_span = telemetry.span("campaign", experiment="E12",
                                       points=len(self.client_counts))
        with campaign_span:
            telemetry.emit("campaign_started",
                           experiment=self.experiment_name,
                           units=len(self.client_counts))
            for clients in self.client_counts:
                self._current = clients
                telemetry.emit("unit_started",
                               unit=len(records), label=str(clients),
                               replica=0)
                fluid, wall = self.solve_point(clients)
                telemetry.emit("unit_complete",
                               unit=len(records), label=str(clients))
                telemetry.inc("campaign.points_completed")
                records.append(SweepRecord(
                    clients=clients,
                    wall_seconds=wall,
                    solver_iterations=fluid.solver_iterations,
                    goodput_bps=dict(fluid.goodput_bps),
                    demand_bps=dict(fluid.demand_bps),
                    delivered_fraction=fluid.delivered_fraction,
                    peak_cpu_utilization=float(fluid.cpu_utilization.max()),
                    peak_uplink_utilization=float(fluid.uplink_utilization.max()),
                    key_setup_pps=fluid.key_setup_pps,
                ))
                self._completed += 1
        self._current = None
        completed_at = started_at + campaign_span.seconds

        report = self._render_report(records)
        telemetry.emit("campaign_complete",
                       experiment=self.experiment_name, units=len(records))
        return FleetScaleResult(
            run_id=self.run_id,
            experiment_name=self.experiment_name,
            started_at=started_at,
            completed_at=completed_at,
            duration_seconds=completed_at - started_at,
            records=tuple(records),
            report=report,
        )

    def _render_report(self, records: List[SweepRecord]) -> ExperimentReport:
        report = ExperimentReport(
            "E12",
            f"Fleet-scale fluid sweep ({self.n_sites} sites x "
            f"{self.cores_per_site:g} cores, seed {self.seed})",
        )
        class_names = self.mix.names
        counts = [record.clients for record in records]
        series = {
            f"{name} goodput Mb/s": [record.goodput_bps[name] / 1e6 for record in records]
            for name in class_names
        }
        series["delivered fraction"] = [record.delivered_fraction for record in records]
        report.tables.append(format_series("clients", counts, series,
                                           title="goodput vs population size"))
        report.add_table(
            ["clients", "peak cpu util", "peak uplink util", "key setups/s",
             "solver passes", "wall s"],
            [[record.clients, record.peak_cpu_utilization, record.peak_uplink_utilization,
              record.key_setup_pps, record.solver_iterations, record.wall_seconds]
             for record in records],
        )
        if self.failed_sites:
            report.add_note(f"failed sites: {', '.join(self.failed_sites)}")
        report.add_note(
            "fluid model: max-min fair allocation over regional uplinks, site "
            "uplinks and site CPUs; absolute capacity comes from the calibrated "
            "crypto cost model, so the shape (where the knee sits) is the claim"
        )
        return report


# ---------------------------------------------------------------------------
# E13: the timeline scenario catalogue
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TimelineCampaignRecord:
    """Summary of one catalogue scenario's solved timeline."""

    scenario: str
    title: str
    epochs: int
    wall_seconds: float
    solve_seconds: float
    min_delivered_fraction: float
    mean_delivered_fraction: float
    total_clients_remapped: int
    peak_remap_epoch: Optional[int]
    warm_fraction: float
    fast_fraction: float
    peak_cpu_utilization: float
    peak_uplink_utilization: float


@dataclass(frozen=True)
class TimelineCampaignResult:
    """Final result of one E13 catalogue run."""

    run_id: str
    experiment_name: str
    started_at: float
    completed_at: float
    duration_seconds: float
    records: Tuple[TimelineCampaignRecord, ...]
    #: Full per-epoch results, keyed by scenario name.
    timelines: Dict[str, TimelineResult]
    report: ExperimentReport

    @property
    def worst_scenario(self) -> TimelineCampaignRecord:
        """The scenario with the deepest delivered-fraction dip."""
        return min(self.records, key=lambda record: record.min_delivered_fraction)


@dataclass(frozen=True)
class TimelineUnitOutcome:
    """One E13 unit's outcome: the summary record plus the full timeline."""

    record: TimelineCampaignRecord
    timeline: TimelineResult


class TimelineCampaignRunner(_UnitCampaignMixin):
    """Runs every named catalogue scenario through the fluid timeline (E13)."""

    def __init__(
        self,
        *,
        scenarios: Optional[Sequence[str]] = None,
        clients: int = 100_000,
        seed: int = 2006,
        cost_model: Optional[CryptoCostModel] = None,
        flagship: str = "flash_crowd",
        series_rows: int = 16,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        from .catalogue import CATALOGUE, scenario_names

        self.scenario_names = list(scenarios) if scenarios is not None else scenario_names()
        if not self.scenario_names:
            raise WorkloadError("the campaign needs at least one scenario")
        unknown = [name for name in self.scenario_names if name not in CATALOGUE]
        if unknown:
            # Fail fast: a typo'd last entry must not surface only after the
            # earlier scenarios have been fully solved.
            raise WorkloadError(
                f"unknown scenario(s) {', '.join(unknown)}; "
                f"catalogue has {', '.join(CATALOGUE)}"
            )
        if flagship not in CATALOGUE:
            raise WorkloadError(
                f"unknown flagship scenario {flagship!r}; "
                f"catalogue has {', '.join(CATALOGUE)}"
            )
        if clients <= 0:
            raise WorkloadError("the campaign needs a positive population size")
        self.clients = int(clients)
        self.seed = seed
        self.cost_model = cost_model
        self.flagship = flagship
        self.series_rows = series_rows
        self.run_id = f"timeline-{seed:08x}-{self.clients}x{len(self.scenario_names)}"
        self.experiment_name = "timeline_catalogue"
        self.telemetry = telemetry if telemetry is not None else _default_telemetry()
        self._progress_base = 0.0
        self._completed = 0
        self._current: Optional[str] = None
        self._population_cache: Optional[ClientPopulation] = None
        self._population_key: Optional[tuple] = None

    # -- protocol --------------------------------------------------------------------

    def get_current_state(self) -> ScaleExperimentState:
        """Snapshot campaign progress (poll-safe, cheap)."""
        return ScaleExperimentState(
            completed_points=_progress_count(
                self.telemetry, "campaign.points_completed",
                self._progress_base, self._completed,
                total=len(self.scenario_names),
            ),
            total_points=len(self.scenario_names),
            current_clients=self.clients if self._current is not None else None,
            current_label=self._current,
        )

    # -- campaign decomposition -------------------------------------------------------

    _progress_counter = "campaign.points_completed"

    def _shared_population(self) -> ClientPopulation:
        """One O(n_clients) population build shared by every scenario.

        The catalogue re-derives only the fleet and events per scenario;
        the population is deterministic from (clients, seed), so the cache
        never changes results — it only removes a per-run rebuild.
        """
        key = (self.clients, self.seed)
        if self._population_cache is None or self._population_key != key:
            self._population_cache = ClientPopulation(self.clients, seed=self.seed)
            self._population_key = key
        return self._population_cache

    def _adopt_population(self, population: ClientPopulation) -> None:
        """Adopt an externally built (e.g. shared-memory) population."""
        if population.n_clients != self.clients:
            raise WorkloadError("adopted population does not match the client count")
        self._population_cache = population
        self._population_key = (self.clients, self.seed)

    def _prepare(self) -> None:
        self._shared_population()

    def _campaign_span_attrs(self, n_units: int) -> Dict[str, object]:
        return {"experiment": "E13", "points": n_units}

    def _unit_marker(self, unit: CampaignUnit) -> object:
        return unit.point

    def unit_specs(self) -> List[CampaignUnit]:
        return [
            CampaignUnit(index=index, point=name, replica=0, label=name)
            for index, name in enumerate(self.scenario_names)
        ]

    def run_unit(self, unit: CampaignUnit) -> TimelineUnitOutcome:
        from .catalogue import CATALOGUE, build_scenario

        telemetry = self.telemetry
        name = unit.point
        population = self._shared_population()
        with telemetry.span("point", scenario=name):
            timeline = build_scenario(
                name, clients=self.clients, seed=self.seed,
                cost_model=self.cost_model, population=population,
                telemetry=telemetry,
            )
            result = timeline.run()
        record = TimelineCampaignRecord(
            scenario=name,
            title=CATALOGUE[name].title,
            epochs=result.epochs,
            wall_seconds=result.wall_seconds,
            solve_seconds=result.solve_seconds_total,
            min_delivered_fraction=result.min_delivered_fraction,
            mean_delivered_fraction=result.mean_delivered_fraction,
            total_clients_remapped=result.total_clients_remapped,
            peak_remap_epoch=result.peak_remap_epoch,
            warm_fraction=result.warm_fraction,
            fast_fraction=result.fast_fraction,
            peak_cpu_utilization=float(result.cpu_utilization.max()),
            peak_uplink_utilization=float(result.uplink_utilization.max()),
        )
        return TimelineUnitOutcome(record=record, timeline=result)

    def merge_units(self, outcomes: Sequence[TimelineUnitOutcome], *,
                    started_at: float,
                    duration_seconds: float) -> TimelineCampaignResult:
        records = [outcome.record for outcome in outcomes]
        timelines = {outcome.record.scenario: outcome.timeline
                     for outcome in outcomes}
        completed_at = started_at + duration_seconds
        report = self._render_report(records, timelines)
        return TimelineCampaignResult(
            run_id=self.run_id,
            experiment_name=self.experiment_name,
            started_at=started_at,
            completed_at=completed_at,
            duration_seconds=completed_at - started_at,
            records=tuple(records),
            timelines=timelines,
            report=report,
        )

    def _render_report(self, records: List[TimelineCampaignRecord],
                       timelines: Dict[str, TimelineResult]) -> ExperimentReport:
        report = ExperimentReport(
            "E13",
            f"Timeline scenario catalogue ({self.clients:,} clients, seed {self.seed})",
        )
        report.add_table(
            ["scenario", "epochs", "min deliv", "mean deliv", "remapped",
             "warm frac", "fast frac", "peak cpu", "wall s"],
            [[record.scenario, record.epochs, record.min_delivered_fraction,
              record.mean_delivered_fraction, record.total_clients_remapped,
              record.warm_fraction, record.fast_fraction,
              record.peak_cpu_utilization,
              record.wall_seconds] for record in records],
            title="scenario summaries",
        )
        flagship = timelines.get(self.flagship)
        if flagship is not None:
            report.tables.append(format_series(
                "epoch", [record.epoch for record in flagship.records],
                flagship.series(),
                title=f"flagship timeline: {self.flagship}",
                max_rows=self.series_rows,
            ))
        report.add_note(
            "each scenario provisions its fleet relative to the population's "
            "nominal demand, so the shapes are population-size invariant"
        )
        report.add_note(
            "warm frac: epochs solved by certifying the previous allocation "
            "(bottleneck condition) — fires on steady congested load; fast "
            "frac: all epochs that skipped the fill, including uncongested "
            "epochs certified directly from the demands vector"
        )
        return report


# ---------------------------------------------------------------------------
# E14: Monte-Carlo stochastic availability campaigns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDistribution:
    """P50/P95/P99 summary of one campaign metric.

    ``tail`` records which direction is the risk: for availability-like
    metrics (``'low'``) the P95/P99 columns are the values *exceeded by* 95%
    and 99% of samples (the 5th and 1st percentiles — tail risk), while for
    cost-like metrics (``'high'``) they are the classic upper percentiles.
    ``worst`` is the corresponding extreme.
    """

    metric: str
    tail: str
    p50: float
    p95: float
    p99: float
    mean: float
    worst: float
    samples: int

    @classmethod
    def from_samples(cls, metric: str, samples: Sequence[float],
                     *, tail: str = "high") -> "MetricDistribution":
        if tail not in ("low", "high"):
            raise WorkloadError("distribution tail must be 'low' or 'high'")
        values = np.asarray(list(samples), dtype=np.float64)
        if values.size == 0:
            raise WorkloadError(f"metric {metric!r} has no samples")
        if tail == "low":
            p95, p99, worst = (np.percentile(values, 5), np.percentile(values, 1),
                               values.min())
        else:
            p95, p99, worst = (np.percentile(values, 95), np.percentile(values, 99),
                               values.max())
        return cls(metric=metric, tail=tail, p50=float(np.percentile(values, 50)),
                   p95=float(p95), p99=float(p99), mean=float(values.mean()),
                   worst=float(worst), samples=int(values.size))

    @classmethod
    def from_stream(cls, metric: str, stream: StreamingPercentiles,
                    *, tail: str = "high") -> "MetricDistribution":
        """Summary from a constant-memory P² stream (``aggregation='p2'``).

        Mean, worst and sample count are exact; the percentile rows are P²
        estimates with the tolerance documented in docs/parallel.md.
        """
        if tail not in ("low", "high"):
            raise WorkloadError("distribution tail must be 'low' or 'high'")
        if stream.count == 0:
            raise WorkloadError(f"metric {metric!r} has no samples")
        if tail == "low":
            p95, p99, worst = (stream.quantile(0.05), stream.quantile(0.01),
                               stream.minimum)
        else:
            p95, p99, worst = (stream.quantile(0.95), stream.quantile(0.99),
                               stream.maximum)
        return cls(metric=metric, tail=tail, p50=float(stream.quantile(0.5)),
                   p95=float(p95), p99=float(p99), mean=float(stream.mean),
                   worst=float(worst), samples=int(stream.count))


@dataclass(frozen=True)
class StochasticReplicaRecord:
    """One Monte-Carlo replica: a full stochastic timeline, summarized."""

    replica: int
    #: Seed the replica's event sequence was compiled from.
    event_seed: int
    events_fired: int
    mean_delivered: float
    worst_delivered: float
    #: Fraction of epochs at or above the campaign's SLO threshold.
    slo_attainment: float
    clients_remapped: int
    autoscale_actions: int
    peak_sites: int
    trough_sites: int
    #: Per-epoch mean of the serving-site count (the operating point).
    mean_sites: float
    provision_cost: float
    wall_seconds: float
    #: Latency telemetry (zeros when the campaign runs without a model).
    mean_latency_p95_seconds: float = 0.0
    worst_latency_p95_seconds: float = 0.0
    #: Mean over epochs of the client fraction violating the latency SLO.
    latency_slo_violations: float = 0.0
    #: Fraction of epochs keeping violations within the campaign's budget.
    latency_slo_attainment: float = 1.0


@dataclass(frozen=True)
class StochasticCampaignResult:
    """Final result of one E14 Monte-Carlo campaign."""

    run_id: str
    experiment_name: str
    started_at: float
    completed_at: float
    duration_seconds: float
    slo: float
    records: Tuple[StochasticReplicaRecord, ...]
    #: Named P50/P95/P99 summaries; see the runner for the metric set.
    distributions: Dict[str, MetricDistribution]
    report: ExperimentReport

    @property
    def availability(self) -> MetricDistribution:
        """The headline distribution: per-epoch delivered fraction, pooled."""
        return self.distributions["availability"]

    @property
    def worst_replica(self) -> StochasticReplicaRecord:
        """The replica with the deepest availability dip."""
        return min(self.records, key=lambda record: record.worst_delivered)

    def churn_slo_points(self) -> List[Tuple[int, float]]:
        """Per-replica (churn, SLO attainment) pairs — the raw frontier cloud."""
        return [(record.clients_remapped, record.slo_attainment)
                for record in self.records]


@dataclass(frozen=True)
class StochasticUnitOutcome:
    """One E14/E15 unit's outcome: the record plus pooled per-epoch arrays."""

    record: StochasticReplicaRecord
    delivered_fraction: np.ndarray
    latency_p95: Optional[np.ndarray]


class StochasticCampaignRunner(_UnitCampaignMixin):
    """E14: Monte-Carlo availability campaigns over stochastic fleets.

    Runs ``replicas`` independent timelines of the same scenario — one
    shared population, one autoscaled elastic fleet shape, one load curve —
    each with a freshly drawn stochastic event sequence (Poisson site
    failures, correlated regional outages, DoS attack onsets), and
    aggregates the per-replica and per-epoch metrics into P50/P95/P99
    distributions plus churn-vs-SLO numbers.  Everything is deterministic
    from ``seed``: replica event streams are spawned from it, so the same
    seed always reproduces the identical distributions, bit for bit.
    """

    def __init__(
        self,
        *,
        clients: int = 1_000_000,
        epochs: int = 200,
        replicas: int = 32,
        seed: int = 2006,
        regions: int = 8,
        max_sites: int = 40,
        nominal_sites: int = 32,
        at_utilization: float = 0.65,
        epoch_seconds: float = 900.0,
        slo: float = 0.95,
        load: Optional[LoadCurve] = None,
        processes: Optional[Sequence[EventProcess]] = None,
        autoscaler: Optional[Autoscaler] = None,
        mix: Optional[PopulationMix] = None,
        cost_model: Optional[CryptoCostModel] = None,
        provisioning_cost: Optional[ProvisioningCostModel] = None,
        population: Optional[ClientPopulation] = None,
        latency_model: Optional[LatencyModel] = None,
        latency_slo_seconds: float = 0.1,
        latency_violation_budget: float = 0.05,
        adversary: Optional[AdversaryGame] = None,
        variance_reduction: str = "iid",
        aggregation: str = "exact",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if clients <= 0 or epochs <= 0 or replicas <= 0:
            raise WorkloadError("campaign needs positive clients, epochs and replicas")
        if not 0 < slo <= 1:
            raise WorkloadError("SLO threshold must be in (0, 1]")
        if aggregation not in AGGREGATION_MODES:
            raise WorkloadError(
                f"unknown aggregation mode {aggregation!r}; "
                f"pick one of {', '.join(AGGREGATION_MODES)}"
            )
        if population is not None and population.n_clients != clients:
            raise WorkloadError("shared population does not match the client count")
        if latency_slo_seconds <= 0:
            raise WorkloadError("the latency SLO must be positive")
        if not 0 <= latency_violation_budget < 1:
            raise WorkloadError("the violation budget must be a fraction in [0, 1)")
        if variance_reduction not in VARIANCE_SCHEMES:
            raise WorkloadError(
                f"unknown variance-reduction scheme {variance_reduction!r}; "
                f"pick one of {', '.join(VARIANCE_SCHEMES)}"
            )
        self.clients = int(clients)
        self.epochs = int(epochs)
        self.replicas = int(replicas)
        self.seed = seed
        self.regions = regions
        self.max_sites = max_sites
        self.nominal_sites = nominal_sites
        self.at_utilization = at_utilization
        self.epoch_seconds = epoch_seconds
        self.slo = slo
        self.load = load
        self.processes = tuple(processes) if processes is not None else default_processes()
        self.autoscaler = autoscaler if autoscaler is not None else Autoscaler(
            TargetUtilizationPolicy(target=at_utilization, deadband=0.08),
            min_sites=max(nominal_sites // 2, 1),
            warmup_epochs=1,
            cooldown_epochs=1,
        )
        self.mix = mix
        self.cost_model = cost_model
        self.provisioning_cost = provisioning_cost
        self._population = population
        self.latency_model = latency_model
        self.latency_slo_seconds = latency_slo_seconds
        self.latency_violation_budget = latency_violation_budget
        self.adversary = adversary
        self.variance_reduction = variance_reduction
        self.aggregation = aggregation
        self.run_id = f"stochastic-{seed:08x}-{self.clients}x{self.replicas}"
        self.experiment_name = "stochastic_availability"
        self.experiment_id = "E14"
        self.telemetry = telemetry if telemetry is not None else _default_telemetry()
        self._progress_base = 0.0
        self._completed = 0
        self._current: Optional[int] = None
        self._population_cache: Optional[ClientPopulation] = None
        self._population_key: Optional[tuple] = None
        self._scenario_cache: Optional[ScaleScenario] = None

    # -- protocol --------------------------------------------------------------------

    def get_current_state(self) -> ScaleExperimentState:
        """Snapshot campaign progress (poll-safe, cheap)."""
        return ScaleExperimentState(
            completed_points=_progress_count(
                self.telemetry, "campaign.replicas_completed",
                self._progress_base, self._completed,
                total=self.replicas,
            ),
            total_points=self.replicas,
            current_clients=self.clients if self._current is not None else None,
            current_label=(f"replica {self._current}"
                           if self._current is not None else None),
        )

    def _build_fleet(self, population: ClientPopulation) -> NeutralizerFleet:
        return elastic_fleet(
            population, self.max_sites, nominal_sites=self.nominal_sites,
            at_utilization=self.at_utilization, cost_model=self.cost_model,
        )

    def _shared_scenario(self, population: ClientPopulation) -> ScaleScenario:
        """One fleet + scenario shared by every replica of this campaign.

        Replicas only ever mutate the fleet through timeline runs, which
        restore its pre-run state, so the fleet's hashed ring points and the
        scenario's O(n_clients) problem template are paid for once; each
        subsequent replica refreshes the stale template incrementally over
        zero moved clients.
        """
        if getattr(self, "_scenario_cache", None) is None or \
                self._scenario_cache.population is not population:
            fleet = self._build_fleet(population)
            self._scenario_cache = ScaleScenario(population, fleet)
        return self._scenario_cache

    def run_replica(self, population: ClientPopulation, event_seed: int,
                    rng_transform=None) -> TimelineResult:
        """One stochastic timeline: compiled events + autoscaler, solved."""
        scenario = self._shared_scenario(population)
        fleet = scenario.fleet
        events = compile_events(
            self.processes, seed=event_seed, epochs=self.epochs,
            site_names=[site.name for site in fleet.sites],
            rng_transform=rng_transform,
        )
        timeline = FluidTimeline(
            population, fleet,
            epochs=self.epochs, epoch_seconds=self.epoch_seconds,
            load=self.load, events=events,
            autoscaler=self.autoscaler,
            provisioning_cost=self.provisioning_cost,
            latency=self.latency_model,
            latency_slo_seconds=self.latency_slo_seconds,
            adversary=self.adversary,
            scenario=scenario,
            telemetry=self.telemetry,
        )
        return timeline.run()

    def _replica_draws(self) -> List[Tuple[int, object]]:
        """Per-replica (event seed, rng transform); see :func:`replica_seed_draws`."""
        return replica_seed_draws(self.seed, self.replicas,
                                  self.variance_reduction)

    # -- campaign decomposition -------------------------------------------------------

    def _shared_population(self) -> ClientPopulation:
        """The population every replica shares (built once, deterministic)."""
        if self._population is not None:
            return self._population
        key = (self.clients, self.mix, self.regions, self.seed)
        if self._population_cache is None or self._population_key != key:
            self._population_cache = ClientPopulation(
                self.clients, mix=self.mix, regions=self.regions, seed=self.seed,
            )
            self._population_key = key
        return self._population_cache

    def _adopt_population(self, population: ClientPopulation) -> None:
        """Adopt an externally built (e.g. shared-memory) population."""
        if population.n_clients != self.clients:
            raise WorkloadError("adopted population does not match the client count")
        self._population = population
        self._scenario_cache = None

    def _prepare(self) -> None:
        # Warm the shared ring sort before timing replicas.
        self._shared_population().ring_sorted()

    def _begin_campaign(self) -> None:
        self.telemetry.inc(f"campaign.variance_mode.{self.variance_reduction}")

    def _unit_marker(self, unit: CampaignUnit) -> object:
        return unit.replica

    def unit_specs(self) -> List[CampaignUnit]:
        draws = self._replica_draws()
        return [
            CampaignUnit(index=replica, point=None, replica=replica,
                         label=f"replica {replica}", event_seed=event_seed,
                         rng_transform=rng_transform)
            for replica, (event_seed, rng_transform) in enumerate(draws)
        ]

    def run_unit(self, unit: CampaignUnit) -> StochasticUnitOutcome:
        telemetry = self.telemetry
        population = self._shared_population()
        replica_span = telemetry.span("replica", replica=unit.replica,
                                      event_seed=unit.event_seed)
        with replica_span:
            result = self.run_replica(population, unit.event_seed,
                                      unit.rng_transform)
        wall = replica_span.seconds
        latency_p95 = None
        latency_fields = {}
        if self.latency_model is not None:
            latency_p95 = result.latency_p95_seconds
            latency_fields = dict(
                mean_latency_p95_seconds=float(latency_p95.mean()),
                worst_latency_p95_seconds=float(latency_p95.max()),
                latency_slo_violations=result.mean_latency_slo_violations,
                latency_slo_attainment=result.latency_slo_attainment(
                    self.latency_violation_budget),
            )
        record = StochasticReplicaRecord(
            replica=unit.replica,
            event_seed=unit.event_seed,
            events_fired=sum(len(record.events)
                             for record in result.records),
            mean_delivered=result.mean_delivered_fraction,
            worst_delivered=result.min_delivered_fraction,
            slo_attainment=result.slo_attainment(self.slo),
            clients_remapped=result.total_clients_remapped,
            autoscale_actions=result.total_autoscale_actions,
            peak_sites=int(result.sites_in_service.max()),
            trough_sites=int(result.sites_in_service.min()),
            mean_sites=float(result.sites_in_service.mean()),
            provision_cost=result.total_provision_cost,
            wall_seconds=wall,
            **latency_fields,
        )
        return StochasticUnitOutcome(record=record,
                                     delivered_fraction=result.delivered_fraction,
                                     latency_p95=latency_p95)

    def _distribution(self, metric: str, samples, *,
                      tail: str) -> MetricDistribution:
        """One summary honouring the campaign's ``aggregation`` mode.

        ``exact`` takes full-array numpy percentiles — bit-identical to the
        historical serial aggregation.  ``p2`` folds the same samples, in
        the same (unit) order, through constant-memory P² estimators.
        """
        if self.aggregation == "exact":
            return MetricDistribution.from_samples(metric, samples, tail=tail)
        stream = StreamingPercentiles()
        stream.extend(np.asarray(
            samples if isinstance(samples, np.ndarray) else list(samples),
            dtype=np.float64,
        ))
        return MetricDistribution.from_stream(metric, stream, tail=tail)

    def merge_units(self, outcomes: Sequence[StochasticUnitOutcome], *,
                    started_at: float,
                    duration_seconds: float) -> StochasticCampaignResult:
        records = [outcome.record for outcome in outcomes]
        pooled_delivered = [outcome.delivered_fraction for outcome in outcomes]
        pooled_latency_p95 = [outcome.latency_p95 for outcome in outcomes
                              if outcome.latency_p95 is not None]
        completed_at = started_at + duration_seconds

        distributions = {
            "availability": self._distribution(
                "availability", np.concatenate(pooled_delivered), tail="low"),
            "replica availability": self._distribution(
                "replica availability",
                [record.mean_delivered for record in records], tail="low"),
            "worst-epoch availability": self._distribution(
                "worst-epoch availability",
                [record.worst_delivered for record in records], tail="low"),
            f"slo attainment (>= {self.slo:g})": self._distribution(
                f"slo attainment (>= {self.slo:g})",
                [record.slo_attainment for record in records], tail="low"),
            "remap churn (client-moves)": self._distribution(
                "remap churn (client-moves)",
                [float(record.clients_remapped) for record in records], tail="high"),
            "provision cost (usd)": self._distribution(
                "provision cost (usd)",
                [record.provision_cost for record in records], tail="high"),
        }
        if self.latency_model is not None:
            # Latency percentiles are upper-tail risks: the P99 row is the
            # per-epoch P95 delay only 1% of epochs exceed.
            distributions["latency p95 (ms)"] = self._distribution(
                "latency p95 (ms)",
                np.concatenate(pooled_latency_p95) * 1e3, tail="high")
            distributions["replica worst p95 (ms)"] = self._distribution(
                "replica worst p95 (ms)",
                [record.worst_latency_p95_seconds * 1e3 for record in records],
                tail="high")
            distributions[
                f"latency slo attainment (<= {self.latency_violation_budget:g} viol)"
            ] = self._distribution(
                f"latency slo attainment (<= {self.latency_violation_budget:g} viol)",
                [record.latency_slo_attainment for record in records], tail="low")
        report = self._render_report(records, distributions)
        return StochasticCampaignResult(
            run_id=self.run_id,
            experiment_name=self.experiment_name,
            started_at=started_at,
            completed_at=completed_at,
            duration_seconds=completed_at - started_at,
            slo=self.slo,
            records=tuple(records),
            distributions=distributions,
            report=report,
        )

    def _campaign_title(self) -> str:
        return (f"Stochastic availability campaign ({self.clients:,} clients, "
                f"{self.replicas} replicas x {self.epochs} epochs, seed {self.seed})")

    def _render_report(self, records: List[StochasticReplicaRecord],
                       distributions: Dict[str, MetricDistribution]) -> ExperimentReport:
        report = ExperimentReport(self.experiment_id, self._campaign_title())
        report.add_table(
            ["metric", "p50", "p95", "p99", "mean", "worst", "samples"],
            [[dist.metric, dist.p50, dist.p95, dist.p99, dist.mean, dist.worst,
              dist.samples] for dist in distributions.values()],
            title="distributions (availability-like rows quote tail-risk percentiles)",
        )
        if self.latency_model is not None:
            report.add_table(
                ["replica", "events", "mean deliv", "p95 ms", "worst p95 ms",
                 "lat slo att", "churn", "sites lo-hi", "cost usd"],
                [[record.replica, record.events_fired, record.mean_delivered,
                  record.mean_latency_p95_seconds * 1e3,
                  record.worst_latency_p95_seconds * 1e3,
                  record.latency_slo_attainment,
                  record.clients_remapped,
                  f"{record.trough_sites}-{record.peak_sites}",
                  record.provision_cost] for record in records],
                title="latency vs cost, replica by replica",
            )
            report.add_note(
                f"latency proxy: M/G/1-PS with service CV "
                f"{self.latency_model.service_cv:g}, geometry base RTT; SLO "
                f"{self.latency_slo_seconds * 1e3:g} ms at a "
                f"{self.latency_violation_budget:g} client-violation budget"
            )
        report.add_table(
            ["replica", "events", "mean deliv", "worst deliv", "slo att",
             "churn", "actions", "sites lo-hi", "cost usd"],
            [[record.replica, record.events_fired, record.mean_delivered,
              record.worst_delivered, record.slo_attainment,
              record.clients_remapped, record.autoscale_actions,
              f"{record.trough_sites}-{record.peak_sites}",
              record.provision_cost] for record in records],
            title="churn vs SLO, replica by replica",
        )
        report.add_note(
            f"elastic fleet: {self.nominal_sites} nominal of {self.max_sites} max "
            f"sites at {self.at_utilization:g} target utilization; autoscaler "
            f"policy {type(self.autoscaler.policy).__name__}, warm-up "
            f"{self.autoscaler.warmup_epochs} epoch(s), cooldown "
            f"{self.autoscaler.cooldown_epochs}"
        )
        report.add_note(
            "every replica replays the same load against a fresh seeded event "
            "sequence (Poisson failures, correlated outages, attack onsets); "
            "identical campaign seeds reproduce identical distributions"
        )
        if self.variance_reduction != "iid":
            report.add_note(
                f"replica seeds allocated with the {self.variance_reduction!r} "
                f"variance-reduction scheme (marginals exact, replicas "
                f"correlated to sharpen the estimator)"
            )
        return report


def _run_frontier_point(runner, point_slug: str, *, n_workers: int,
                        checkpoint_dir) -> object:
    """Run one frontier point, through the executor when asked to.

    Each point gets its own checkpoint subdirectory (one run-table per
    campaign); the plain ``runner.run()`` path stays untouched when neither
    knob is set, so existing callers pay nothing.
    """
    if n_workers == 1 and checkpoint_dir is None:
        return runner.run()
    point_dir = (None if checkpoint_dir is None
                 else Path(checkpoint_dir) / point_slug)
    return runner.run_parallel(n_workers=n_workers, checkpoint_dir=point_dir)


@dataclass(frozen=True)
class FrontierPoint:
    """One autoscaler operating point on the churn-vs-SLO frontier."""

    target_utilization: float
    availability_p50: float
    availability_p99: float
    mean_slo_attainment: float
    mean_churn: float
    mean_cost_usd: float


@dataclass(frozen=True)
class FrontierResult:
    """The churn-vs-SLO frontier swept over autoscaler utilization targets."""

    points: Tuple[FrontierPoint, ...]
    report: ExperimentReport


#: The churn-vs-SLO frontier table, column by column — one definition
#: shared by the E14 report (quoted in EXPERIMENTS.md) and the live
#: dashboard (``tools/watch_campaign.py``), via
#: :func:`repro.analysis.report.format_frontier_table`.
CHURN_SLO_FRONTIER_COLUMNS: Tuple[Tuple[str, object], ...] = (
    ("target util", "target_utilization"),
    ("avail p50", "availability_p50"),
    ("avail p99", "availability_p99"),
    ("slo att", "mean_slo_attainment"),
    ("mean churn", "mean_churn"),
    ("mean cost usd", "mean_cost_usd"),
)


def run_churn_slo_frontier(
    *,
    targets: Sequence[float] = (0.45, 0.6, 0.75, 0.9),
    clients: int = 200_000,
    epochs: int = 96,
    replicas: int = 8,
    seed: int = 2006,
    slo: float = 0.95,
    n_workers: int = 1,
    checkpoint_dir=None,
    **campaign_kwargs,
) -> FrontierResult:
    """Sweep the autoscaler's utilization target and chart churn against SLO.

    Running hotter (higher target) saves sites and dollars but eats the
    headroom that absorbs failures — SLO attainment falls; running colder
    buys availability with money and scale churn.  One shared population
    feeds every point; each point is a full (smaller) E14 campaign with the
    same seed, so the frontier isolates the policy knob from the noise.
    ``n_workers``/``checkpoint_dir`` route each point through the
    process-pool executor (deterministic and resumable; see
    docs/parallel.md) without changing any number in the table.
    """
    if not targets:
        raise WorkloadError("the frontier needs at least one utilization target")
    population = ClientPopulation(
        clients, mix=campaign_kwargs.get("mix"),
        regions=campaign_kwargs.get("regions", 8), seed=seed,
    )
    points: List[FrontierPoint] = []
    for target in targets:
        runner = StochasticCampaignRunner(
            clients=clients, epochs=epochs, replicas=replicas, seed=seed,
            slo=slo, at_utilization=target, population=population,
            **campaign_kwargs,
        )
        campaign = _run_frontier_point(runner, f"target-{target:g}",
                                       n_workers=n_workers,
                                       checkpoint_dir=checkpoint_dir)
        availability = campaign.availability
        points.append(FrontierPoint(
            target_utilization=target,
            availability_p50=availability.p50,
            availability_p99=availability.p99,
            mean_slo_attainment=float(np.mean(
                [record.slo_attainment for record in campaign.records])),
            mean_churn=float(np.mean(
                [record.clients_remapped for record in campaign.records])),
            mean_cost_usd=float(np.mean(
                [record.provision_cost for record in campaign.records])),
        ))
    report = ExperimentReport(
        "E14",
        f"Churn-vs-SLO frontier ({clients:,} clients, {replicas} replicas "
        f"per target, seed {seed})",
    )
    report.add_frontier_table(
        CHURN_SLO_FRONTIER_COLUMNS, points,
        title=f"frontier (SLO threshold {slo:g})",
    )
    report.add_note(
        "hotter fleets are cheaper but lose SLO headroom to the same failure "
        "sequences; the elbow is where the deployment should sit"
    )
    return FrontierResult(points=tuple(points), report=report)


# ---------------------------------------------------------------------------
# E15: Monte-Carlo queueing-latency campaigns (elastic mix, latency SLO)
# ---------------------------------------------------------------------------


class LatencyCampaignRunner(StochasticCampaignRunner):
    """E15: Monte-Carlo latency campaigns on an elastic-demand fleet.

    The same machinery as E14 — seeded stochastic event sequences against an
    autoscaled fleet, many replicas, distributions — but the question is
    *delay*, not delivered fraction: the population mixes TCP-like elastic
    web/video with inelastic VoIP (:func:`repro.scale.population.elastic_mix`),
    every epoch maps utilization to client-weighted path-delay percentiles
    through the :class:`repro.scale.latency.LatencyModel` proxy, and the
    default controller is the latency-aware
    :class:`repro.scale.autoscale.TargetLatencyPolicy` holding the P95 on
    target.  Results add pooled P50/P95/P99 latency distributions and
    per-replica latency-SLO attainment next to the availability numbers.
    """

    def __init__(
        self,
        *,
        target_p95_seconds: float = 0.06,
        latency_model: Optional[LatencyModel] = None,
        latency_slo_seconds: Optional[float] = None,
        mix: Optional[PopulationMix] = None,
        autoscaler: Optional[Autoscaler] = None,
        nominal_sites: int = 32,
        max_sites: int = 40,
        **kwargs,
    ) -> None:
        if target_p95_seconds <= 0:
            raise WorkloadError("the latency target must be positive")
        model = latency_model if latency_model is not None else LatencyModel()
        slo_seconds = (latency_slo_seconds if latency_slo_seconds is not None
                       else target_p95_seconds * 1.5)
        if autoscaler is None:
            # Latency control wants a calm loop: queueing delay reacts
            # nonlinearly to every site added or drained, so the default
            # controller holds two epochs between actions.
            autoscaler = Autoscaler(
                TargetLatencyPolicy.for_model(
                    model, target_p95_seconds=target_p95_seconds,
                ),
                min_sites=max(nominal_sites // 2, 1),
                warmup_epochs=1,
                cooldown_epochs=2,
            )
        super().__init__(
            latency_model=model,
            latency_slo_seconds=slo_seconds,
            mix=mix if mix is not None else elastic_mix(),
            autoscaler=autoscaler,
            nominal_sites=nominal_sites,
            max_sites=max_sites,
            **kwargs,
        )
        self.target_p95_seconds = target_p95_seconds
        self.run_id = f"latency-{self.seed:08x}-{self.clients}x{self.replicas}"
        self.experiment_name = "latency_slo"
        self.experiment_id = "E15"

    def _campaign_title(self) -> str:
        return (f"Queueing-latency campaign ({self.clients:,} clients, "
                f"{self.replicas} replicas x {self.epochs} epochs, elastic mix, "
                f"P95 target {self.target_p95_seconds * 1e3:g} ms, seed {self.seed})")


@dataclass(frozen=True)
class LatencyFrontierPoint:
    """One latency-target operating point on the latency-vs-cost frontier."""

    target_p95_seconds: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    mean_slo_attainment: float
    mean_sites: float
    mean_cost_usd: float


@dataclass(frozen=True)
class LatencyFrontierResult:
    """The latency-vs-cost frontier swept over P95 delay targets."""

    points: Tuple[LatencyFrontierPoint, ...]
    report: ExperimentReport


#: The latency-vs-cost frontier table; same shared-definition contract
#: as :data:`CHURN_SLO_FRONTIER_COLUMNS`.
LATENCY_COST_FRONTIER_COLUMNS: Tuple[Tuple[str, object], ...] = (
    ("target ms", lambda point: point.target_p95_seconds * 1e3),
    ("p50 ms", "latency_p50_ms"),
    ("p95 ms", "latency_p95_ms"),
    ("p99 ms", "latency_p99_ms"),
    ("lat slo att", "mean_slo_attainment"),
    ("mean sites", "mean_sites"),
    ("mean cost usd", "mean_cost_usd"),
)


def run_latency_cost_frontier(
    *,
    targets_p95_seconds: Sequence[float] = (0.045, 0.055, 0.07, 0.1),
    clients: int = 200_000,
    epochs: int = 96,
    replicas: int = 8,
    seed: int = 2006,
    n_workers: int = 1,
    checkpoint_dir=None,
    **campaign_kwargs,
) -> LatencyFrontierResult:
    """Sweep the latency-aware autoscaler's P95 target: dollars vs delay.

    A tight delay target forces the controller to hold utilization low —
    queueing delay is convex, so the last few milliseconds are bought with
    disproportionately many sites; a loose target lets the fleet run hot
    and cheap until the tail blows through the SLO.  One shared population
    feeds every point; each point is a full (smaller) E15 campaign with the
    same seed, so the frontier isolates the latency knob from the noise.
    """
    if not targets_p95_seconds:
        raise WorkloadError("the frontier needs at least one latency target")
    population = ClientPopulation(
        clients, mix=campaign_kwargs.get("mix") or elastic_mix(),
        regions=campaign_kwargs.get("regions", 8), seed=seed,
    )
    campaign_kwargs.setdefault("mix", population.mix)
    points: List[LatencyFrontierPoint] = []
    for target in targets_p95_seconds:
        runner = LatencyCampaignRunner(
            target_p95_seconds=target, clients=clients, epochs=epochs,
            replicas=replicas, seed=seed, population=population,
            **campaign_kwargs,
        )
        campaign = _run_frontier_point(runner, f"p95-{target:g}",
                                       n_workers=n_workers,
                                       checkpoint_dir=checkpoint_dir)
        pooled = campaign.distributions["latency p95 (ms)"]
        points.append(LatencyFrontierPoint(
            target_p95_seconds=target,
            latency_p50_ms=pooled.p50,
            latency_p95_ms=pooled.p95,
            latency_p99_ms=pooled.p99,
            mean_slo_attainment=float(np.mean(
                [record.latency_slo_attainment for record in campaign.records])),
            mean_sites=float(np.mean(
                [record.mean_sites for record in campaign.records])),
            mean_cost_usd=float(np.mean(
                [record.provision_cost for record in campaign.records])),
        ))
    report = ExperimentReport(
        "E15",
        f"Latency-vs-cost frontier ({clients:,} clients, {replicas} replicas "
        f"per target, seed {seed})",
    )
    report.add_frontier_table(
        LATENCY_COST_FRONTIER_COLUMNS, points,
        title="frontier (per-epoch pooled P95 path delay)",
    )
    report.add_note(
        "queueing delay is convex in utilization: the last milliseconds of "
        "P95 cost disproportionately many sites — the elbow prices the SLO"
    )
    return LatencyFrontierResult(points=tuple(points), report=report)


# ---------------------------------------------------------------------------
# Variance-reduction measurement (stratified / antithetic vs iid)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarianceComparisonResult:
    """Measured estimator spread of each Monte-Carlo seed-allocation scheme."""

    #: Per scheme: std over batches of the campaign's mean-availability
    #: estimate (lower = sharper at the same replica budget).
    mean_estimator_std: Dict[str, float]
    #: Per scheme: std over batches of the pooled tail-risk (P95) estimate.
    tail_estimator_std: Dict[str, float]
    report: ExperimentReport

    def reduction_vs_iid(self, scheme: str) -> float:
        """Std of ``scheme``'s mean estimator relative to iid (1.0 = no gain)."""
        if scheme not in self.mean_estimator_std:
            raise WorkloadError(
                f"scheme {scheme!r} was not part of this comparison "
                f"(ran: {', '.join(self.mean_estimator_std)})"
            )
        base = self.mean_estimator_std.get("iid")
        if base is None:
            raise WorkloadError(
                "this comparison ran without the 'iid' scheme, so there is "
                "no baseline to quote a reduction against"
            )
        if base <= 0:
            return 1.0  # zero iid spread: nothing left to reduce
        return self.mean_estimator_std[scheme] / base


def compare_variance_reduction(
    *,
    clients: int = 20_000,
    epochs: int = 60,
    replicas: int = 8,
    batches: int = 6,
    seed: int = 2006,
    schemes: Sequence[str] = VARIANCE_SCHEMES,
    **campaign_kwargs,
) -> VarianceComparisonResult:
    """Measure what stratified seeds and antithetic pairs actually buy.

    Runs ``batches`` independent campaigns per scheme (each a full, smaller
    E14) and compares the spread of the *estimators* across batches: the
    campaign's mean availability and its pooled tail-risk P95.  A scheme
    whose estimator spread is smaller delivers sharper availability tails at
    the same replica budget — the measured numbers EXPERIMENTS.md quotes.
    One shared population feeds every campaign, so the schemes differ only
    in how replica randomness is allocated.
    """
    if batches < 2:
        raise WorkloadError("variance comparison needs at least two batches")
    unknown = set(schemes) - set(VARIANCE_SCHEMES)
    if unknown:
        raise WorkloadError(f"unknown variance-reduction scheme(s) {sorted(unknown)}")
    population = ClientPopulation(
        clients, mix=campaign_kwargs.get("mix"),
        regions=campaign_kwargs.get("regions", 8), seed=seed,
    )
    mean_estimates: Dict[str, List[float]] = {scheme: [] for scheme in schemes}
    tail_estimates: Dict[str, List[float]] = {scheme: [] for scheme in schemes}
    for scheme in schemes:
        for batch in range(batches):
            runner = StochasticCampaignRunner(
                clients=clients, epochs=epochs, replicas=replicas,
                seed=seed + 1009 * batch, population=population,
                variance_reduction=scheme, **campaign_kwargs,
            )
            campaign = runner.run()
            mean_estimates[scheme].append(float(np.mean(
                [record.mean_delivered for record in campaign.records])))
            tail_estimates[scheme].append(campaign.availability.p95)
    mean_std = {scheme: float(np.std(values, ddof=1))
                for scheme, values in mean_estimates.items()}
    tail_std = {scheme: float(np.std(values, ddof=1))
                for scheme, values in tail_estimates.items()}

    report = ExperimentReport(
        "E14v",
        f"Variance-reduction comparison ({clients:,} clients, {replicas} "
        f"replicas x {batches} batches per scheme, seed {seed})",
    )
    report.add_table(
        ["scheme", "mean avail (avg)", "est. std", "tail p95 est. std",
         "std vs iid"],
        [[scheme,
          float(np.mean(mean_estimates[scheme])),
          mean_std[scheme],
          tail_std[scheme],
          # nan, not 1.0: "no baseline" must not read as "no gain".
          mean_std[scheme] / mean_std["iid"] if mean_std.get("iid")
          else float("nan")]
         for scheme in schemes],
        title="estimator spread across batches (lower std = sharper)",
    )
    report.add_note(
        "each scheme keeps every replica's marginal distribution exact; "
        "stratified rotation covers the hazard quantile space systematically, "
        "antithetic pairs cancel hazard noise within a pair"
    )
    return VarianceComparisonResult(
        mean_estimator_std=mean_std, tail_estimator_std=tail_std, report=report,
    )


# ---------------------------------------------------------------------------
# E16: adaptive ISP discrimination vs. neutralizer adoption (the arms race)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdversaryReplicaRecord:
    """One Monte-Carlo replica of one (aggressiveness, sensitivity) point."""

    replica: int
    event_seed: int
    final_adoption: float
    mean_discriminated_share: float
    #: Equilibrium (last-quarter mean) delivered fraction of target classes
    #: against their offered demand — the ISP's achieved suppression.
    equilibrium_target_delivered: float
    clients_rekeyed: int
    #: Last-epoch P95 path delay of the first target class, split.
    exposed_p95_seconds: float
    neutralized_p95_seconds: float
    wall_seconds: float


@dataclass(frozen=True)
class AdversaryPointRecord:
    """One (aggressiveness, sensitivity) sweep point, replicas aggregated."""

    aggressiveness: float
    sensitivity: float
    replicas: int
    final_adoption: float
    mean_discriminated_share: float
    equilibrium_target_delivered: float
    #: 1 - equilibrium_target_delivered: the harm the ISP actually lands.
    equilibrium_target_harm: float
    total_clients_rekeyed: float
    exposed_p95_seconds: float
    neutralized_p95_seconds: float


def self_defeating_points(
    points: Sequence[AdversaryPointRecord],
) -> List[AdversaryPointRecord]:
    """The sweep points where throttling harder LOWERED the harm landed."""
    by_sensitivity: Dict[float, List[AdversaryPointRecord]] = {}
    for point in points:
        by_sensitivity.setdefault(point.sensitivity, []).append(point)
    out: List[AdversaryPointRecord] = []
    for sensitivity in sorted(by_sensitivity):
        best_below = 0.0
        for point in sorted(by_sensitivity[sensitivity],
                            key=lambda p: p.aggressiveness):
            if point.equilibrium_target_harm < best_below - 1e-9:
                out.append(point)
            best_below = max(best_below, point.equilibrium_target_harm)
    return out


@dataclass(frozen=True)
class AdversaryCampaignResult:
    """Final result of one E16 arms-race campaign."""

    run_id: str
    experiment_name: str
    started_at: float
    completed_at: float
    duration_seconds: float
    points: Tuple[AdversaryPointRecord, ...]
    #: Per-point replica records, keyed by (aggressiveness, sensitivity).
    records: Dict[Tuple[float, float], Tuple[AdversaryReplicaRecord, ...]]
    report: ExperimentReport

    def frontier(self, sensitivity: float) -> List[AdversaryPointRecord]:
        """The sweep points of one adoption sensitivity, by aggressiveness."""
        return sorted(
            [point for point in self.points if point.sensitivity == sensitivity],
            key=lambda point: point.aggressiveness,
        )

    def self_defeating_points(self) -> List[AdversaryPointRecord]:
        """Points where throttling harder LOWERED the harm the ISP landed.

        The paper's qualitative claim as a set: a point is self-defeating
        when some *less* aggressive point of the same adoption sensitivity
        achieved strictly more equilibrium target-class harm — escalation
        bought adoption instead of suppression.
        """
        return self_defeating_points(self.points)


class AdversaryCampaignRunner(_UnitCampaignMixin):
    """E16: the discrimination arms race swept over both sides' dispositions.

    Sweeps ISP ``aggressiveness`` × client adoption ``sensitivities`` on one
    shared population and fleet; each grid point runs ``replicas_per_point``
    Monte-Carlo replicas against seeded stochastic failure/attack sequences
    (the arms race does not get a quiet fleet to play on).  Per point it
    reports the equilibrium adoption fraction, the discriminated traffic
    share, the harm actually landed on the target classes, and the
    exposed-vs-neutralized P95 split — the calibrated frontier behind the
    paper's claim that discrimination becomes self-defeating once
    neutralization is cheap.  Deterministic from ``seed``.
    """

    def __init__(
        self,
        *,
        clients: int = 1_000_000,
        epochs: int = 200,
        aggressiveness: Sequence[float] = (0.0, 0.35, 0.7, 1.0),
        sensitivities: Sequence[float] = (2.0, 12.0),
        replicas_per_point: int = 4,
        seed: int = 2006,
        regions: int = 8,
        n_sites: int = 24,
        headroom: float = 1.3,
        epoch_seconds: float = 900.0,
        target_classes: Tuple[str, ...] = ("video", "web"),
        adoption_cost: float = 0.05,
        isp: Optional[IspStrategy] = None,
        adoption: Optional[AdoptionModel] = None,
        latency_model: Optional[LatencyModel] = None,
        latency_slo_seconds: float = 0.08,
        processes: Optional[Sequence[EventProcess]] = None,
        mix: Optional[PopulationMix] = None,
        cost_model: Optional[CryptoCostModel] = None,
        population: Optional[ClientPopulation] = None,
        variance_reduction: str = "iid",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if clients <= 0 or epochs <= 0 or replicas_per_point <= 0:
            raise WorkloadError("campaign needs positive clients, epochs and replicas")
        if not aggressiveness or not sensitivities:
            raise WorkloadError("the sweep needs aggressiveness and sensitivity values")
        if population is not None and population.n_clients != clients:
            raise WorkloadError("shared population does not match the client count")
        if variance_reduction not in VARIANCE_SCHEMES:
            # Fail here, not after the expensive population build inside run().
            raise WorkloadError(
                f"unknown variance-reduction scheme {variance_reduction!r}; "
                f"pick one of {', '.join(VARIANCE_SCHEMES)}"
            )
        self.clients = int(clients)
        self.epochs = int(epochs)
        self.aggressiveness = tuple(aggressiveness)
        self.sensitivities = tuple(sensitivities)
        self.replicas_per_point = int(replicas_per_point)
        self.seed = seed
        self.regions = regions
        self.n_sites = n_sites
        self.headroom = headroom
        self.epoch_seconds = epoch_seconds
        #: Per-point strategies/models are derived from these bases with the
        #: swept knob replaced, so every other disposition stays fixed
        #: across the grid.  The frontier isolates classifier-targeted
        #: discrimination: the blanket endgame is a catalogue scenario, not
        #: a sweep axis.
        self.base_isp = isp if isp is not None else IspStrategy(
            target_classes=tuple(target_classes), allow_blanket=False,
        )
        self.base_adoption = adoption if adoption is not None else AdoptionModel(
            adoption_cost=adoption_cost,
        )
        #: The harm ledger and the report must describe the strategy that
        #: actually runs, so an explicit ``isp``/``adoption`` overrides the
        #: scalar convenience arguments rather than silently coexisting
        #: with them.
        self.target_classes = self.base_isp.target_classes
        self.adoption_cost = self.base_adoption.adoption_cost
        self.latency_model = (latency_model if latency_model is not None
                              else LatencyModel())
        self.latency_slo_seconds = latency_slo_seconds
        self.processes = (tuple(processes) if processes is not None
                          else default_processes())
        self.mix = mix
        self.cost_model = cost_model
        self._population = population
        self.variance_reduction = variance_reduction
        self.total_replicas = (len(self.aggressiveness) * len(self.sensitivities)
                               * self.replicas_per_point)
        self.run_id = f"adversary-{seed:08x}-{self.clients}x{self.total_replicas}"
        self.experiment_name = "adversary_arms_race"
        self.experiment_id = "E16"
        self.telemetry = telemetry if telemetry is not None else _default_telemetry()
        self._progress_base = 0.0
        self._completed = 0
        self._current: Optional[str] = None
        self._population_cache: Optional[ClientPopulation] = None
        self._population_key: Optional[tuple] = None
        self._scenario_cache: Optional[ScaleScenario] = None
        self._point_runners: Dict[Tuple[float, float],
                                  StochasticCampaignRunner] = {}

    # -- protocol --------------------------------------------------------------------

    def get_current_state(self) -> ScaleExperimentState:
        """Snapshot campaign progress (poll-safe, cheap)."""
        return ScaleExperimentState(
            completed_points=_progress_count(
                self.telemetry, "campaign.replicas_completed",
                self._progress_base, self._completed,
                total=self.total_replicas,
            ),
            total_points=self.total_replicas,
            current_clients=self.clients if self._current is not None else None,
            current_label=self._current,
        )

    def _game(self, aggressiveness: float, sensitivity: float) -> AdversaryGame:
        from dataclasses import replace

        return AdversaryGame(
            isp=replace(self.base_isp, aggressiveness=aggressiveness),
            adoption=replace(self.base_adoption, sensitivity=sensitivity),
        )

    def _point_runner(self, population: ClientPopulation,
                      game: AdversaryGame) -> "StochasticCampaignRunner":
        runner = StochasticCampaignRunner(
            clients=self.clients, epochs=self.epochs,
            replicas=self.replicas_per_point, seed=self.seed,
            regions=self.regions, epoch_seconds=self.epoch_seconds,
            processes=self.processes,
            # The arms race plays on a statically provisioned fleet: the
            # autoscaler would otherwise hide throttling harm behind
            # capacity moves.  min==max pins the controller.
            max_sites=self.n_sites, nominal_sites=self.n_sites,
            at_utilization=1.0 / self.headroom,
            autoscaler=Autoscaler(
                TargetUtilizationPolicy(target=0.99, deadband=0.98),
                min_sites=self.n_sites, max_sites=self.n_sites,
            ),
            mix=self.mix, cost_model=self.cost_model, population=population,
            latency_model=self.latency_model,
            latency_slo_seconds=self.latency_slo_seconds,
            adversary=game,
            variance_reduction=self.variance_reduction,
            # Replica timelines run through the point runner, so its
            # telemetry must be the campaign's for spans and counters to
            # land in one place.
            telemetry=self.telemetry,
        )
        # Share one fleet + template across every grid point: timelines
        # restore fleet state, and the fleet shape does not depend on the
        # game, so the O(n_clients) build is paid exactly once per campaign.
        runner._scenario_cache = self._scenario_cache
        return runner

    # -- campaign decomposition -------------------------------------------------------

    def _shared_population(self) -> ClientPopulation:
        """The population every grid point shares (built once, deterministic)."""
        if self._population is not None:
            return self._population
        key = (self.clients, self.mix, self.regions, self.seed)
        if self._population_cache is None or self._population_key != key:
            self._population_cache = ClientPopulation(
                self.clients, mix=self.mix, regions=self.regions, seed=self.seed,
            )
            self._population_key = key
        return self._population_cache

    def _adopt_population(self, population: ClientPopulation) -> None:
        """Adopt an externally built (e.g. shared-memory) population."""
        if population.n_clients != self.clients:
            raise WorkloadError("adopted population does not match the client count")
        self._population = population
        self._scenario_cache = None

    def _prepare(self) -> None:
        population = self._shared_population()
        population.ring_sorted()
        if self._scenario_cache is None or \
                self._scenario_cache.population is not population:
            # Share one fleet + template across every grid point: timelines
            # restore fleet state, and the fleet shape does not depend on
            # the game, so the O(n_clients) build is paid once per campaign.
            fleet = elastic_fleet(
                population, self.n_sites, nominal_sites=self.n_sites,
                at_utilization=1.0 / self.headroom, cost_model=self.cost_model,
            )
            self._scenario_cache = ScaleScenario(population, fleet)
        self._point_runners = {}

    def _begin_campaign(self) -> None:
        self.telemetry.inc(f"campaign.variance_mode.{self.variance_reduction}")

    def unit_specs(self) -> List[CampaignUnit]:
        # Draws depend only on (seed, replicas_per_point, scheme), so every
        # grid point replays the same event sequences — the sweep isolates
        # the dispositions from the noise.
        draws = replica_seed_draws(self.seed, self.replicas_per_point,
                                   self.variance_reduction)
        units: List[CampaignUnit] = []
        index = 0
        for sensitivity in self.sensitivities:
            for aggressiveness in self.aggressiveness:
                for replica in range(self.replicas_per_point):
                    event_seed, rng_transform = draws[replica]
                    units.append(CampaignUnit(
                        index=index,
                        point=(aggressiveness, sensitivity),
                        replica=replica,
                        label=(f"agg {aggressiveness:g} x sens "
                               f"{sensitivity:g} replica {replica}"),
                        event_seed=event_seed,
                        rng_transform=rng_transform,
                    ))
                    index += 1
        return units

    def run_unit(self, unit: CampaignUnit) -> AdversaryReplicaRecord:
        telemetry = self.telemetry
        population = self._shared_population()
        aggressiveness, sensitivity = unit.point
        runner = self._point_runners.get(unit.point)
        if runner is None:
            game = self._game(aggressiveness, sensitivity)
            runner = self._point_runner(population, game)
            self._point_runners[unit.point] = runner
        replica_span = telemetry.span(
            "replica", replica=unit.replica,
            aggressiveness=aggressiveness,
            sensitivity=sensitivity,
        )
        with replica_span:
            result = runner.run_replica(population, unit.event_seed,
                                        unit.rng_transform)
        wall = replica_span.seconds
        tail = max(self.epochs // 4, 1)
        target_class = self.target_classes[0]
        target_delivered = result.class_delivered_fraction(self.target_classes)
        last = result.records[-1]
        return AdversaryReplicaRecord(
            replica=unit.replica,
            event_seed=unit.event_seed,
            final_adoption=result.final_adoption_fraction,
            mean_discriminated_share=float(
                result.discriminated_share.mean()),
            equilibrium_target_delivered=float(
                target_delivered[-tail:].mean()),
            clients_rekeyed=result.total_clients_rekeyed,
            exposed_p95_seconds=last.exposed_latency_p95.get(
                target_class, 0.0),
            neutralized_p95_seconds=last.neutralized_latency_p95.get(
                target_class, 0.0),
            wall_seconds=wall,
        )

    def merge_units(self, outcomes: Sequence[AdversaryReplicaRecord], *,
                    started_at: float,
                    duration_seconds: float) -> AdversaryCampaignResult:
        points: List[AdversaryPointRecord] = []
        records: Dict[Tuple[float, float], Tuple[AdversaryReplicaRecord, ...]] = {}
        index = 0
        for sensitivity in self.sensitivities:
            for aggressiveness in self.aggressiveness:
                replica_records = tuple(
                    outcomes[index:index + self.replicas_per_point])
                index += self.replicas_per_point
                key = (aggressiveness, sensitivity)
                records[key] = replica_records
                delivered = float(np.mean(
                    [r.equilibrium_target_delivered
                     for r in replica_records]))
                points.append(AdversaryPointRecord(
                    aggressiveness=aggressiveness,
                    sensitivity=sensitivity,
                    replicas=self.replicas_per_point,
                    final_adoption=float(np.mean(
                        [r.final_adoption for r in replica_records])),
                    mean_discriminated_share=float(np.mean(
                        [r.mean_discriminated_share
                         for r in replica_records])),
                    equilibrium_target_delivered=delivered,
                    equilibrium_target_harm=1.0 - delivered,
                    total_clients_rekeyed=float(np.mean(
                        [r.clients_rekeyed for r in replica_records])),
                    exposed_p95_seconds=float(np.mean(
                        [r.exposed_p95_seconds for r in replica_records])),
                    neutralized_p95_seconds=float(np.mean(
                        [r.neutralized_p95_seconds
                         for r in replica_records])),
                ))
        completed_at = started_at + duration_seconds
        return AdversaryCampaignResult(
            run_id=self.run_id,
            experiment_name=self.experiment_name,
            started_at=started_at,
            completed_at=completed_at,
            duration_seconds=completed_at - started_at,
            points=tuple(points),
            records=records,
            report=self._render_report(points),
        )

    def _render_report(self, points: List[AdversaryPointRecord]) -> ExperimentReport:
        report = ExperimentReport(
            self.experiment_id,
            f"Adversary arms-race campaign ({self.clients:,} clients, "
            f"{len(self.aggressiveness)}x{len(self.sensitivities)} grid x "
            f"{self.replicas_per_point} replicas x {self.epochs} epochs, "
            f"seed {self.seed})",
        )
        report.add_table(
            ["aggressiveness", "sensitivity", "adoption", "discr share",
             "target harm", "exposed p95 ms", "neutral p95 ms", "rekeyed"],
            [[point.aggressiveness, point.sensitivity, point.final_adoption,
              point.mean_discriminated_share, point.equilibrium_target_harm,
              point.exposed_p95_seconds * 1e3,
              point.neutralized_p95_seconds * 1e3,
              point.total_clients_rekeyed] for point in points],
            title="adoption-vs-aggressiveness frontier (equilibrium = last "
                  "quarter of epochs)",
        )
        defeated = self_defeating_points(points)
        if defeated:
            labels = ", ".join(
                f"(agg {point.aggressiveness:g}, sens {point.sensitivity:g})"
                for point in defeated
            )
            report.add_note(
                f"SELF-DEFEATING at {labels}: harm fell as aggressiveness rose"
            )
        report.add_note(
            f"ISP: targets {', '.join(self.target_classes)}, budget "
            f"{self.base_isp.budget_fraction:g} of regional traffic, "
            f"classifier TP {self.base_isp.classifier.true_positive:g} / FP "
            f"{self.base_isp.classifier.false_positive:g} / leakage "
            f"{self.base_isp.classifier.neutralized_leakage:g}; adoption cost "
            f"{self.base_adoption.adoption_cost:g}"
        )
        report.add_note(
            "the self-defeating regime: once adoption is cheap (high "
            "sensitivity), escalating the throttle buys adoption instead of "
            "suppression — the discriminated share collapses to the "
            "classifier's leakage floor and the target classes recover"
        )
        return report
