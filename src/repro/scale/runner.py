"""Campaign runners for fleet-scale sweeps and timeline catalogues.

Each runner owns one configured campaign and exposes the same contract as
the experiment-runner pattern in SNIPPETS.md: ``run()`` produces a frozen
result object with a run id, timing, per-point records, and a rendered
report, while ``get_current_state()`` can be polled for progress.
:class:`FleetScaleRunner` sweeps population sizes against one fleet shape
(E12); :class:`TimelineCampaignRunner` runs the named scenarios of
:mod:`repro.scale.catalogue` through the time-stepped fluid simulator
(E13).  Everything the *simulation* produces is deterministic from the
seed; only the wall-clock fields reflect the machine the campaign ran on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from ..analysis.report import ExperimentReport, format_series
from ..exceptions import WorkloadError
from ..units import gbps
from .costmodel import CryptoCostModel
from .fleet import NeutralizerFleet
from .population import ClientPopulation, PopulationMix, default_mix
from .scenario import FluidResult, ScaleScenario
from .timeline import TimelineResult

#: The default campaign sweep: three decades up to a million clients.
DEFAULT_CLIENT_COUNTS: Tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000)


class ExperimentRunnerProtocol(Protocol):
    """The runner contract shared with the campaign harness pattern."""

    def run(self) -> "FleetScaleResult":
        """Run the campaign to completion and return its result."""
        ...

    def get_current_state(self) -> "ScaleExperimentState":
        """Snapshot campaign progress."""
        ...


@dataclass(frozen=True)
class SweepRecord:
    """One sweep point: a solved population size against the fleet."""

    clients: int
    wall_seconds: float
    solver_iterations: int
    goodput_bps: Dict[str, float]
    demand_bps: Dict[str, float]
    delivered_fraction: float
    peak_cpu_utilization: float
    peak_uplink_utilization: float
    key_setup_pps: float


@dataclass(frozen=True)
class ScaleExperimentState:
    """Progress snapshot of a running campaign."""

    completed_points: int
    total_points: int
    current_clients: Optional[int]
    #: Human-readable label of the in-flight point (e.g. the scenario name
    #: of a timeline campaign); ``None`` when idle or for plain sweeps.
    current_label: Optional[str] = None

    @property
    def done(self) -> bool:
        """Whether every sweep point has been solved."""
        return self.completed_points >= self.total_points


@dataclass(frozen=True)
class FleetScaleResult:
    """Final result of one campaign run."""

    run_id: str
    experiment_name: str
    started_at: float
    completed_at: float
    duration_seconds: float
    records: Tuple[SweepRecord, ...]
    report: ExperimentReport

    @property
    def largest_point(self) -> SweepRecord:
        """The record with the most clients (the headline number)."""
        return max(self.records, key=lambda record: record.clients)


class FleetScaleRunner:
    """Sweeps client counts against a neutralizer fleet and tabulates results."""

    def __init__(
        self,
        *,
        client_counts: Sequence[int] = DEFAULT_CLIENT_COUNTS,
        n_sites: int = 16,
        cores_per_site: float = 8.0,
        uplink_bps: float = gbps(10),
        regions: int = 8,
        region_uplink_bps: Optional[float] = None,
        mix: Optional[PopulationMix] = None,
        cost_model: Optional[CryptoCostModel] = None,
        failed_sites: Sequence[str] = (),
        seed: int = 2006,
    ) -> None:
        if not client_counts or min(client_counts) <= 0:
            raise WorkloadError("the sweep needs at least one positive client count")
        self.client_counts = tuple(sorted(client_counts))
        self.n_sites = n_sites
        self.cores_per_site = cores_per_site
        self.uplink_bps = uplink_bps
        self.regions = regions
        self.region_uplink_bps = region_uplink_bps
        self.mix = mix or default_mix()
        self.cost_model = cost_model or CryptoCostModel.default()
        self.failed_sites = tuple(failed_sites)
        self.seed = seed
        self.run_id = f"fleet-scale-{seed:08x}-{n_sites}x{len(self.client_counts)}"
        self.experiment_name = "fleet_scale_sweep"
        self._completed = 0
        self._current: Optional[int] = None
        self._fleet: Optional[NeutralizerFleet] = None
        self._fleet_config: Optional[tuple] = None

    # -- protocol --------------------------------------------------------------------

    def get_current_state(self) -> ScaleExperimentState:
        """Snapshot campaign progress (poll-safe, cheap)."""
        return ScaleExperimentState(
            completed_points=self._completed,
            total_points=len(self.client_counts),
            current_clients=self._current,
        )

    @property
    def fleet(self) -> NeutralizerFleet:
        """The campaign's fleet, built once and shared by every sweep point.

        The fleet's consistent-hash ring (an O(sites × replicas) sorted
        insert) and its capacity arrays do not depend on the population, so
        they are constructed a single time instead of once per point; only
        the population and its group counts are per-point work.  The cache
        is keyed on the fleet-shaping attributes, so mutating e.g.
        ``failed_sites`` between runs still takes effect.
        """
        config = (self.n_sites, self.cores_per_site, self.uplink_bps,
                  self.cost_model, tuple(self.failed_sites))
        if self._fleet is None or self._fleet_config != config:
            fleet = NeutralizerFleet.build(
                self.n_sites,
                cores=self.cores_per_site,
                uplink_bps=self.uplink_bps,
                cost_model=self.cost_model,
            )
            for name in self.failed_sites:
                fleet.fail_site(name)
            self._fleet = fleet
            self._fleet_config = config
        return self._fleet

    def solve_point(self, clients: int) -> Tuple[FluidResult, float]:
        """Solve one sweep point; returns the fluid result and its wall time."""
        start = time.perf_counter()
        population = ClientPopulation(
            clients, mix=self.mix, regions=self.regions, seed=self.seed
        )
        scenario = ScaleScenario(
            population, self.fleet, region_uplink_bps=self.region_uplink_bps
        )
        result = scenario.solve()
        return result, time.perf_counter() - start

    def run(self) -> FleetScaleResult:
        """Run the whole sweep and render the campaign report."""
        started_at = time.time()
        records: List[SweepRecord] = []
        self._completed = 0
        for clients in self.client_counts:
            self._current = clients
            fluid, wall = self.solve_point(clients)
            records.append(SweepRecord(
                clients=clients,
                wall_seconds=wall,
                solver_iterations=fluid.solver_iterations,
                goodput_bps=dict(fluid.goodput_bps),
                demand_bps=dict(fluid.demand_bps),
                delivered_fraction=fluid.delivered_fraction,
                peak_cpu_utilization=float(fluid.cpu_utilization.max()),
                peak_uplink_utilization=float(fluid.uplink_utilization.max()),
                key_setup_pps=fluid.key_setup_pps,
            ))
            self._completed += 1
        self._current = None
        completed_at = time.time()

        report = self._render_report(records)
        return FleetScaleResult(
            run_id=self.run_id,
            experiment_name=self.experiment_name,
            started_at=started_at,
            completed_at=completed_at,
            duration_seconds=completed_at - started_at,
            records=tuple(records),
            report=report,
        )

    def _render_report(self, records: List[SweepRecord]) -> ExperimentReport:
        report = ExperimentReport(
            "E12",
            f"Fleet-scale fluid sweep ({self.n_sites} sites x "
            f"{self.cores_per_site:g} cores, seed {self.seed})",
        )
        class_names = self.mix.names
        counts = [record.clients for record in records]
        series = {
            f"{name} goodput Mb/s": [record.goodput_bps[name] / 1e6 for record in records]
            for name in class_names
        }
        series["delivered fraction"] = [record.delivered_fraction for record in records]
        report.tables.append(format_series("clients", counts, series,
                                           title="goodput vs population size"))
        report.add_table(
            ["clients", "peak cpu util", "peak uplink util", "key setups/s",
             "solver passes", "wall s"],
            [[record.clients, record.peak_cpu_utilization, record.peak_uplink_utilization,
              record.key_setup_pps, record.solver_iterations, record.wall_seconds]
             for record in records],
        )
        if self.failed_sites:
            report.add_note(f"failed sites: {', '.join(self.failed_sites)}")
        report.add_note(
            "fluid model: max-min fair allocation over regional uplinks, site "
            "uplinks and site CPUs; absolute capacity comes from the calibrated "
            "crypto cost model, so the shape (where the knee sits) is the claim"
        )
        return report


# ---------------------------------------------------------------------------
# E13: the timeline scenario catalogue
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TimelineCampaignRecord:
    """Summary of one catalogue scenario's solved timeline."""

    scenario: str
    title: str
    epochs: int
    wall_seconds: float
    solve_seconds: float
    min_delivered_fraction: float
    mean_delivered_fraction: float
    total_clients_remapped: int
    peak_remap_epoch: Optional[int]
    warm_fraction: float
    fast_fraction: float
    peak_cpu_utilization: float
    peak_uplink_utilization: float


@dataclass(frozen=True)
class TimelineCampaignResult:
    """Final result of one E13 catalogue run."""

    run_id: str
    experiment_name: str
    started_at: float
    completed_at: float
    duration_seconds: float
    records: Tuple[TimelineCampaignRecord, ...]
    #: Full per-epoch results, keyed by scenario name.
    timelines: Dict[str, TimelineResult]
    report: ExperimentReport

    @property
    def worst_scenario(self) -> TimelineCampaignRecord:
        """The scenario with the deepest delivered-fraction dip."""
        return min(self.records, key=lambda record: record.min_delivered_fraction)


class TimelineCampaignRunner:
    """Runs every named catalogue scenario through the fluid timeline (E13)."""

    def __init__(
        self,
        *,
        scenarios: Optional[Sequence[str]] = None,
        clients: int = 100_000,
        seed: int = 2006,
        cost_model: Optional[CryptoCostModel] = None,
        flagship: str = "flash_crowd",
        series_rows: int = 16,
    ) -> None:
        from .catalogue import CATALOGUE, scenario_names

        self.scenario_names = list(scenarios) if scenarios is not None else scenario_names()
        if not self.scenario_names:
            raise WorkloadError("the campaign needs at least one scenario")
        unknown = [name for name in self.scenario_names if name not in CATALOGUE]
        if unknown:
            # Fail fast: a typo'd last entry must not surface only after the
            # earlier scenarios have been fully solved.
            raise WorkloadError(
                f"unknown scenario(s) {', '.join(unknown)}; "
                f"catalogue has {', '.join(CATALOGUE)}"
            )
        if flagship not in CATALOGUE:
            raise WorkloadError(
                f"unknown flagship scenario {flagship!r}; "
                f"catalogue has {', '.join(CATALOGUE)}"
            )
        if clients <= 0:
            raise WorkloadError("the campaign needs a positive population size")
        self.clients = int(clients)
        self.seed = seed
        self.cost_model = cost_model
        self.flagship = flagship
        self.series_rows = series_rows
        self.run_id = f"timeline-{seed:08x}-{self.clients}x{len(self.scenario_names)}"
        self.experiment_name = "timeline_catalogue"
        self._completed = 0
        self._current: Optional[str] = None

    # -- protocol --------------------------------------------------------------------

    def get_current_state(self) -> ScaleExperimentState:
        """Snapshot campaign progress (poll-safe, cheap)."""
        return ScaleExperimentState(
            completed_points=self._completed,
            total_points=len(self.scenario_names),
            current_clients=self.clients if self._current is not None else None,
            current_label=self._current,
        )

    def run(self) -> TimelineCampaignResult:
        """Run every scenario and render the campaign report."""
        from .catalogue import CATALOGUE, build_scenario

        started_at = time.time()
        records: List[TimelineCampaignRecord] = []
        timelines: Dict[str, TimelineResult] = {}
        # One O(n_clients) population build shared by every scenario — the
        # catalogue re-derives only the fleet and events per scenario.
        population = ClientPopulation(self.clients, seed=self.seed)
        self._completed = 0
        for name in self.scenario_names:
            self._current = name
            timeline = build_scenario(
                name, clients=self.clients, seed=self.seed,
                cost_model=self.cost_model, population=population,
            )
            result = timeline.run()
            timelines[name] = result
            records.append(TimelineCampaignRecord(
                scenario=name,
                title=CATALOGUE[name].title,
                epochs=result.epochs,
                wall_seconds=result.wall_seconds,
                solve_seconds=result.solve_seconds_total,
                min_delivered_fraction=result.min_delivered_fraction,
                mean_delivered_fraction=result.mean_delivered_fraction,
                total_clients_remapped=result.total_clients_remapped,
                peak_remap_epoch=result.peak_remap_epoch,
                warm_fraction=result.warm_fraction,
                fast_fraction=result.fast_fraction,
                peak_cpu_utilization=float(result.cpu_utilization.max()),
                peak_uplink_utilization=float(result.uplink_utilization.max()),
            ))
            self._completed += 1
        self._current = None
        completed_at = time.time()

        report = self._render_report(records, timelines)
        return TimelineCampaignResult(
            run_id=self.run_id,
            experiment_name=self.experiment_name,
            started_at=started_at,
            completed_at=completed_at,
            duration_seconds=completed_at - started_at,
            records=tuple(records),
            timelines=timelines,
            report=report,
        )

    def _render_report(self, records: List[TimelineCampaignRecord],
                       timelines: Dict[str, TimelineResult]) -> ExperimentReport:
        report = ExperimentReport(
            "E13",
            f"Timeline scenario catalogue ({self.clients:,} clients, seed {self.seed})",
        )
        report.add_table(
            ["scenario", "epochs", "min deliv", "mean deliv", "remapped",
             "warm frac", "fast frac", "peak cpu", "wall s"],
            [[record.scenario, record.epochs, record.min_delivered_fraction,
              record.mean_delivered_fraction, record.total_clients_remapped,
              record.warm_fraction, record.fast_fraction,
              record.peak_cpu_utilization,
              record.wall_seconds] for record in records],
            title="scenario summaries",
        )
        flagship = timelines.get(self.flagship)
        if flagship is not None:
            report.tables.append(format_series(
                "epoch", [record.epoch for record in flagship.records],
                flagship.series(),
                title=f"flagship timeline: {self.flagship}",
                max_rows=self.series_rows,
            ))
        report.add_note(
            "each scenario provisions its fleet relative to the population's "
            "nominal demand, so the shapes are population-size invariant"
        )
        report.add_note(
            "warm frac: epochs solved by certifying the previous allocation "
            "(bottleneck condition) — fires on steady congested load; fast "
            "frac: all epochs that skipped the fill, including uncongested "
            "epochs certified directly from the demands vector"
        )
        return report
