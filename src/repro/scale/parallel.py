"""Deterministic multi-core campaign execution with checkpointed resume.

The Monte-Carlo runners (E13 timeline catalogue, E14 stochastic, E15
latency, E16 adversary) all decompose into the same shape — a list of
independent :class:`CampaignUnit` work items, a pure per-unit simulation,
and an order-insensitive merge (:class:`CampaignRunnerProtocol`).  This
module farms those units over worker processes without changing a single
number in any result:

**Determinism contract.**  Each unit's outcome depends only on the unit
spec and the campaign configuration (per-unit ``SeedSequence`` substreams;
timelines restore fleet state), and :class:`ProcessPoolCampaignExecutor`
always hands outcomes to ``merge_units`` in unit-index order, never in
completion order.  Consequences, asserted in ``tests/scale/test_parallel.py``
and the ``parallel-equivalence`` CI job: ``n_workers=1`` is bit-identical
to the runner's serial ``run()``, and ``n_workers=N`` is bit-identical to
``n_workers=1`` for any N.

**Shared memory.**  The read-only population arrays (class/region indices,
ring positions, and the sorted-ring cache — the only O(n_clients) state a
replica needs) are packed into POSIX shared memory once by
:class:`SharedPopulationPack`; each worker attaches zero-copy views and
rebuilds its fleet/template caches deterministically in its initializer.

**Checkpointed resume.**  With a ``checkpoint_dir``, a :class:`RunTable`
directory records one JSON file per completed unit (written atomically:
temp file + ``os.replace``).  An interrupted campaign re-run with the same
directory loads completed outcomes and only executes the remainder — the
merged table is identical to an uninterrupted run's.

**Telemetry fan-in.**  Workers ship a per-unit metrics-registry delta and
their span durations home with each outcome; the parent merges deltas into
the campaign registry (so ``get_current_state()`` and Prometheus exports
read ONE registry) and accumulates span durations for
:func:`repro.scale.telemetry.phase_breakdown`.  With a ``trace_dir``, each
worker also appends its raw spans to ``worker-<pid>.jsonl``.  When the
parent telemetry carries an event log (:mod:`repro.scale.obs`), workers
collect their units' structured events locally and ship them home with
each outcome; the parent flushes batches into its log strictly in unit
order, so the merged event stream — and any detector verdicts derived
from it — is byte-identical to the serial run's for any worker count.

:class:`StreamingPercentiles` (P² estimators) backs the runners' opt-in
``aggregation="p2"`` mode: constant-memory percentile summaries with the
tolerance documented in docs/parallel.md.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import multiprocessing
import os
import pickle
import signal
import time
import zlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..exceptions import WorkloadError
from .population import ClientPopulation
from .telemetry import MetricsRegistry, Telemetry


# ---------------------------------------------------------------------------
# The campaign-unit contract
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignUnit:
    """One independent work item of a campaign, fully specified up front.

    Units are picklable by construction (the rng transform is a frozen
    dataclass or a module-level function, never a closure), so the same
    spec can run in-process or in a worker.  ``index`` is the unit's
    position in the campaign's canonical order — the merge order, the
    checkpoint key, and the tie that makes completion order irrelevant.
    """

    index: int
    #: Sweep-point identity (scenario name, grid tuple, ``None`` for E14).
    point: object
    replica: int
    label: str
    event_seed: Optional[int] = None
    rng_transform: object = None


class CampaignRunnerProtocol(Protocol):
    """What a runner must provide to run under the parallel executor.

    All four Monte-Carlo runners (E13–E16) implement this on top of the
    shared unit-campaign loop in :mod:`repro.scale.runner`; ``run()`` is
    required to be exactly ``merge_units(map(run_unit, unit_specs()))`` so
    the executor's output can be bit-identical to the serial path.
    """

    run_id: str
    telemetry: Telemetry

    def unit_specs(self) -> List[CampaignUnit]:
        """The campaign's work units in canonical (index) order."""
        ...

    def run_unit(self, unit: CampaignUnit) -> object:
        """Simulate one unit; the outcome must be picklable."""
        ...

    def merge_units(self, outcomes: Sequence[object], *, started_at: float,
                    duration_seconds: float) -> object:
        """Assemble the campaign result from outcomes in unit order."""
        ...

    def run(self) -> object:
        """The serial reference path."""
        ...

    def get_current_state(self) -> object:
        """Snapshot campaign progress."""
        ...


# ---------------------------------------------------------------------------
# Streaming percentiles (P², Jain & Chlamtac 1985)
# ---------------------------------------------------------------------------


class P2Quantile:
    """One streaming quantile estimate in O(1) memory (the P² algorithm).

    Five markers track the running quantile without storing observations.
    The estimate is order-dependent — feeding the same values in a
    different order can move it within its tolerance — which is exactly why
    the parallel executor merges outcomes in unit order: the stream sees
    one canonical order no matter how many workers ran.
    """

    __slots__ = ("q", "_initial", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise WorkloadError("P² quantile must be in (0, 1)")
        self.q = float(q)
        self._initial: List[float] = []
        self._heights: Optional[List[float]] = None
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []

    @property
    def count(self) -> int:
        if self._heights is None:
            return len(self._initial)
        return int(self._positions[4])

    def add(self, value: float) -> None:
        value = float(value)
        if self._heights is None:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                q = self.q
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                                 3.0 + 2.0 * q, 5.0]
                self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for marker in range(cell + 1, 5):
            positions[marker] += 1.0
        for marker in range(5):
            self._desired[marker] += self._increments[marker]
        for marker in (1, 2, 3):
            drift = self._desired[marker] - positions[marker]
            if ((drift >= 1.0 and positions[marker + 1] - positions[marker] > 1.0)
                    or (drift <= -1.0
                        and positions[marker - 1] - positions[marker] < -1.0)):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(marker, step)
                if not heights[marker - 1] < candidate < heights[marker + 1]:
                    candidate = self._linear(marker, step)
                heights[marker] = candidate
                positions[marker] += step

    def _parabolic(self, marker: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[marker] + step / (n[marker + 1] - n[marker - 1]) * (
            (n[marker] - n[marker - 1] + step)
            * (h[marker + 1] - h[marker]) / (n[marker + 1] - n[marker])
            + (n[marker + 1] - n[marker] - step)
            * (h[marker] - h[marker - 1]) / (n[marker] - n[marker - 1])
        )

    def _linear(self, marker: int, step: float) -> float:
        h, n = self._heights, self._positions
        other = marker + int(step)
        return h[marker] + step * (h[other] - h[marker]) / (n[other] - n[marker])

    def value(self) -> float:
        """The current quantile estimate (exact while under 5 samples)."""
        if self._heights is None:
            if not self._initial:
                raise WorkloadError("P² estimator has no samples")
            return float(np.percentile(np.asarray(self._initial, dtype=np.float64),
                                       self.q * 100.0))
        return float(self._heights[2])


class StreamingPercentiles:
    """The fixed quantile set the campaign summaries need, streamed in O(1).

    Wraps one :class:`P2Quantile` per needed quantile plus exact running
    count/sum/min/max, so :class:`repro.scale.runner.MetricDistribution`
    rows built from a stream have exact ``mean``/``worst``/``samples`` and
    P²-estimated percentiles.
    """

    #: Both tails of both tail conventions: 1/5/50/95/99.
    QUANTILES: Tuple[float, ...] = (0.01, 0.05, 0.50, 0.95, 0.99)

    def __init__(self, quantiles: Sequence[float] = QUANTILES) -> None:
        self._estimators: Dict[float, P2Quantile] = {
            float(q): P2Quantile(q) for q in quantiles
        }
        self.count = 0
        self._sum = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for estimator in self._estimators.values():
            estimator.add(value)

    def extend(self, values) -> None:
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.add(float(value))

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise WorkloadError("streaming percentiles have no samples")
        return self._sum / self.count

    def quantile(self, q: float) -> float:
        estimator = self._estimators.get(float(q))
        if estimator is None:
            raise WorkloadError(
                f"quantile {q:g} is not tracked; tracked: "
                f"{', '.join(f'{key:g}' for key in sorted(self._estimators))}"
            )
        return estimator.value()


# ---------------------------------------------------------------------------
# Shared-memory population pack
# ---------------------------------------------------------------------------

#: Population arrays shipped to workers, in manifest order.
_POPULATION_ARRAYS = (
    "class_index", "region_index", "ring_positions",
    "ring_sorted_positions", "ring_sorted_region", "ring_sorted_class",
    "ring_sorted_region_class",
)


class SharedPopulationPack:
    """One population's arrays in POSIX shared memory, attachable by name.

    ``create`` packs the parent's arrays (including the sorted-ring cache,
    so workers skip the O(n log n) sort); ``attach`` reconstructs a
    zero-copy :class:`ClientPopulation` view in a worker.  The parent owns
    the segments: it must ``close()`` and ``unlink()`` them in a
    ``finally`` — success, failure, and KeyboardInterrupt alike — which the
    executor does and the shared-memory lifecycle tests assert.
    """

    def __init__(self, segments: Dict[str, shared_memory.SharedMemory],
                 manifest: Dict[str, object]) -> None:
        self._segments = segments
        self.manifest = manifest

    @classmethod
    def create(cls, population: ClientPopulation) -> "SharedPopulationPack":
        sorted_cache = population.ring_sorted()
        arrays = {
            "class_index": population.class_index,
            "region_index": population.region_index,
            "ring_positions": population.ring_positions,
            "ring_sorted_positions": sorted_cache[0],
            "ring_sorted_region": sorted_cache[1],
            "ring_sorted_class": sorted_cache[2],
            "ring_sorted_region_class": sorted_cache[3],
        }
        segments: Dict[str, shared_memory.SharedMemory] = {}
        specs: Dict[str, Dict[str, object]] = {}
        try:
            for key in _POPULATION_ARRAYS:
                array = np.ascontiguousarray(arrays[key])
                segment = shared_memory.SharedMemory(create=True,
                                                     size=array.nbytes)
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=segment.buf)
                view[:] = array
                segments[key] = segment
                specs[key] = {"name": segment.name,
                              "dtype": str(array.dtype),
                              "shape": tuple(array.shape)}
        except BaseException:
            for segment in segments.values():
                segment.close()
                segment.unlink()
            raise
        manifest = {
            "arrays": specs,
            "mix": population.mix,
            "regions": population.regions,
            "seed": population.seed,
            "n_clients": population.n_clients,
        }
        return cls(segments, manifest)

    @property
    def nbytes(self) -> int:
        """Total shared bytes (what ``parallel.shared_bytes`` reports)."""
        return sum(segment.size for segment in self._segments.values())

    @staticmethod
    def attach(manifest: Dict[str, object], *, private_tracker: bool = False,
               ) -> Tuple[ClientPopulation, List[shared_memory.SharedMemory]]:
        """A worker-side population view over the parent's segments.

        Returns the population and the open segments; the caller must keep
        the segments referenced for the arrays' lifetime and ``close()``
        them at process exit.  Pool workers (fork- AND spawn-started)
        inherit the parent's resource-tracker fd, so their attach-side
        registration is a no-op against the parent's and needs no cleanup.
        Only a process with its *own* tracker (an unrelated process
        attaching by name) must pass ``private_tracker=True`` to
        unregister the attach — otherwise its tracker would unlink (and
        warn about) segments it never created when that process exits.
        """
        segments: List[shared_memory.SharedMemory] = []
        views: Dict[str, np.ndarray] = {}
        for key in _POPULATION_ARRAYS:
            spec = manifest["arrays"][key]
            segment = shared_memory.SharedMemory(name=spec["name"])
            if private_tracker:
                try:
                    resource_tracker.unregister(segment._name, "shared_memory")
                except Exception:
                    pass
            segments.append(segment)
            views[key] = np.ndarray(tuple(spec["shape"]),
                                    dtype=np.dtype(spec["dtype"]),
                                    buffer=segment.buf)
        population = ClientPopulation.from_arrays(
            mix=manifest["mix"],
            regions=manifest["regions"],
            seed=manifest["seed"],
            class_index=views["class_index"],
            region_index=views["region_index"],
            ring_positions=views["ring_positions"],
            ring_sorted=(views["ring_sorted_positions"],
                         views["ring_sorted_region"],
                         views["ring_sorted_class"],
                         views["ring_sorted_region_class"]),
        )
        return population, segments

    def close(self) -> None:
        for segment in self._segments.values():
            segment.close()

    def unlink(self) -> None:
        for segment in self._segments.values():
            try:
                segment.unlink()
            except FileNotFoundError:
                pass


# ---------------------------------------------------------------------------
# The checkpointed run table
# ---------------------------------------------------------------------------


def _atomic_write_json(path: Path, payload: Dict[str, object]) -> None:
    """Write JSON so readers only ever see absent or complete files."""
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


class RunTable:
    """A directory of per-unit checkpoint records with atomic appends.

    Layout: ``header.json`` identifies the campaign (run id, unit count,
    format version); each completed unit writes ``unit-<index>.json``
    carrying its pickled outcome (zlib + base64).  Every write goes through
    a temp file and ``os.replace``, so a SIGKILL mid-write leaves either no
    record or a complete one — never a torn file.  O(1) work per completed
    unit; resuming scans the directory once.
    """

    VERSION = 1

    def __init__(self, directory: Path, header: Dict[str, object]) -> None:
        self.directory = Path(directory)
        self.header = header

    @classmethod
    def open(cls, directory, *, run_id: str, total_units: int) -> "RunTable":
        """Create or re-open a run table, validating campaign identity."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        header = {"version": cls.VERSION, "run_id": run_id,
                  "total_units": int(total_units)}
        header_path = directory / "header.json"
        if header_path.exists():
            existing = json.loads(header_path.read_text())
            if existing != header:
                raise WorkloadError(
                    f"checkpoint at {directory} belongs to a different "
                    f"campaign (found {existing}, expected {header}); "
                    f"use a fresh checkpoint directory"
                )
        else:
            _atomic_write_json(header_path, header)
        return cls(directory, header)

    def unit_path(self, index: int) -> Path:
        return self.directory / f"unit-{index:05d}.json"

    def record_outcome(self, unit: CampaignUnit, outcome: object) -> None:
        """Checkpoint one completed unit (atomic; replaces any failure mark)."""
        payload = base64.b64encode(zlib.compress(
            pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
        )).decode("ascii")
        _atomic_write_json(self.unit_path(unit.index), {
            "index": unit.index,
            "label": unit.label,
            "status": "ok",
            "payload": payload,
        })

    def record_failure(self, unit: CampaignUnit, error: str) -> None:
        """Mark one unit failed so the failure survives the process."""
        _atomic_write_json(self.unit_path(unit.index), {
            "index": unit.index,
            "label": unit.label,
            "status": "failed",
            "error": error,
        })

    def completed_outcomes(self) -> Dict[int, object]:
        """Outcomes of every cleanly completed unit, by index.

        Records that cannot be read back (truncated by outside interference
        or hand-edited) are treated as not-completed — the unit simply re-runs
        — so a damaged checkpoint degrades to extra work, never to a crash
        or a wrong merge.
        """
        out: Dict[int, object] = {}
        for path in sorted(self.directory.glob("unit-*.json")):
            try:
                record = json.loads(path.read_text())
                if record.get("status") != "ok":
                    continue
                outcome = pickle.loads(zlib.decompress(
                    base64.b64decode(record["payload"])))
            except Exception:
                continue
            out[int(record["index"])] = outcome
        return out

    def failed_units(self) -> Dict[int, str]:
        """Error strings of units whose last attempt failed, by index."""
        out: Dict[int, str] = {}
        for path in sorted(self.directory.glob("unit-*.json")):
            try:
                record = json.loads(path.read_text())
            except Exception:
                continue
            if record.get("status") == "failed":
                out[int(record["index"])] = str(record.get("error", ""))
        return out


# ---------------------------------------------------------------------------
# Canonical result bytes (the equivalence-gate currency)
# ---------------------------------------------------------------------------

#: Result fields that reflect the machine/run, not the simulation.
_WALL_FIELDS = frozenset({
    "started_at", "completed_at", "duration_seconds", "wall_seconds",
    "solve_seconds", "solve_seconds_total", "report",
})


def _canonical(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
            if field.name not in _WALL_FIELDS
        }
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, np.ndarray):
        return [_canonical(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def canonical_result_bytes(result: object) -> bytes:
    """A campaign result as deterministic bytes, wall-clock fields removed.

    Walks dataclasses/dicts/arrays into sorted-key JSON, dropping the
    fields that legitimately differ between two runs of the same seed
    (timestamps, wall durations, and the rendered report, which embeds
    wall columns).  Two results are simulation-identical iff their
    canonical bytes are equal — the byte-equality the parallel-equivalence
    CI gate compares.
    """
    return json.dumps(_canonical(result), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# ---------------------------------------------------------------------------
# Worker-side plumbing
# ---------------------------------------------------------------------------

#: Per-worker state installed by the pool initializer.
_WORKER: Optional[Dict[str, object]] = None


def _worker_init(runner, manifest: Dict[str, object],
                 trace_dir: Optional[str],
                 collect_events: bool = False,
                 heartbeat_queue=None) -> None:
    """Install the campaign in a worker: shared population, fresh telemetry.

    Workers ignore SIGINT so an interrupt lands only in the parent, which
    checkpoints and tears the pool down; the worker's telemetry always
    traces (spans are drained per unit and shipped home as durations) and
    always carries a registry (per-unit deltas merge into the campaign's).
    When the parent campaign carries an event log, ``collect_events``
    attaches a worker-local log whose per-unit batches ship home with each
    outcome and fan into the parent stream in unit order.
    ``heartbeat_queue`` (present only when a monitor is attached) is the
    out-of-band liveness channel: coarse ``unit_heartbeat`` records go
    straight to the parent's monitor and never touch the canonical log.
    """
    global _WORKER
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    population, segments = SharedPopulationPack.attach(manifest)
    runner.telemetry = Telemetry(trace=True, events=collect_events)
    runner._adopt_population(population)
    runner._prepare()
    _WORKER = {
        "runner": runner,
        "segments": segments,
        "trace_dir": Path(trace_dir) if trace_dir else None,
        "heartbeat_queue": heartbeat_queue,
    }


def _worker_heartbeat(unit: CampaignUnit, phase: str) -> None:
    """Best-effort liveness record; a heartbeat may never fail a unit.

    The payload deliberately carries wall-clock and the worker PID — it
    is quarantined on the monitor side (``/progress`` and ``/stream``
    only) and never merged into the canonical event stream, which is how
    the byte-identity contract survives the monitor being attached.
    """
    heartbeat_queue = _WORKER.get("heartbeat_queue")
    if heartbeat_queue is None:
        return
    try:
        heartbeat_queue.put({
            "kind": "unit_heartbeat",
            "unit": unit.index,
            "label": unit.label,
            "replica": unit.replica,
            "phase": phase,
            "pid": os.getpid(),
            "wall_time": time.time(),
        })
    except Exception:
        pass


def _worker_run_unit(unit: CampaignUnit):
    """Run one unit here; returns (index, outcome, delta, spans, events)."""
    runner = _WORKER["runner"]
    trace_dir = _WORKER["trace_dir"]
    telemetry = runner.telemetry
    _worker_heartbeat(unit, "started")
    before = telemetry.metrics.as_dict()
    runner._current = runner._unit_marker(unit)
    outcome = runner._run_unit_logged(unit)
    _worker_heartbeat(unit, "complete")
    delta = MetricsRegistry.snapshot_delta(before, telemetry.metrics.as_dict())
    tracer = telemetry.tracer
    spans = [(record.name, record.dur_s) for record in tracer.spans]
    if trace_dir is not None:
        span_file = trace_dir / f"worker-{os.getpid()}.jsonl"
        with open(span_file, "a") as handle:
            for record in tracer.spans:
                handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
    tracer.spans.clear()
    # Sequence numbers are parent-assigned at fan-in, so only the raw
    # (kind, payload) pairs travel home.
    events = (telemetry.events.drain_raw()
              if telemetry.events is not None else [])
    return unit.index, outcome, delta, spans, events


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class ProcessPoolCampaignExecutor:
    """Runs a unit-decomposed campaign across worker processes.

    Same decomposition, same merge order, same numbers as the serial path
    — see the module docstring for the determinism contract.  With
    ``n_workers=1`` everything runs in-process (no pool, no shared
    memory), which is also the resume-capable serial mode.

    Sizing ``n_workers``: units are CPU-bound numpy loops, so
    ``os.cpu_count()`` (the default) is the ceiling; past the number of
    *physical* cores the return is marginal.  Campaigns shorter than a few
    hundred milliseconds per unit amortize pool startup poorly — keep them
    serial.
    """

    def __init__(self, runner, *, n_workers: Optional[int] = None,
                 checkpoint_dir=None, trace_dir=None, mp_context=None,
                 monitor=None) -> None:
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if int(n_workers) < 1:
            raise WorkloadError("the executor needs at least one worker")
        self.runner = runner
        self.n_workers = int(n_workers)
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.trace_dir = Path(trace_dir) if trace_dir else None
        self._mp_context = mp_context
        #: An attached :class:`repro.scale.monitor.MonitorServer` (or
        #: ``None``).  Purely observational: it reads the runner's
        #: telemetry and receives out-of-band worker heartbeats, so the
        #: campaign's numbers and canonical event bytes are identical
        #: with or without it.
        self.monitor = monitor
        #: Worker span durations by phase name, for ``phase_breakdown``.
        self.phase_durations: Dict[str, List[float]] = {}
        self.units_resumed = 0

    def run(self):
        """Run (or resume) the campaign and return its merged result."""
        runner = self.runner
        telemetry = runner.telemetry
        started_at = time.time()
        if self.monitor is not None:
            # Mount (idempotent) and start serving before the first unit,
            # and let /progress read the merged worker phase durations.
            self.monitor.mount(telemetry, runner=runner)
            self.monitor._phase_source = self
            self.monitor.start()
        runner._progress_base = telemetry.counter_value(runner._progress_counter)
        runner._completed = 0
        self.phase_durations = {}
        self.units_resumed = 0
        runner._prepare()
        units = runner.unit_specs()
        table: Optional[RunTable] = None
        restored: Dict[int, object] = {}
        if self.checkpoint_dir is not None:
            table = RunTable.open(self.checkpoint_dir, run_id=runner.run_id,
                                  total_units=len(units))
            restored = table.completed_outcomes()
        outcomes: List[Optional[object]] = [None] * len(units)
        campaign_span = telemetry.span(
            "campaign", **runner._campaign_span_attrs(len(units)))
        with campaign_span:
            runner._begin_campaign()
            runner._emit_campaign_started(len(units))
            telemetry.set_gauge("parallel.n_workers", self.n_workers)
            for index, outcome in restored.items():
                if 0 <= index < len(units) and outcomes[index] is None:
                    outcomes[index] = outcome
                    telemetry.inc(runner._progress_counter)
                    telemetry.inc("parallel.units_resumed")
                    runner._completed += 1
                    self.units_resumed += 1
            pending = [unit for unit in units if outcomes[unit.index] is None]
            if pending:
                if self.n_workers == 1:
                    self._run_serial(pending, outcomes, table)
                else:
                    self._run_pool(pending, outcomes, table)
        runner._current = None
        result = runner.merge_units(outcomes, started_at=started_at,
                                    duration_seconds=campaign_span.seconds)
        runner._emit_campaign_complete(len(units))
        return result

    # -- serial (and resume-only) path ------------------------------------------------

    def _run_serial(self, pending: List[CampaignUnit],
                    outcomes: List[Optional[object]],
                    table: Optional[RunTable]) -> None:
        runner = self.runner
        telemetry = runner.telemetry
        for unit in pending:
            runner._current = runner._unit_marker(unit)
            try:
                outcome = runner._run_unit_logged(unit)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                self._mark_failed(unit, table, exc)
                raise WorkloadError(
                    f"campaign unit {unit.label!r} failed: {exc}"
                ) from exc
            outcomes[unit.index] = outcome
            telemetry.inc(runner._progress_counter)
            runner._completed += 1
            if table is not None:
                table.record_outcome(unit, outcome)

    # -- pooled path ------------------------------------------------------------------

    def _run_pool(self, pending: List[CampaignUnit],
                  outcomes: List[Optional[object]],
                  table: Optional[RunTable]) -> None:
        runner = self.runner
        telemetry = runner.telemetry
        manager = None
        pack = SharedPopulationPack.create(runner._shared_population())
        try:
            telemetry.set_gauge("parallel.shared_bytes", pack.nbytes)
            if self.trace_dir is not None:
                self.trace_dir.mkdir(parents=True, exist_ok=True)
            context = self._mp_context
            if context is None:
                # fork shares the parent's pages copy-on-write (cheap start,
                # no pickling); spawn is the portable fallback and exercises
                # the runners' __getstate__ path.
                method = ("fork" if "fork"
                          in multiprocessing.get_all_start_methods()
                          else "spawn")
                context = multiprocessing.get_context(method)
            heartbeat_queue = None
            if self.monitor is not None:
                # Raw mp.Queue handles only cross process boundaries by
                # inheritance, and pool initargs travel by pickle under
                # spawn — a manager proxy queue is the start-method-
                # agnostic channel.  Monitor-only cost, paid off-path.
                manager = context.Manager()
                heartbeat_queue = manager.Queue()
                self.monitor.watch_heartbeats(heartbeat_queue)
            pool = ProcessPoolExecutor(
                max_workers=min(self.n_workers, len(pending)),
                mp_context=context,
                initializer=_worker_init,
                initargs=(runner, pack.manifest,
                          str(self.trace_dir) if self.trace_dir else None,
                          telemetry.events is not None,
                          heartbeat_queue),
            )
            # Worker event batches arrive in completion order but fan into
            # the parent log strictly in unit order: each batch is buffered
            # until every earlier pending unit's batch has been flushed, so
            # the merged stream is byte-identical to the serial one for any
            # worker count.
            elog = telemetry.events
            event_batches: Dict[int, List] = {}
            flush_order = [unit.index for unit in pending]
            flush_pos = 0
            try:
                futures = {pool.submit(_worker_run_unit, unit): unit
                           for unit in pending}
                for future in as_completed(futures):
                    unit = futures[future]
                    try:
                        index, outcome, delta, spans, events = future.result()
                    except KeyboardInterrupt:
                        raise
                    except BrokenProcessPool as exc:
                        raise WorkloadError(
                            f"worker pool died while campaign unit "
                            f"{unit.label!r} was in flight: {exc}"
                        ) from exc
                    except Exception as exc:
                        self._mark_failed(unit, table, exc)
                        raise WorkloadError(
                            f"campaign unit {unit.label!r} failed in a "
                            f"worker: {exc}"
                        ) from exc
                    outcomes[index] = outcome
                    if telemetry.metrics is not None:
                        telemetry.metrics.merge_snapshot(delta)
                    for name, duration in spans:
                        self.phase_durations.setdefault(name, []).append(duration)
                    if elog is not None:
                        event_batches[index] = events
                        while (flush_pos < len(flush_order)
                               and flush_order[flush_pos] in event_batches):
                            elog.extend_raw(
                                event_batches.pop(flush_order[flush_pos]))
                            flush_pos += 1
                    runner._current = runner._unit_marker(unit)
                    telemetry.inc(runner._progress_counter)
                    runner._completed += 1
                    if table is not None:
                        table.record_outcome(unit, outcome)
                pool.shutdown(wait=True)
            except BaseException:
                # Interrupt or failure: drop queued units and leave running
                # ones to drain — completed work is already checkpointed.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        finally:
            if self.monitor is not None:
                # Drain queued heartbeats before the manager goes away.
                self.monitor.unwatch_heartbeats()
            if manager is not None:
                manager.shutdown()
            pack.close()
            pack.unlink()

    def _mark_failed(self, unit: CampaignUnit, table: Optional[RunTable],
                     exc: Exception) -> None:
        self.runner.telemetry.inc("parallel.units_failed")
        if table is not None:
            table.record_failure(unit, f"{type(exc).__name__}: {exc}")


__all__ = [
    "CampaignRunnerProtocol",
    "CampaignUnit",
    "P2Quantile",
    "ProcessPoolCampaignExecutor",
    "RunTable",
    "SharedPopulationPack",
    "StreamingPercentiles",
    "canonical_result_bytes",
]
