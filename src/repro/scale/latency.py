"""Queueing-latency proxy: from utilization to per-class delay distributions.

The fluid solver answers "what fraction of demand is served"; the paper's
neutrality argument is also about *service quality* — a neutral domain must
deliver comparable delay to every client, and at hypergrowth scale the
latency tail, not the mean throughput, is the binding SLO.  This module maps
a solved allocation to per-flow path delays with an M/G/1-PS-style proxy:

* every shared resource (regional uplink, site uplink, site CPU) is treated
  as a single queueing station whose mean service time comes from the
  traffic actually crossing it (mean wire bits per packet over the link
  rate; the calibrated per-packet CPU cost over the site's cores) and whose
  waiting time follows the Pollaczek–Khinchine shape
  ``rho x (1 + cv^2) / (2 (1 - rho))`` — processor sharing is insensitive to
  the service distribution (``service_cv=1`` recovers the exact M/M/1-PS
  sojourn), and the configurable ``service_cv`` lets the proxy interpolate
  toward deterministic (``cv=0``, fixed-size packets through a FIFO) or
  heavy-tailed service;
* every flow composes its path: a deterministic base RTT from region/site
  *geometry* (regions and sites placed on a circle — a stand-in for the
  continental spread the catalogue's fleets imply) plus the queueing delays
  of the regional uplink, the site uplink, and the site CPU it crosses;
* the result is a client-weighted delay distribution per demand class —
  percentiles, means, and the fraction of clients whose path delay violates
  a latency SLO.

Everything is a vectorized O(resources + flows) pass over the solved
allocation, so recording latency percentiles per epoch adds nothing
measurable to a timeline solve.  Utilization is clamped below 1 by
``max_utilization``: the fluid solver drives saturated resources to exactly
``rho = 1``, where an open queueing formula diverges; the clamp turns "the
solver says saturated" into "the proxy says tens of service times deep",
which is the regime the SLO-violation metric is meant to flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import WorkloadError

#: Seconds of one-way propagation across the modelled geography (a
#: continental half-circumference at fiber speed, ~60 ms RTT coast to coast).
DEFAULT_GEOGRAPHY_SECONDS = 0.030
#: Floor RTT between a region and its closest site (last-mile + peering).
DEFAULT_MIN_RTT_SECONDS = 0.002


def allen_cunneen_factor(utilization, arrival_cv: float, service_cv: float,
                         max_utilization: float):
    """Mean G/G/1 wait (Allen–Cunneen) in units of the mean service time.

    ``rho (ca^2 + cs^2) / (2 (1 - rho))`` with ``rho`` clamped at
    ``max_utilization`` — monotone increasing in load and in both
    variability parameters, zero at zero load, finite at saturation.  The
    classic two-moment approximation: exact at the M/G/1 point
    (``ca = 1``, where it reduces to Pollaczek–Khinchine) and a standard
    engineering estimate for bursty (``ca > 1``) or smoothed (``ca < 1``)
    arrivals and heavy-tailed service (large ``cs``).  The single source of
    truth for the proxy's queueing shape:
    :meth:`LatencyModel.queueing_factor` evaluates it and
    :class:`repro.scale.autoscale.TargetLatencyPolicy` inverts it, so the
    two can never drift apart.
    """
    rho = np.clip(utilization, 0.0, max_utilization)
    return rho * (arrival_cv ** 2 + service_cv ** 2) / (2.0 * (1.0 - rho))


def pollaczek_khinchine_factor(utilization, service_cv: float,
                               max_utilization: float):
    """Mean P-K wait in units of the mean service time (M/G/1 arrivals).

    The Poisson-arrival (``arrival_cv = 1``) point of
    :func:`allen_cunneen_factor`, kept as the named default shape.
    """
    return allen_cunneen_factor(utilization, 1.0, service_cv, max_utilization)


@dataclass(frozen=True)
class LatencyModel:
    """Configuration of the utilization → delay proxy.

    ``service_cv`` is the coefficient of variation of resource service
    times (1.0 = exponential/PS-insensitive, 0.0 = deterministic; its
    square is the service-time SCV of the G/G/1 literature — large values
    model heavy-tailed service); ``arrival_cv`` is the arrival-process CV
    (1.0 = Poisson, the default, which keeps the proxy exactly the
    M/G/1-PS Pollaczek–Khinchine shape; > 1 models bursty arrivals via the
    Allen–Cunneen G/G/1 approximation); ``max_utilization`` clamps the
    queueing formula's ``rho`` so saturated resources report a large finite
    delay instead of infinity; ``geography_seconds`` scales the
    deterministic region↔site base RTT derived from ring geometry, and
    ``min_rtt_seconds`` is its floor.  ``region_site_rtt_seconds``
    overrides the geometry with an explicit ``(regions, sites)`` base-RTT
    matrix.
    """

    service_cv: float = 1.0
    arrival_cv: float = 1.0
    max_utilization: float = 0.98
    geography_seconds: float = DEFAULT_GEOGRAPHY_SECONDS
    min_rtt_seconds: float = DEFAULT_MIN_RTT_SECONDS
    region_site_rtt_seconds: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.service_cv < 0:
            raise WorkloadError("service-time CV must be non-negative")
        if self.arrival_cv < 0:
            raise WorkloadError("arrival-process CV must be non-negative")
        if not 0 < self.max_utilization < 1:
            raise WorkloadError("the utilization clamp must be in (0, 1)")
        if self.geography_seconds < 0 or self.min_rtt_seconds < 0:
            raise WorkloadError("geometry delays must be non-negative")
        if self.region_site_rtt_seconds is not None:
            matrix = np.asarray(self.region_site_rtt_seconds, dtype=np.float64)
            if matrix.ndim != 2 or (matrix < 0).any():
                raise WorkloadError("base-RTT override must be a non-negative matrix")
            object.__setattr__(self, "region_site_rtt_seconds", matrix)

    def queueing_factor(self, utilization: np.ndarray) -> np.ndarray:
        """Mean wait in units of the mean service time, Allen–Cunneen shaped.

        See :func:`allen_cunneen_factor` (clamped at this model's
        ``max_utilization``), monotone increasing, zero at zero load; at
        the default ``arrival_cv = 1`` it is exactly the P-K factor earlier
        releases computed, bit for bit.
        """
        return allen_cunneen_factor(utilization, self.arrival_cv,
                                    self.service_cv, self.max_utilization)

    @classmethod
    def heavy_tailed(cls, *, service_scv: float = 16.0,
                     arrival_cv: float = 1.0, **kwargs) -> "LatencyModel":
        """A G/G/1 proxy with heavy-tailed service (SCV ``service_scv``).

        ``service_scv`` is the *squared* CV of service times — 16 is a
        reasonable stand-in for the mice-and-elephants wire mix where a few
        huge transfers dominate the second moment.  Everything else passes
        through to the constructor.
        """
        if service_scv < 0:
            raise WorkloadError("the service-time SCV must be non-negative")
        return cls(service_cv=math.sqrt(service_scv), arrival_cv=arrival_cv,
                   **kwargs)

    def base_rtt_matrix(self, regions: int, sites: int) -> np.ndarray:
        """Deterministic base RTT (seconds) between every region and site.

        Regions and sites are placed at staggered angles on a circle; the
        RTT is the floor plus the round-trip arc distance scaled by
        ``geography_seconds``.  Pure geometry — no randomness — so the same
        fleet shape always yields the same matrix.
        """
        if regions <= 0 or sites <= 0:
            raise WorkloadError("geometry needs at least one region and one site")
        if self.region_site_rtt_seconds is not None:
            matrix = self.region_site_rtt_seconds
            if matrix.shape != (regions, sites):
                raise WorkloadError(
                    f"base-RTT override is {matrix.shape}, scenario has "
                    f"({regions}, {sites})"
                )
            return matrix
        region_angle = (np.arange(regions) + 0.5) / regions
        site_angle = (np.arange(sites) + 0.25) / sites
        distance = np.abs(region_angle[:, np.newaxis] - site_angle[np.newaxis, :])
        distance = np.minimum(distance, 1.0 - distance)  # shorter way around
        return self.min_rtt_seconds + 2.0 * distance * self.geography_seconds


def _weighted_percentiles(values: np.ndarray, weights: np.ndarray,
                          quantiles: Sequence[float],
                          order: Optional[np.ndarray] = None) -> List[float]:
    """Percentiles of a client-weighted discrete distribution.

    Each flow is a group of identical clients sharing one delay, so the
    distribution is a weighted step function; the q-percentile is the
    smallest delay whose cumulative client share reaches q.  ``order`` is
    an optional precomputed ``argsort`` of ``values`` — callers evaluating
    several weightings of the same values pay for one sort.
    """
    if values.size == 0:
        return [0.0 for _ in quantiles]
    if order is None:
        order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    cumulative = np.cumsum(weights[order])
    total = cumulative[-1]
    if total <= 0:
        return [0.0 for _ in quantiles]
    picks = np.searchsorted(cumulative, np.asarray(quantiles) * total, side="left")
    picks = np.minimum(picks, values.size - 1)
    return [float(sorted_values[p]) for p in picks]


@dataclass(frozen=True)
class ClassLatency:
    """One demand class's client-weighted delay summary (seconds)."""

    name: str
    clients: int
    mean_seconds: float
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    worst_seconds: float


@dataclass(frozen=True)
class LatencyResult:
    """Per-flow path delays plus the distributions campaigns report.

    ``flow_delay_seconds`` aligns with the template's flow arrays; the
    per-resource queueing delays are kept for diagnostics (which stage of
    the path is eating the budget).
    """

    flow_delay_seconds: np.ndarray
    group_clients: np.ndarray
    class_of: np.ndarray
    class_names: Tuple[str, ...]
    #: Queueing+service delay per resource, in capacity-vector order.
    resource_delay_seconds: np.ndarray

    @property
    def total_clients(self) -> int:
        """Clients covered by the distribution."""
        return int(self.group_clients.sum())

    def percentile(self, quantile: float) -> float:
        """Client-weighted path-delay percentile across every class."""
        return _weighted_percentiles(
            self.flow_delay_seconds, self.group_clients, [quantile]
        )[0]

    def percentiles(self, quantiles: Sequence[float]) -> List[float]:
        """Several client-weighted percentiles in one sorted pass."""
        return _weighted_percentiles(
            self.flow_delay_seconds, self.group_clients, quantiles
        )

    @property
    def mean_seconds(self) -> float:
        """Client-weighted mean path delay."""
        total = self.group_clients.sum()
        if total <= 0:
            return 0.0
        return float((self.flow_delay_seconds * self.group_clients).sum() / total)

    def slo_violation_fraction(self, slo_seconds: float) -> float:
        """Fraction of clients whose mean path delay exceeds the SLO."""
        if slo_seconds <= 0:
            raise WorkloadError("a latency SLO must be positive")
        total = self.group_clients.sum()
        if total <= 0:
            return 0.0
        over = self.flow_delay_seconds > slo_seconds
        return float(self.group_clients[over].sum() / total)

    def by_class(self) -> Dict[str, ClassLatency]:
        """Client-weighted delay summaries, one per demand class.

        The neutrality check in numbers: a neutral domain shows comparable
        per-class rows; a discriminated class shows a displaced tail.
        """
        out: Dict[str, ClassLatency] = {}
        for index, name in enumerate(self.class_names):
            members = self.class_of == index
            delays = self.flow_delay_seconds[members]
            clients = self.group_clients[members]
            total = clients.sum()
            if total <= 0:
                out[name] = ClassLatency(name, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
                continue
            p50, p95, p99 = _weighted_percentiles(delays, clients, (0.50, 0.95, 0.99))
            out[name] = ClassLatency(
                name=name,
                clients=int(total),
                mean_seconds=float((delays * clients).sum() / total),
                p50_seconds=p50,
                p95_seconds=p95,
                p99_seconds=p99,
                worst_seconds=float(delays.max()),
            )
        return out


def resource_delays(model: LatencyModel, utilization: np.ndarray,
                    service_seconds: np.ndarray) -> np.ndarray:
    """Mean sojourn (service + P-K wait) per resource, vectorized.

    ``service_seconds`` is each resource's mean service time; zero-service
    resources (nothing crossing them) contribute zero delay.
    """
    return service_seconds * (1.0 + model.queueing_factor(utilization))


def evaluate_latency(template, epoch, allocation, model: LatencyModel) -> LatencyResult:
    """Compose per-flow path delays from one solved epoch.

    ``template`` is the :class:`repro.scale.scenario.ProblemTemplate` the
    epoch was instantiated from, ``epoch`` its
    :class:`repro.scale.scenario.EpochProblem`, ``allocation`` the solved
    :class:`repro.scale.solver.Allocation`.  One O(resources + flows) pass:

    * per-resource utilization from the allocation;
    * per-resource mean service times from the traffic mix actually
      crossing each resource (packet-weighted mean wire bits over the link
      rate for uplinks; the calibrated per-packet cost over the cores for
      site CPUs);
    * per-flow delay = base RTT(region, site) + regional-uplink sojourn +
      site-uplink sojourn + site-CPU sojourn.
    """
    problem = epoch.problem
    regions, sites = template.regions, template.sites
    utilization = allocation.utilization(problem)

    # Packets/s each flow pushes (rate is bps per client; group size scales).
    flow_pps = allocation.rates * template.group_clients / template.bits_per_packet
    flow_bps = allocation.rates * template.group_clients

    def mean_service(bps_by: np.ndarray, pps_by: np.ndarray,
                     capacity: np.ndarray) -> np.ndarray:
        """Mean packet transmission time on a link: mean bits / rate."""
        with np.errstate(divide="ignore", invalid="ignore"):
            mean_bits = np.where(pps_by > 0, bps_by / pps_by, 0.0)
            service = np.where(capacity > 0, mean_bits / capacity, 0.0)
        return service

    region_bps = np.bincount(template.region_of, weights=flow_bps, minlength=regions)
    region_pps = np.bincount(template.region_of, weights=flow_pps, minlength=regions)
    site_bps = np.bincount(template.site_of, weights=flow_bps, minlength=sites)
    site_pps = np.bincount(template.site_of, weights=flow_pps, minlength=sites)

    capacities = problem.capacities
    region_capacity = capacities[:regions]
    uplink_capacity = capacities[regions:regions + sites]
    cpu_capacity = capacities[regions + sites:]

    with np.errstate(divide="ignore", invalid="ignore"):
        # CPU: the calibrated per-packet cost over the site's core budget.
        cpu_service = np.where(
            cpu_capacity > 0,
            template.fleet.cost_model.data_packet_cost_seconds
            / np.where(cpu_capacity > 0, cpu_capacity, 1.0),
            0.0,
        )
    service = np.concatenate([
        mean_service(region_bps, region_pps, region_capacity),
        mean_service(site_bps, site_pps, uplink_capacity),
        cpu_service,
    ])
    per_resource = resource_delays(model, utilization, service)

    base_rtt = model.base_rtt_matrix(regions, sites)
    flow_delay = (
        base_rtt[template.region_of, template.site_of]
        + per_resource[template.region_of]
        + per_resource[regions + template.site_of]
        + per_resource[regions + sites + template.site_of]
    )
    return LatencyResult(
        flow_delay_seconds=flow_delay,
        group_clients=template.group_clients,
        class_of=template.class_of,
        class_names=tuple(template.population.mix.names),
        resource_delay_seconds=per_resource,
    )
