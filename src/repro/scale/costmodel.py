"""CPU cost model of the neutralizer fast path, in crypto operations.

The fluid simulator needs one number per site: how many neutralized data
packets (and key setups) a box can push per second.  The paper derives that
from primitive rates (2.35 M AES ops/s on the evaluation Opteron); the
reproduction does the same against its own substrate.  The per-packet
operation counts mirror :class:`repro.core.neutralizer.Neutralizer`'s data
path — one Ks derivation, one address decryption (a single AES-CTR block),
and a tag verification — and the per-setup count is one RSA-512 encryption
plus one Ks derivation.

:meth:`CryptoCostModel.default` carries rates measured once with
``benchmarks/bench_crypto.py`` on the development container (fast AES
backend); :meth:`CryptoCostModel.calibrated` re-measures them in-process with
the same :func:`repro.analysis.metrics.measure_throughput` harness, so a
scale experiment can be pinned to the hardware it actually runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..analysis.metrics import measure_throughput
from ..crypto.backend import fast_backend_available, get_cipher
from ..crypto.kdf import derive_symmetric_key
from ..crypto.randomness import DeterministicRandom
from ..crypto.rsa import generate_keypair
from ..exceptions import WorkloadError


@dataclass(frozen=True)
class CryptoCostModel:
    """Primitive rates plus per-operation counts for the neutralizer fast path."""

    #: Single-block AES encryptions per second (one core).
    aes_blocks_per_second: float
    #: Stateless ``Ks = hash(KM, nonce, srcIP)`` derivations per second.
    kdf_ops_per_second: float
    #: RSA-512 public-key encryptions (e = 3) per second.
    rsa512_encryptions_per_second: float
    #: AES block operations on the data path (address decrypt + tag verify).
    aes_blocks_per_data_packet: float = 3.0
    #: Ks derivations per data packet (exactly one: statelessness).
    kdf_ops_per_data_packet: float = 1.0
    #: Ks derivations per key setup (nonce chosen, key derived once).
    kdf_ops_per_key_setup: float = 1.0
    #: RSA encryptions per key setup (the chosen cheap direction, §3.2).
    rsa_encryptions_per_key_setup: float = 1.0

    def __post_init__(self) -> None:
        if min(self.aes_blocks_per_second, self.kdf_ops_per_second,
               self.rsa512_encryptions_per_second) <= 0:
            raise WorkloadError("primitive rates must be positive")

    @property
    def data_packet_cost_seconds(self) -> float:
        """CPU seconds one core spends forwarding one neutralized data packet."""
        return (
            self.aes_blocks_per_data_packet / self.aes_blocks_per_second
            + self.kdf_ops_per_data_packet / self.kdf_ops_per_second
        )

    @property
    def key_setup_cost_seconds(self) -> float:
        """CPU seconds one core spends answering one key-setup request."""
        return (
            self.rsa_encryptions_per_key_setup / self.rsa512_encryptions_per_second
            + self.kdf_ops_per_key_setup / self.kdf_ops_per_second
        )

    def data_packets_per_second(self, cores: float = 1.0) -> float:
        """Sustainable data-path forwarding rate for ``cores`` dedicated cores."""
        return cores / self.data_packet_cost_seconds

    def key_setups_per_second(self, cores: float = 1.0) -> float:
        """Sustainable key-setup answer rate for ``cores`` dedicated cores."""
        return cores / self.key_setup_cost_seconds

    def scaled(self, factor: float) -> "CryptoCostModel":
        """A model whose primitives run ``factor`` times faster (what-if box)."""
        if factor <= 0:
            raise WorkloadError("speed factor must be positive")
        return replace(
            self,
            aes_blocks_per_second=self.aes_blocks_per_second * factor,
            kdf_ops_per_second=self.kdf_ops_per_second * factor,
            rsa512_encryptions_per_second=self.rsa512_encryptions_per_second * factor,
        )

    @classmethod
    def default(cls) -> "CryptoCostModel":
        """Rates measured once on the development container (fast AES backend).

        These are the same quantities ``benchmarks/bench_crypto.py`` times;
        use :meth:`calibrated` to re-measure on the current machine.
        """
        return cls(
            aes_blocks_per_second=1_700_000.0,
            kdf_ops_per_second=330_000.0,
            rsa512_encryptions_per_second=150_000.0,
        )

    @classmethod
    def calibrated(cls, *, iterations: int = 500, seed: int = 303) -> "CryptoCostModel":
        """Measure the primitive rates in-process on the current machine."""
        rng = DeterministicRandom(seed)
        key = rng.random_bytes(16)
        block = rng.random_bytes(16)
        source = rng.random_bytes(4)
        nonce = rng.nonce()
        cipher = get_cipher(key, backend="fast" if fast_backend_available() else None)
        keypair = generate_keypair(512, rng)
        payload = rng.random_bytes(24)

        aes = measure_throughput(
            "aes block", lambda: cipher.encrypt_block(block), iterations=iterations * 4
        )
        kdf = measure_throughput(
            "ks derivation", lambda: derive_symmetric_key(key, nonce, source),
            iterations=iterations * 4,
        )
        rsa = measure_throughput(
            "rsa-512 encrypt", lambda: keypair.public.encrypt(payload, rng),
            iterations=iterations,
        )
        return cls(
            aes_blocks_per_second=aes.per_second,
            kdf_ops_per_second=kdf.per_second,
            rsa512_encryptions_per_second=rsa.per_second,
        )


@dataclass(frozen=True)
class ProvisioningCostModel:
    """Dollar cost of running (and churning) the fleet, per epoch.

    :class:`CryptoCostModel` prices the fast path in CPU seconds; this model
    prices the *deployment* in dollars, so autoscaling and Monte-Carlo
    campaigns can report a cost distribution next to availability instead of
    assuming capacity is free.  The defaults are commodity-cloud shaped
    (general-purpose core-hours, transit per Gb/s-hour, a fixed per-PoP
    overhead for space/power/peering) — the absolute level is a knob, the
    *ratios* are what make churn-vs-SLO frontiers meaningful.  Remapped
    clients are charged too: every client the hash ring moves performs a
    fresh key setup against its new site (the paper's stateless design makes
    the remap cheap, not free).
    """

    #: Dollars per provisioned core-hour (charged for in-service and
    #: warming sites alike — a box being provisioned is a box being paid for).
    core_hour_usd: float = 0.05
    #: Dollars per Gb/s-hour of provisioned uplink.
    gbps_hour_usd: float = 0.08
    #: Fixed dollars per site-hour (space, power, peering).
    site_hour_usd: float = 0.50
    #: Dollars per thousand remapped clients (fresh key setups at the new site).
    remap_usd_per_thousand: float = 0.01
    #: Price factor for spot-tier capacity relative to reserved.  Spot boxes
    #: ride the same ring at the same capacity — the discount is the whole
    #: point of mixing tiers, and what the cost frontier trades against the
    #: operational story of preemptible capacity.
    spot_multiplier: float = 0.6

    def __post_init__(self) -> None:
        if min(self.core_hour_usd, self.gbps_hour_usd, self.site_hour_usd,
               self.remap_usd_per_thousand) < 0:
            raise WorkloadError("provisioning prices must be non-negative")
        if self.spot_multiplier < 0:
            raise WorkloadError("the spot multiplier must be non-negative")

    def epoch_cost(self, *, cores: float, uplink_bps: float, sites: float,
                   epoch_seconds: float, clients_remapped: int = 0,
                   spot_cores: float = 0.0, spot_uplink_bps: float = 0.0,
                   spot_sites: float = 0.0) -> float:
        """Dollars one epoch costs for the committed capacity plus its churn.

        ``cores``/``uplink_bps``/``sites`` are the reserved-tier sums; the
        ``spot_*`` sums are billed at ``spot_multiplier`` of the same rates.
        """
        hours = epoch_seconds / 3600.0
        return (
            (self.core_hour_usd * cores
             + self.gbps_hour_usd * uplink_bps / 1e9
             + self.site_hour_usd * sites) * hours
            + self.spot_multiplier
            * (self.core_hour_usd * spot_cores
               + self.gbps_hour_usd * spot_uplink_bps / 1e9
               + self.site_hour_usd * spot_sites) * hours
            + self.remap_usd_per_thousand * clients_remapped / 1000.0
        )
