"""Live campaign monitor: an HTTP/SSE observability service.

This is the *serving* half of the observability plane: it mounts on a
running campaign's :class:`~repro.scale.telemetry.Telemetry` and exposes
the live event stream, metrics registry, and progress state to any HTTP
client — ``curl``, a Prometheus scraper, or ``tools/watch_campaign.py``.
Dependency-light by design: stdlib :class:`ThreadingHTTPServer`, no web
framework, no async runtime.

Endpoints (see ``docs/observability.md`` for the full reference):

``GET /healthz``
    Liveness probe: mount state, event count, uptime.
``GET /metrics``
    The live :class:`~repro.scale.telemetry.MetricsRegistry` in
    Prometheus text exposition format (``# HELP``/``# TYPE`` included).
``GET /events?since_seq=N&limit=M``
    Paged canonical NDJSON with a strictly-after cursor — the HTTP face
    of :meth:`EventLog.tail`.  ``X-Next-Seq`` carries the cursor to pass
    on the next request.
``GET /stream?since_seq=N&limit=M``
    Server-Sent Events tail of the canonical stream.  Every canonical
    event is framed with ``id: <seq>``; a client that reconnects with
    ``Last-Event-ID: <seq>`` resumes strictly after that cursor, so the
    canonical sequence is replayed exactly once, in order.  Heartbeat
    frames carry no ``id`` and never advance the cursor.
``GET /progress``
    Units complete/in-flight, phase breakdown, elapsed and ETA.
``GET /verdicts``
    Detector verdict events only (``kind == "detector"``), as NDJSON.

Determinism contract — the monitor is an *observer*:

* It subscribes to the campaign's :class:`~repro.scale.obs.EventLog` and
  mirrors canonical events into its own buffer; it never emits into the
  log, so serial/parallel canonical NDJSON and ``canonical_result_bytes``
  are byte-identical with the monitor on or off.
* Pool workers ship canonical events home only with finished units, so
  liveness between completions comes from an out-of-band
  ``multiprocessing`` heartbeat queue (see
  :meth:`MonitorServer.watch_heartbeats`).  Heartbeat records carry
  wall-clock and PIDs and are therefore *quarantined*: they feed
  ``/progress`` and ``/stream`` but are never merged into the canonical
  log or the NDJSON export.
* Wall-clock appears only in monitor-local state (uptime, ETA) and in
  quarantined heartbeats — never in anything canonical.
"""

from __future__ import annotations

import json
import queue as queue_module
import threading
import time
from dataclasses import asdict, is_dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .telemetry import Telemetry, phase_breakdown

__all__ = ["MonitorServer"]

#: Event kind used for out-of-band worker liveness records.  Quarantined:
#: never emitted into (or merged into) a canonical :class:`EventLog`.
HEARTBEAT_KIND = "unit_heartbeat"


def _json_bytes(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


class _MonitorHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`MonitorServer` (class attr)."""

    monitor: "MonitorServer" = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.0"
    server_version = "repro-monitor/1"

    # The default handler logs every request to stderr; a dashboard
    # polling at 1 Hz would drown the campaign's own output.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    # -- plumbing ------------------------------------------------------

    def _send(self, status: int, content_type: str, body: bytes,
              extra_headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-cache")
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _query_int(self, params: Dict[str, List[str]], name: str,
                   default: int) -> int:
        values = params.get(name)
        if not values:
            return default
        try:
            return int(values[0])
        except ValueError:
            raise _BadRequest(f"{name} must be an integer, got {values[0]!r}")

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        params = parse_qs(parsed.query)
        try:
            route = {
                "/healthz": self._serve_healthz,
                "/metrics": self._serve_metrics,
                "/events": self._serve_events,
                "/stream": self._serve_stream,
                "/progress": self._serve_progress,
                "/verdicts": self._serve_verdicts,
            }.get(parsed.path)
            if route is None:
                self._send(404, "application/json",
                           _json_bytes({"error": f"no route {parsed.path}"}))
                return
            route(params)
        except _BadRequest as exc:
            self._send(400, "application/json", _json_bytes({"error": str(exc)}))
        except (BrokenPipeError, ConnectionResetError, OSError):
            # Client went away (or the server is being hard-closed while
            # we stream); either way there is nobody left to answer.
            pass

    # -- endpoints -----------------------------------------------------

    def _serve_healthz(self, params: Dict[str, List[str]]) -> None:
        self._send(200, "application/json",
                   _json_bytes(self.monitor.health()))

    def _serve_metrics(self, params: Dict[str, List[str]]) -> None:
        text = self.monitor.metrics_text()
        if text is None:
            self._send(503, "application/json",
                       _json_bytes({"error": "no metrics registry mounted"}))
            return
        self._send(200, "text/plain; version=0.0.4; charset=utf-8",
                   text.encode("utf-8"))

    def _serve_events(self, params: Dict[str, List[str]]) -> None:
        since_seq = self._query_int(params, "since_seq", -1)
        limit = self._query_int(params, "limit", self.monitor.page_limit)
        lines, next_seq, remaining = self.monitor.events_page(since_seq, limit)
        body = "".join(line + "\n" for line in lines).encode("utf-8")
        self._send(200, "application/x-ndjson", body, {
            "X-Next-Seq": str(next_seq),
            "X-Remaining": str(remaining),
        })

    def _serve_verdicts(self, params: Dict[str, List[str]]) -> None:
        since_seq = self._query_int(params, "since_seq", -1)
        lines = self.monitor.verdict_lines(since_seq)
        body = "".join(line + "\n" for line in lines).encode("utf-8")
        self._send(200, "application/x-ndjson", body)

    def _serve_progress(self, params: Dict[str, List[str]]) -> None:
        self._send(200, "application/json",
                   _json_bytes(self.monitor.progress()))

    def _serve_stream(self, params: Dict[str, List[str]]) -> None:
        monitor = self.monitor
        # Last-Event-ID (the SSE reconnect contract) wins over the
        # since_seq query parameter; both mean "resume strictly after".
        cursor = self._query_int(params, "since_seq", -1)
        header_id = self.headers.get("Last-Event-ID")
        if header_id is not None:
            try:
                cursor = int(header_id)
            except ValueError:
                raise _BadRequest(f"Last-Event-ID must be an integer, "
                                  f"got {header_id!r}")
        #: Close the stream after this many canonical events (0 = never);
        #: lets curl/CI capture a prefix without killing the connection.
        limit = self._query_int(params, "limit", 0)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        sent = 0
        live_cursor = monitor.live_len()
        while True:
            chunk, cursor, live, live_cursor, closing = monitor.wait_for_frames(
                cursor, live_cursor, timeout=monitor.heartbeat_seconds)
            frames: List[bytes] = []
            for seq, kind, line in chunk:
                frames.append(f"id: {seq}\nevent: {kind}\ndata: {line}\n\n"
                              .encode("utf-8"))
                sent += 1
                if limit and sent >= limit:
                    break
            for record in live:
                # Heartbeats are live-only: no ``id`` line, so they never
                # advance the client's Last-Event-ID reconnect cursor.
                frames.append(
                    b"event: " + HEARTBEAT_KIND.encode() + b"\ndata: "
                    + json.dumps(record, sort_keys=True,
                                 separators=(",", ":")).encode("utf-8")
                    + b"\n\n")
            if not chunk and not live:
                # Idle keep-alive comment so proxies and clients can tell
                # a quiet campaign from a dead connection.
                frames.append(b": keep-alive\n\n")
            self.wfile.write(b"".join(frames))
            self.wfile.flush()
            if closing or (limit and sent >= limit):
                return


class _BadRequest(Exception):
    pass


class MonitorServer:
    """Mounts on a campaign's telemetry and serves it over HTTP/SSE.

    Typical use — attach to the telemetry before (or during) a run::

        telemetry = Telemetry(trace=False, events=True)
        attach_detectors(telemetry.events)
        runner = StochasticCampaignRunner(..., telemetry=telemetry)
        monitor = MonitorServer.attach(telemetry, runner=runner)
        print("watching at", monitor.url)
        result = runner.run_parallel(n_workers=4, monitor=monitor)
        monitor.close()

    Attaching, detaching, or hard-closing the monitor at any point —
    including mid-campaign — never changes a campaign number or a
    canonical event byte: the monitor only ever *reads* the telemetry it
    is mounted on.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 heartbeat_seconds: float = 10.0,
                 page_limit: int = 500) -> None:
        self.host = host
        self.port = port
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.page_limit = int(page_limit)
        self._cond = threading.Condition()
        #: Canonical mirror: ``(seq, kind, canonical_json_line)`` in seq
        #: order.  seq numbers are contiguous from 0 (the EventLog
        #: contract), so list index == seq.
        self._canonical: List[Tuple[int, str, str]] = []
        #: Events whose notification arrived ahead of a lower seq.  A
        #: detector's nested emit is delivered to later subscribers (this
        #: monitor) *before* the outer event that triggered it, so the
        #: mirror stages arrivals here and appends only the contiguous
        #: prefix — the served stream is always in canonical log order.
        self._out_of_order: Dict[int, Tuple[object, str]] = {}
        #: Quarantined live feed (heartbeats); plain dicts, never merged
        #: into the canonical mirror or any export.
        self._live: List[Dict[str, object]] = []
        self._telemetry: Optional[Telemetry] = None
        self._runner = None
        self._phase_source = None  # executor with .phase_durations
        self._subscription = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._closing = False
        self._started_wall = time.time()
        # progress state (under self._cond)
        self._units_total: Optional[int] = None
        self._units_done_canonical = 0
        self._units_done_live = 0
        self._experiment: Optional[str] = None
        self._complete = False
        self._campaign_started_wall: Optional[float] = None
        self._in_flight: Dict[int, Dict[str, object]] = {}
        self._kind_counts: Dict[str, int] = {}
        # heartbeat drain (worker pools)
        self._hb_thread: Optional[threading.Thread] = None
        self._hb_stop: Optional[threading.Event] = None

    # -- mounting ------------------------------------------------------

    @classmethod
    def attach(cls, telemetry: Telemetry, *, runner=None,
               host: str = "127.0.0.1", port: int = 0,
               **kwargs) -> "MonitorServer":
        """Create a monitor mounted on ``telemetry`` and start serving."""
        monitor = cls(host, port, **kwargs)
        monitor.mount(telemetry, runner=runner)
        monitor.start()
        return monitor

    def mount(self, telemetry: Telemetry, *, runner=None) -> "MonitorServer":
        """Mount on ``telemetry`` (idempotent for the same telemetry).

        Subscribes to the telemetry's event log with full replay, so a
        monitor attached mid-campaign still serves the stream from seq 0.
        A telemetry without an event log still gets ``/metrics``,
        ``/progress`` (heartbeat-driven), and ``/healthz``.
        """
        if self._telemetry is telemetry and self._subscription is not None:
            if runner is not None:
                self._runner = runner
            return self
        self.detach()
        self._telemetry = telemetry
        if runner is not None:
            self._runner = runner
        if telemetry.events is not None:
            with self._cond:
                self._reset_locked()
            self._subscription = telemetry.events.subscribe(
                self._observe, replay=True)
        return self

    def detach(self) -> None:
        """Stop observing the mounted event log (server keeps running)."""
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None

    def _reset_locked(self) -> None:
        self._canonical.clear()
        self._out_of_order.clear()
        self._units_total = None
        self._units_done_canonical = 0
        self._experiment = None
        self._complete = False
        self._in_flight.clear()
        self._kind_counts.clear()

    # -- the observer (runs on the simulation thread) ------------------

    def _observe(self, event) -> None:
        line = event.to_json()
        with self._cond:
            self._out_of_order[event.seq] = (event, line)
            while len(self._canonical) in self._out_of_order:
                ready, ready_line = self._out_of_order.pop(
                    len(self._canonical))
                self._ingest_locked(ready, ready_line)
            self._cond.notify_all()

    def _ingest_locked(self, event, line: str) -> None:
        self._canonical.append((event.seq, event.kind, line))
        self._kind_counts[event.kind] = \
            self._kind_counts.get(event.kind, 0) + 1
        payload = event.payload
        if event.kind == "campaign_started":
            self._units_total = int(payload.get("units", 0))
            self._units_done_canonical = 0
            self._units_done_live = 0
            self._experiment = payload.get("experiment")
            self._complete = False
            self._in_flight.clear()
            self._campaign_started_wall = time.time()
        elif event.kind == "unit_started":
            self._in_flight[int(payload["unit"])] = {
                "unit": int(payload["unit"]),
                "label": payload.get("label"),
            }
        elif event.kind == "unit_complete":
            self._in_flight.pop(int(payload["unit"]), None)
            self._units_done_canonical += 1
        elif event.kind == "campaign_complete":
            self._complete = True
            self._in_flight.clear()

    # -- the heartbeat channel (worker pools) --------------------------

    def watch_heartbeats(self, heartbeat_queue) -> None:
        """Drain an out-of-band worker heartbeat queue into the live feed.

        ``heartbeat_queue`` is a manager queue the pool initializer hands
        to every worker; records land in the quarantined live feed (they
        carry PIDs and wall-clock) and update ``/progress`` between unit
        completions.  Called by the executor — one channel per pooled run.
        """
        self.unwatch_heartbeats()
        self._hb_stop = threading.Event()

        def drain(stop: threading.Event) -> None:
            while True:
                try:
                    record = heartbeat_queue.get(timeout=0.2)
                except queue_module.Empty:
                    if stop.is_set():
                        return
                    continue
                except (EOFError, OSError, ValueError):
                    # Manager gone (pool torn down mid-drain): nothing
                    # left to read.
                    return
                if isinstance(record, dict):
                    self.observe_heartbeat(record)

        self._hb_thread = threading.Thread(
            target=drain, args=(self._hb_stop,),
            name="monitor-heartbeats", daemon=True)
        self._hb_thread.start()

    def unwatch_heartbeats(self) -> None:
        """Stop the heartbeat drainer (after draining what is queued)."""
        if self._hb_stop is not None:
            self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=5.0)
        self._hb_thread = None
        self._hb_stop = None

    def observe_heartbeat(self, record: Dict[str, object]) -> None:
        """Feed one quarantined liveness record into the live feed."""
        record = dict(record)
        record.setdefault("kind", HEARTBEAT_KIND)
        with self._cond:
            self._live.append(record)
            unit = record.get("unit")
            if unit is not None:
                if record.get("phase") == "started":
                    self._in_flight[int(unit)] = {
                        "unit": int(unit),
                        "label": record.get("label"),
                        "pid": record.get("pid"),
                    }
                elif record.get("phase") == "complete":
                    self._in_flight.pop(int(unit), None)
                    self._units_done_live += 1
            self._cond.notify_all()

    # -- server lifecycle ----------------------------------------------

    def start(self) -> "MonitorServer":
        """Bind and serve on a daemon thread (idempotent)."""
        if self._server is not None:
            return self
        handler = type("BoundMonitorHandler", (_MonitorHandler,),
                       {"monitor": self})
        server = ThreadingHTTPServer((self.host, self.port), handler)
        server.daemon_threads = True  # hard close never joins SSE clients
        self._server = server
        self.port = server.server_address[1]
        self._closing = False
        self._server_thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.1},
            name="monitor-http", daemon=True)
        self._server_thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Hard shutdown: detach, stop heartbeats, close the server.

        Safe at any point in a campaign — connected SSE clients are cut,
        the simulation thread is never blocked, and no canonical state is
        touched.  Idempotent.
        """
        self.detach()
        self.unwatch_heartbeats()
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        server, thread = self._server, self._server_thread
        self._server = None
        self._server_thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MonitorServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- views the handler serves --------------------------------------

    def health(self) -> Dict[str, object]:
        with self._cond:
            return {
                "status": "ok",
                "mounted": self._telemetry is not None,
                "events": len(self._canonical),
                "heartbeats": len(self._live),
                "uptime_seconds": round(time.time() - self._started_wall, 3),
            }

    def metrics_text(self) -> Optional[str]:
        telemetry = self._telemetry
        if telemetry is None or telemetry.metrics is None:
            return None
        # The registry lives on the simulation thread; a merge landing
        # mid-render can resize its dicts under us.  The render is pure,
        # so retry — the registry is append-mostly and settles instantly.
        for _ in range(8):
            try:
                return telemetry.metrics.prometheus_text()
            except RuntimeError:
                time.sleep(0.005)
        return telemetry.metrics.prometheus_text()

    def events_page(self, since_seq: int,
                    limit: int) -> Tuple[List[str], int, int]:
        """Canonical lines strictly after ``since_seq`` (paged).

        Returns ``(lines, next_seq, remaining)`` — the same strictly-after
        cursor contract as :meth:`EventLog.tail`.
        """
        start = max(0, since_seq + 1)
        with self._cond:
            page = self._canonical[start:start + max(0, limit)]
            total = len(self._canonical)
        lines = [line for _, _, line in page]
        next_seq = page[-1][0] if page else since_seq
        remaining = max(0, total - (next_seq + 1))
        return lines, next_seq, remaining

    def verdict_lines(self, since_seq: int = -1) -> List[str]:
        start = max(0, since_seq + 1)
        with self._cond:
            return [line for _, kind, line in self._canonical[start:]
                    if kind == "detector"]

    def live_len(self) -> int:
        with self._cond:
            return len(self._live)

    def wait_for_frames(self, cursor: int, live_cursor: int, *,
                        timeout: float):
        """Block until there is something past either cursor (or timeout).

        Returns ``(canonical_chunk, new_cursor, live_chunk,
        new_live_cursor, closing)`` where ``canonical_chunk`` is
        ``(seq, kind, line)`` tuples strictly after ``cursor``.
        """
        start = max(0, cursor + 1)
        deadline = time.monotonic() + timeout
        with self._cond:
            while (len(self._canonical) <= start
                   and len(self._live) <= live_cursor
                   and not self._closing):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            chunk = self._canonical[start:]
            live = self._live[live_cursor:]
            closing = self._closing
        new_cursor = chunk[-1][0] if chunk else cursor
        return chunk, new_cursor, live, live_cursor + len(live), closing

    def progress(self) -> Dict[str, object]:
        """The ``/progress`` view: completion, in-flight units, ETA, phases."""
        with self._cond:
            total = self._units_total
            done = max(self._units_done_canonical, self._units_done_live)
            if total is not None:
                done = min(done, total)
            in_flight = sorted(self._in_flight.values(),
                               key=lambda rec: rec["unit"])
            out: Dict[str, object] = {
                "experiment": self._experiment,
                "units_total": total,
                "units_done": done,
                "units_in_flight": in_flight,
                "complete": self._complete,
                "events": {
                    "total": len(self._canonical),
                    "last_seq": (self._canonical[-1][0]
                                 if self._canonical else -1),
                    "by_kind": dict(sorted(self._kind_counts.items())),
                },
                "heartbeats": len(self._live),
            }
            started = self._campaign_started_wall
            complete = self._complete
        elapsed = (time.time() - started) if started is not None else None
        out["elapsed_seconds"] = (round(elapsed, 3)
                                  if elapsed is not None else None)
        eta = 0.0 if complete else None
        if (not complete and elapsed is not None and total
                and 0 < done < total):
            eta = round(elapsed / done * (total - done), 3)
        out["eta_seconds"] = eta
        out["phases"] = self._phase_view()
        runner = self._runner
        if runner is not None:
            try:
                state = runner.get_current_state()
                out["state"] = (asdict(state) if is_dataclass(state)
                                else state)
            except Exception:
                # Progress must stay servable even while the runner is
                # mid-mutation on the simulation thread.
                out["state"] = None
        return out

    def _phase_view(self) -> Dict[str, Dict[str, float]]:
        durations: Dict[str, List[float]] = {}
        telemetry = self._telemetry
        if telemetry is not None and telemetry.tracer is not None:
            for record in list(telemetry.tracer.spans):
                durations.setdefault(record.name, []).append(record.dur_s)
        source = self._phase_source
        if source is not None:
            for name, values in dict(source.phase_durations).items():
                durations.setdefault(name, []).extend(list(values))
        if not durations:
            return {}
        return phase_breakdown(durations)
