"""Fair capacity allocation, vectorized over flows × resources.

This is the fairness model under the paper's claim that the neutral domain
serves everyone alike: when demand exceeds a neutralizer fleet's capacity,
load is shed max-min fairly per client rather than by the access ISP's
preferences.  The fluid model reduces a deployment to a small linear
structure: each *flow*
is an aggregate of identical clients (one (region, class, site) group) with a
demand rate, and each *resource* is a shared capacity (a regional uplink in
bits/s, a site uplink in bits/s, a site CPU in core-seconds/s).  The usage
matrix says how much of each resource one unit of flow rate consumes, so
feasibility is ``usage @ rates <= capacities``.

Two demand families share the problem structure:

*Inelastic* flows (CBR media, the default) offer a fixed rate and do not
back off; congestion means the domain sheds their excess max-min fairly.
:func:`max_min_allocation` computes that point by progressive filling
expressed as a fixed-point iteration on numpy arrays: all unfrozen flows are
raised by the largest common increment any resource allows, flows that hit
their demand or cross a newly saturated resource freeze, and the loop
repeats until every flow is frozen.  Each pass is O(R×F) vectorized work and
at least one flow freezes per pass, so the iteration count is bounded by the
number of flows — a few hundred groups even for a million-client population.

*Elastic* flows (TCP-like transfers) adapt their rate to congestion:
:func:`alpha_fair_allocation` computes the weighted alpha-fair operating
point (Mo & Walrand's family — alpha 1 is proportional fairness, alpha ~2 is
TCP-like, and the alpha → ∞ limit *is* max-min) by a damped dual-price fixed
point: each resource carries a congestion price, each flow's rate is the
closed-form utility inverse of its path price capped at its peak demand, and
prices adapt multiplicatively until loads meet capacities.  Every pass is
the same O(R×F) matrix-vector work as a fill pass.  Mixed populations are
composed by :func:`solve_allocation`: inelastic flows are served first
(CBR sources do not yield), elastic flows share the residual alpha-fairly —
the same priority a FIFO bottleneck gives non-responsive traffic over
congestion-controlled flows.

Time-stepped callers (:mod:`repro.scale.timeline`) solve a long sequence of
nearby problems, so the solver also supports *warm starts*: a candidate
allocation (the previous epoch's rates clipped to the new demands, or the
demands themselves) is accepted without any filling if it satisfies the
relevant optimality certificate — the Bertsekas & Gallager bottleneck
condition for max-min (:func:`verify_max_min`), the KKT conditions
(stationarity + complementary slackness) for alpha fairness
(:func:`verify_alpha_fair`).  Each check is a constant number of O(R×F)
passes versus tens for a cold solve, and it either certifies exactly the
fair point or falls back to the cold solve, so warm starts can never change
the answer, only the time to reach it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import WorkloadError
from .telemetry import NULL, Telemetry

#: Relative slack used to call a resource saturated / a demand met.
#: Membership tests (does a flow use a resource at all) are exact-zero
#: comparisons instead: usage coefficients can be legitimately tiny.
_TOL = 1e-9
#: Congestion prices below this floor count as zero (resource unpriced).
#: The dual iteration keeps prices strictly positive so the multiplicative
#: update can always move them; the floor is where "positive" ends and
#: complementary slackness starts being enforced.
_PRICE_FLOOR = 1e-12
#: Relative tolerance the alpha-fair fixed point aims for while young.
_ALPHA_TOL = 1e-6
#: Relaxed exit tolerance past ``_TIGHT_ITERATIONS``: near-critical problems
#: converge geometrically but slowly, and a 10^-4 relative operating point
#: is far below the fluid model's own resolution.
_ALPHA_EXIT_TOL = 3e-4
_TIGHT_ITERATIONS = 80
#: Relative stationarity slack of the KKT warm-start certificate; matches
#: the relaxed exit (plus the feasibility projection) so a solve's own
#: output always re-certifies.
_KKT_RTOL = 1e-2


@dataclass
class CapacityProblem:
    """Flows with demands, resources with capacities, and the usage coupling."""

    #: Demand rate per flow (units/s; units are whatever the caller chose,
    #: e.g. "client-equivalents" so fairness is per client).  For elastic
    #: flows this is the *peak* rate — what the flow takes when uncongested.
    demands: np.ndarray
    #: ``usage[r, f]``: resource-r units consumed by one unit of flow f.
    usage: np.ndarray
    #: Capacity per resource (resource units/s).
    capacities: np.ndarray
    flow_labels: List[str] = field(default_factory=list)
    resource_labels: List[str] = field(default_factory=list)
    #: Per-flow elasticity mask: ``True`` flows adapt their rate alpha-fairly
    #: to congestion (TCP-like), ``False`` flows are served max-min from a
    #: fixed offered rate.  ``None`` means every flow is inelastic.
    elastic: Optional[np.ndarray] = None
    #: Per-flow alpha-fair utility weight (e.g. the client count behind an
    #: aggregate flow, so fairness stays per client).  ``None`` means 1.0.
    weights: Optional[np.ndarray] = None
    #: Fairness parameter for elastic flows: scalar or per-flow array.
    #: 1 = proportional fairness, ~2 = TCP-like, ``math.inf`` = max-min.
    alpha: float = 2.0

    def __post_init__(self) -> None:
        self.demands = np.asarray(self.demands, dtype=np.float64)
        self.usage = np.atleast_2d(np.asarray(self.usage, dtype=np.float64))
        self.capacities = np.asarray(self.capacities, dtype=np.float64)
        resources, flows = self.usage.shape
        if self.demands.shape != (flows,) or self.capacities.shape != (resources,):
            raise WorkloadError(
                f"inconsistent problem: usage {self.usage.shape}, "
                f"demands {self.demands.shape}, capacities {self.capacities.shape}"
            )
        if (self.demands < 0).any() or (self.usage < 0).any() or (self.capacities < 0).any():
            raise WorkloadError("demands, usage and capacities must be non-negative")
        if self.elastic is not None:
            self.elastic = np.asarray(self.elastic, dtype=bool)
            if self.elastic.shape != (flows,):
                raise WorkloadError("elastic mask must cover every flow")
            if not self.elastic.any():
                self.elastic = None
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != (flows,):
                raise WorkloadError("weights must cover every flow")
            if (self.weights <= 0).any():
                raise WorkloadError("alpha-fair weights must be positive")
        self.alpha = np.broadcast_to(
            np.asarray(self.alpha, dtype=np.float64), (flows,)
        )
        if (self.alpha <= 0).any():
            raise WorkloadError("alpha must be positive")
        if self.elastic is not None:
            infinite = np.isinf(self.alpha[self.elastic])
            if infinite.any() and not infinite.all():
                raise WorkloadError(
                    "mixing finite and infinite alpha among elastic flows is "
                    "not supported; mark the max-min flows inelastic instead"
                )

    @property
    def n_flows(self) -> int:
        """Number of flows."""
        return self.usage.shape[1]

    @property
    def n_resources(self) -> int:
        """Number of resources."""
        return self.usage.shape[0]

    @property
    def has_elastic(self) -> bool:
        """Whether any flow adapts its rate to congestion."""
        return self.elastic is not None

    def flow_weights(self) -> np.ndarray:
        """The per-flow utility weights with the default of 1.0 applied."""
        if self.weights is None:
            return np.ones(self.n_flows)
        return self.weights


@dataclass
class Allocation:
    """The fair operating point of a :class:`CapacityProblem`."""

    rates: np.ndarray
    #: Index of the resource that froze each flow (-1: demand-limited).
    bottleneck: np.ndarray
    #: Fixed-point passes used until every flow froze (0: warm start accepted).
    iterations: int
    #: Whether a warm-start candidate was verified optimal, skipping the fill.
    warm_started: bool = False
    #: Per-resource congestion prices of the elastic solve (``None`` for
    #: purely inelastic problems).  Offered back to :func:`solve_allocation`
    #: as the warm start of the next nearby problem.
    prices: Optional[np.ndarray] = None

    def utilization(self, problem: CapacityProblem) -> np.ndarray:
        """Per-resource load fraction under this allocation."""
        used = problem.usage @ self.rates
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(problem.capacities > 0, used / problem.capacities, 0.0)
        return out

    def satisfaction(self, problem: CapacityProblem) -> np.ndarray:
        """Per-flow allocated/demanded ratio (1.0 when demand is met)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(problem.demands > 0, self.rates / problem.demands, 1.0)


def verify_max_min(problem: CapacityProblem, rates: np.ndarray) -> Optional[np.ndarray]:
    """Check the bottleneck condition; return the attribution if ``rates`` is optimal.

    A feasible allocation is *the* max-min fair point iff every flow either
    receives its demand or crosses a saturated resource on which its rate is
    at least as large as that of every other flow using the resource.  The
    check is two O(R×F) vectorized passes.  Returns the per-flow bottleneck
    attribution (-1 for demand-limited flows) when the condition holds, or
    ``None`` when ``rates`` is not the max-min allocation.
    """
    demands = problem.demands
    usage = problem.usage
    capacities = problem.capacities
    if rates.shape != demands.shape:
        return None
    if (rates < -_TOL).any() or (rates > demands + np.maximum(demands, 1.0) * _TOL).any():
        return None
    used = usage @ rates
    if (used > capacities + np.maximum(capacities, 1.0) * _TOL).any():
        return None

    demand_limited = rates >= demands - np.maximum(demands, 1.0) * _TOL
    saturated = used >= capacities - np.maximum(capacities, 1.0) * _TOL
    crosses = usage > 0
    # Highest rate among each resource's users (0 where nobody crosses).
    peak = np.where(crosses, rates[np.newaxis, :], 0.0).max(axis=1)
    # Flow f is bottlenecked at r: r saturated, f crosses r, f's rate maximal.
    at_peak = crosses & (rates[np.newaxis, :] >= peak[:, np.newaxis]
                         - np.maximum(peak[:, np.newaxis], 1.0) * _TOL)
    bottlenecked = saturated[:, np.newaxis] & at_peak
    ok = demand_limited | bottlenecked.any(axis=0)
    if not ok.all():
        return None

    bottleneck = np.full(problem.n_flows, -1, dtype=np.int64)
    needs = ~demand_limited
    if needs.any():
        # First saturated resource that certifies each non-demand-limited flow.
        bottleneck[needs] = bottlenecked[:, needs].argmax(axis=0)
    return bottleneck


def max_min_allocation(problem: CapacityProblem,
                       max_iterations: Optional[int] = None,
                       warm_start: Optional[np.ndarray] = None,
                       telemetry: Optional[Telemetry] = None) -> Allocation:
    """Progressive-filling fixed point: the max-min fair rate vector.

    Every pass raises all unfrozen flows by one common rate increment — the
    largest any resource can still accommodate, capped by the smallest
    remaining demand — then freezes the flows that met their demand and the
    flows crossing resources the increment saturated.  The returned rates are
    feasible and max-min fair: no flow can be raised without lowering a flow
    that is already no better off.

    Two verification fast paths short-circuit the fill, both returning with
    ``iterations == 0``:

    * the *demand certificate*, tried on every call: if the demands vector
      itself is feasible, nothing is congested and the answer is immediate
      (two O(R×F) passes instead of a fill pass per distinct freeze level);
    * the *warm start*: ``min(warm_start, demands)`` — a previous solution
      of a nearby problem — is accepted with ``warm_started=True`` if
      :func:`verify_max_min` certifies it.

    Otherwise the cold progressive fill runs, so the result is always the
    max-min point regardless of the hint's quality.  ``telemetry`` records
    which path was taken (certificate / warm hit / warm miss / fill passes)
    as counters — observation only, never part of the answer.
    """
    telemetry = telemetry if telemetry is not None else NULL
    bottleneck = verify_max_min(problem, problem.demands)
    if bottleneck is not None:
        telemetry.inc("solver.demand_certificates")
        return Allocation(rates=problem.demands.astype(np.float64).copy(),
                          bottleneck=bottleneck, iterations=0)
    if warm_start is not None:
        hint = np.asarray(warm_start, dtype=np.float64)
        # A hint from a differently-shaped problem is useless, not fatal.
        if hint.shape == problem.demands.shape:
            candidate = np.minimum(np.maximum(hint, 0.0), problem.demands)
            bottleneck = verify_max_min(problem, candidate)
            if bottleneck is not None:
                telemetry.inc("solver.warm_start_hits")
                return Allocation(rates=candidate, bottleneck=bottleneck,
                                  iterations=0, warm_started=True)
        telemetry.inc("solver.warm_start_misses")
    demands = problem.demands
    usage = problem.usage
    capacities = problem.capacities.astype(np.float64).copy()
    n_flows = problem.n_flows

    rates = np.zeros(n_flows)
    bottleneck = np.full(n_flows, -1, dtype=np.int64)
    active = demands > 0
    # Flows that use a zero-capacity resource can never move: freeze at zero.
    dead = (usage[capacities <= 0] > 0).any(axis=0) if (capacities <= 0).any() else None
    if dead is not None and dead.any():
        for resource in np.flatnonzero(capacities <= 0):
            hit = active & (usage[resource] > 0) & (bottleneck == -1)
            bottleneck[hit] = resource
        active &= ~dead

    limit = max_iterations if max_iterations is not None else n_flows + problem.n_resources + 1
    iterations = 0
    while active.any():
        iterations += 1
        if iterations > limit:
            raise WorkloadError(f"max-min fill did not converge in {limit} passes")
        used = usage @ rates
        slack = capacities - used
        active_usage = usage @ active.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            headroom = np.where(active_usage > 0, slack / active_usage, np.inf)
        headroom = np.maximum(headroom, 0.0)
        remaining = demands[active] - rates[active]
        increment = min(headroom.min(initial=np.inf), remaining.min())

        rates[active] += increment

        # Demand-limited flows freeze with no bottleneck resource.
        met = active & (rates >= demands - np.maximum(demands, 1.0) * _TOL)
        active &= ~met

        # Flows crossing a resource the increment saturated freeze there.
        saturated = np.flatnonzero(
            (active_usage > 0)
            & (headroom <= increment + np.maximum(capacities, 1.0) * _TOL)
        )
        if saturated.size:
            crossing = active & (usage[saturated] > 0).any(axis=0)
            if crossing.any():
                # Attribute each frozen flow to its tightest saturated resource.
                for resource in saturated:
                    hit = crossing & (usage[resource] > 0) & (bottleneck == -1)
                    bottleneck[hit] = resource
                active &= ~crossing

    telemetry.inc("solver.fill_passes", iterations)
    return Allocation(rates=rates, bottleneck=bottleneck, iterations=iterations)


# ---------------------------------------------------------------------------
# Elastic (alpha-fair) flows
# ---------------------------------------------------------------------------


def _alpha_rates(demands: np.ndarray, usage: np.ndarray, weights: np.ndarray,
                 inv_alpha: np.ndarray, prices: np.ndarray) -> np.ndarray:
    """The KKT-stationary rates for given congestion prices.

    Each flow solves ``max w U_alpha(r) - q r`` over ``0 <= r <= d`` where
    ``q`` is its path price (``usage.T @ prices``): the closed form is
    ``min(d, (w / q) ** (1 / alpha))``, and an unpriced path takes the peak.
    """
    q = usage.T @ prices
    with np.errstate(divide="ignore", over="ignore"):
        unconstrained = np.where(q > 0.0, (weights / np.maximum(q, 1e-300)) ** inv_alpha,
                                 np.inf)
    return np.minimum(demands, unconstrained)


def _kkt_price_floor(demands: np.ndarray, usage: np.ndarray,
                     weights: np.ndarray, inv_alpha: np.ndarray) -> float:
    """The problem-scaled price below which a path counts as unpriced.

    The price at which flow f would sit exactly at its cap is
    ``w_f d_f^(-alpha_f)``; anything orders of magnitude below the smallest
    of those is indistinguishable from zero.  Equilibrium prices scale the
    same way — an absolute constant would misclassify them at large alpha
    or bps-sized demands (and complementary slackness would silently stop
    being checked).  Flows with infinite alpha (max-min limit) contribute
    no scale; with none left the conventional floor stands in.
    """
    finite = (inv_alpha > 0) & (demands > 0)
    if not finite.any():
        return _PRICE_FLOOR
    with np.errstate(over="ignore", under="ignore"):
        q_cap = weights[finite] * np.maximum(demands[finite], 1e-300) ** (
            -1.0 / inv_alpha[finite]
        )
    return max(float(q_cap.min()) * 1e-9 / max(float(usage.max()), 1.0), 1e-290)


def _alpha_fair_dual(demands: np.ndarray, usage: np.ndarray,
                     capacities: np.ndarray, weights: np.ndarray,
                     inv_alpha: np.ndarray, *,
                     prices0: Optional[np.ndarray] = None,
                     max_iterations: int = 4000,
                     ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Damped dual-price fixed point for the capped alpha-fair allocation.

    Resources carry multiplicative congestion prices; every pass recomputes
    the stationary rates from the prices (one O(R×F) pass), measures each
    resource's load/capacity ratio, and moves prices by ``ratio ** kappa``
    (one more O(R×F) pass).  The gain ``kappa`` starts near the scalar
    optimum (price error contracts by ``1 - kappa/alpha`` per pass) and is
    annealed down whenever convergence stalls, so coupled problems that ring
    at the aggressive gain always settle at a smaller one.  Converged means
    feasible and complementary-slack within ``_ALPHA_TOL``; a final per-flow
    projection removes the residual tolerance-level overshoot so the
    returned rates are exactly feasible.
    """
    resources, flows = usage.shape
    rates = np.zeros(flows)
    prices_full = np.zeros(resources)

    # Flows crossing a zero-capacity resource can never move: pin at zero.
    alive_r = capacities > 0
    if (~alive_r).any():
        dead = (usage[~alive_r] > 0).any(axis=0)
    else:
        dead = np.zeros(flows, dtype=bool)
    live = ~dead & (demands > 0)
    if not live.any():
        return rates, prices_full, 0

    live_idx = np.flatnonzero(live)
    alive_idx = np.flatnonzero(alive_r)
    A = usage[np.ix_(alive_idx, live_idx)]
    c = capacities[alive_idx]
    d = demands[live_idx]
    w = weights[live_idx]
    ia = inv_alpha[live_idx]

    # Problem-scaled floor: at large alpha or bps-sized demands the
    # equilibrium prices are far below any fixed constant.
    floor = _kkt_price_floor(d, A, w, ia)

    prices = np.full(alive_idx.size, floor)
    warm = prices0 is not None and prices0.shape == (resources,)
    if warm:
        prices = np.maximum(prices0[alive_idx], floor)

    # Sign-driven adaptive steps in log-price space (the Rprop idea).  A
    # gradient-sized step stalls on this dual: an overloaded resource whose
    # load is mostly *capped* flows has a near-zero local gradient — the
    # price must travel a long way before the caps release — while a slack
    # resource's price must decay hundreds of log-decades to ~zero.  Using
    # only the *sign* of the load error with a per-resource step size that
    # accelerates while the sign holds and halves when it flips crosses
    # both plateaus exponentially fast, and the halving-on-flip damps
    # coupled resources' ringing without any global damping schedule.  Each
    # pass is two O(R×F) matrix-vector products.  The exit is tiered: tight
    # (``_ALPHA_TOL``) while the iteration is young, relaxed to
    # ``_ALPHA_EXIT_TOL`` once past ``_TIGHT_ITERATIONS`` — near-critical
    # problems creep geometrically, and a 10^-4 operating point is far
    # below anything the fluid model's own accuracy can resolve.  A final
    # projection makes the rates exactly feasible either way.
    iterations = 0
    # A warm start is presumed near the answer: open with gentle steps so
    # the hint is refined, not trampled (they re-accelerate 1.6x per pass
    # if the problem really did move far).
    step = np.full(c.size, 0.05 if warm else 0.5)
    last_sign = np.zeros(c.size)
    r = d.copy()
    priced_floor = floor * 1e3
    with np.errstate(divide="ignore", over="ignore"):
        for iterations in range(1, max_iterations + 1):
            # The same closed form the KKT certificate checks against —
            # one source of truth, so warm starts can never be rejected by
            # a drifted copy of the stationarity formula.
            r = _alpha_rates(d, A, w, ia, prices)
            load = A @ r
            ratio = load / c
            priced = prices > priced_floor
            overshoot = ratio.max(initial=0.0) - 1.0
            undershoot = 1.0 - np.where(priced, ratio, np.inf).min(initial=np.inf)
            # Cold solves chase the tight tolerance while young; warm
            # re-solves (mid-timeline transients, already inside a certified
            # neighborhood) take the relaxed exit immediately — grinding a
            # transient epoch from 3e-4 to 1e-6 buys nothing the fluid
            # model can resolve.
            tol = (_ALPHA_TOL if not warm and iterations <= _TIGHT_ITERATIONS
                   else _ALPHA_EXIT_TOL)
            if overshoot <= tol and undershoot <= 10 * tol:
                break
            sign = np.where(ratio > 1.0, 1.0, -1.0)
            # An unpriced resource sitting slack is already where it
            # belongs: freeze its sign history so it re-enters gently if
            # load returns.
            sign[~priced & (ratio <= 1.0)] = 0.0
            step = np.where(sign == last_sign, step * 1.6, step * 0.5)
            # Deeply slack resources may decay faster than anything rises.
            ceiling = np.where((sign < 0) & (ratio < 0.5), 16.0, 2.0)
            step = np.minimum(np.maximum(step, 1e-7), ceiling)
            prices = np.maximum(prices * np.exp(sign * step), floor)
            last_sign = sign
    # Exact feasibility: shave each flow by its worst crossing overshoot.
    load = A @ r
    ratio = load / c
    if ratio.max(initial=0.0) > 1.0:
        over = np.maximum(ratio, 1.0)
        per_flow = np.where(A > 0, over[:, np.newaxis], 1.0).max(axis=0)
        r = r / per_flow

    rates[live_idx] = r
    prices_full[alive_idx] = np.where(prices > floor * 1e3, prices, 0.0)
    return rates, prices_full, iterations


def _verify_kkt(demands: np.ndarray, usage: np.ndarray, capacities: np.ndarray,
                weights: np.ndarray, inv_alpha: np.ndarray,
                rates: np.ndarray, prices: np.ndarray) -> bool:
    """Whether ``(rates, prices)`` satisfy the capped-alpha-fair KKT system.

    Three O(R×F) passes: primal feasibility, stationarity of every rate
    against its path price, and complementary slackness (priced resources
    are saturated).  Pinned flows (crossing a zero-capacity resource) must
    sit at zero.
    """
    if rates.shape != demands.shape or prices.shape != (capacities.shape[0],):
        return False
    if (rates < -_TOL).any():
        return False
    if (rates > demands + np.maximum(demands, 1.0) * _ALPHA_TOL).any():
        return False
    load = usage @ rates
    if (load > capacities + np.maximum(capacities, 1.0) * _ALPHA_TOL).any():
        return False

    dead_r = capacities <= 0
    if dead_r.any():
        dead = (usage[dead_r] > 0).any(axis=0)
        if (rates[dead] > np.maximum(demands[dead], 1.0) * _ALPHA_TOL).any():
            return False
    else:
        dead = np.zeros(rates.shape, dtype=bool)

    live = ~dead
    target = _alpha_rates(demands[live], usage[:, live][~dead_r],
                          weights[live], inv_alpha[live], prices[~dead_r])
    scale = np.maximum(np.maximum(target, rates[live]), 1e-12)
    if (np.abs(rates[live] - target) > scale * _KKT_RTOL).any():
        return False

    # "Priced" must use the same problem-scaled threshold as the dual:
    # equilibrium prices at bps magnitudes sit far below any constant, and
    # an absolute cutoff would silently stop checking complementary
    # slackness — certifying stale warm starts that under-serve flows.
    floor = _kkt_price_floor(demands, usage, weights, inv_alpha)
    priced = (prices > floor * 1e3) & ~dead_r
    if priced.any():
        slack = load[priced] < capacities[priced] * (1.0 - 20 * _ALPHA_EXIT_TOL)
        if slack.any():
            return False
    return True


def _elastic_bottlenecks(demands: np.ndarray, usage: np.ndarray,
                         rates: np.ndarray, prices: np.ndarray) -> np.ndarray:
    """Attribute each elastic flow to its most expensive crossing resource.

    Demand-limited flows get -1; congested flows get the crossing resource
    with the highest congestion price — the binding constraint of their KKT
    stationarity condition.
    """
    flows = rates.shape[0]
    bottleneck = np.full(flows, -1, dtype=np.int64)
    limited = rates >= demands - np.maximum(demands, 1.0) * 10 * _ALPHA_TOL
    needs = ~limited
    if needs.any():
        priced = np.where(usage[:, needs] > 0, prices[:, np.newaxis], -1.0)
        bottleneck[needs] = priced.argmax(axis=0)
    return bottleneck


def verify_alpha_fair(problem: CapacityProblem, rates: np.ndarray,
                      prices: np.ndarray) -> Optional[np.ndarray]:
    """Certify an all-elastic candidate; return the attribution if optimal.

    The elastic analogue of :func:`verify_max_min`: a feasible ``rates``
    vector together with resource ``prices`` is *the* capped alpha-fair
    point iff the KKT conditions hold — every rate is the closed-form
    best response to its path price, and every priced resource is
    saturated.  ``alpha = inf`` problems (the max-min limit, which
    :func:`alpha_fair_allocation` solves by delegation) are certified by
    the max-min bottleneck condition, mirroring that delegation.  Returns
    the per-flow bottleneck attribution (-1 for demand-limited flows) when
    the certificate holds, else ``None``.
    """
    if np.isinf(problem.alpha).all():
        return verify_max_min(problem, rates)
    if np.isinf(problem.alpha).any():
        raise WorkloadError(
            "mixing finite and infinite alpha among elastic flows is not "
            "supported; mark the max-min flows inelastic instead"
        )
    inv_alpha = 1.0 / problem.alpha
    if not _verify_kkt(problem.demands, problem.usage, problem.capacities,
                       problem.flow_weights(), inv_alpha, rates, prices):
        return None
    return _elastic_bottlenecks(problem.demands, problem.usage, rates, prices)


def alpha_fair_allocation(problem: CapacityProblem,
                          *,
                          warm_start: Optional[np.ndarray] = None,
                          warm_prices: Optional[np.ndarray] = None,
                          max_iterations: Optional[int] = None,
                          telemetry: Optional[Telemetry] = None) -> Allocation:
    """The capped alpha-fair rate vector, treating every flow as elastic.

    ``problem.alpha`` selects the fairness family (per flow): 1 is
    proportional fairness, ~2 is TCP-like, and ``math.inf`` delegates to
    :func:`max_min_allocation` exactly (the Mo–Walrand limit).  Like the
    max-min solver, two fast paths return with ``iterations == 0``: the
    demand certificate (the demands vector itself is feasible, so every
    flow takes its peak) and the verified warm start (``warm_start`` rates
    plus ``warm_prices`` satisfy the KKT certificate).
    """
    telemetry = telemetry if telemetry is not None else NULL
    if np.isinf(problem.alpha).all():
        allocation = max_min_allocation(problem, warm_start=warm_start,
                                        max_iterations=max_iterations,
                                        telemetry=telemetry)
        allocation.prices = np.zeros(problem.n_resources)
        return allocation
    if np.isinf(problem.alpha).any():
        raise WorkloadError(
            "mixing finite and infinite alpha among elastic flows is not "
            "supported; mark the max-min flows inelastic instead"
        )
    demands = problem.demands
    bottleneck = verify_max_min(problem, demands)
    if bottleneck is not None and (bottleneck == -1).all():
        telemetry.inc("solver.demand_certificates")
        return Allocation(rates=demands.astype(np.float64).copy(),
                          bottleneck=bottleneck, iterations=0,
                          prices=np.zeros(problem.n_resources))
    weights = problem.flow_weights()
    inv_alpha = 1.0 / problem.alpha
    if warm_start is not None and warm_prices is not None:
        hint = np.asarray(warm_start, dtype=np.float64)
        prices_hint = np.asarray(warm_prices, dtype=np.float64)
        if hint.shape == demands.shape and prices_hint.shape == (problem.n_resources,):
            candidate = np.minimum(np.maximum(hint, 0.0), demands)
            attribution = verify_alpha_fair(problem, candidate, prices_hint)
            if attribution is not None:
                telemetry.inc("solver.warm_start_hits")
                return Allocation(rates=candidate, bottleneck=attribution,
                                  iterations=0, warm_started=True,
                                  prices=prices_hint.copy())
        # A KKT certificate was offered and rejected: the dual re-solves
        # from the hinted prices.
        telemetry.inc("solver.warm_start_misses")
        telemetry.inc("solver.kkt_retries")
    prices0 = None
    if warm_prices is not None:
        prices_hint = np.asarray(warm_prices, dtype=np.float64)
        if prices_hint.shape == (problem.n_resources,):
            prices0 = prices_hint
    rates, prices, iterations = _alpha_fair_dual(
        demands, problem.usage, problem.capacities, weights, inv_alpha,
        prices0=prices0,
        max_iterations=max_iterations if max_iterations is not None else 4000,
    )
    telemetry.inc("solver.alpha_fair_iterations", iterations)
    return Allocation(
        rates=rates,
        bottleneck=_elastic_bottlenecks(demands, problem.usage, rates, prices),
        iterations=iterations,
        prices=prices,
    )


def _column_subproblem(problem: CapacityProblem, mask: np.ndarray,
                       capacities: np.ndarray) -> CapacityProblem:
    """The restriction of ``problem`` to the flows in ``mask``."""
    return CapacityProblem(
        demands=problem.demands[mask],
        usage=problem.usage[:, mask],
        capacities=capacities,
        weights=None if problem.weights is None else problem.weights[mask],
        alpha=problem.alpha[mask],
    )


def solve_allocation(problem: CapacityProblem,
                     *,
                     warm_start: Optional[np.ndarray] = None,
                     warm_prices: Optional[np.ndarray] = None,
                     max_iterations: Optional[int] = None,
                     telemetry: Optional[Telemetry] = None) -> Allocation:
    """Solve a problem whose flows may mix inelastic and elastic classes.

    Dispatch: a purely inelastic problem is the classic max-min fill; a
    purely elastic one is the alpha-fair dual.  A *mixed* problem is
    composed in two stages that mirror what a FIFO bottleneck does to
    non-responsive vs congestion-controlled traffic: the inelastic flows
    are served max-min against the full capacities first (CBR sources do
    not back off), then the elastic flows share the *residual* capacity
    alpha-fairly, capped at their peak demands.  ``warm_start`` rates and
    ``warm_prices`` come from a previous nearby solve (an
    :class:`Allocation`'s ``rates`` and ``prices``); both fast paths are
    certificate-checked, so hints never change the answer.
    """
    telemetry = telemetry if telemetry is not None else NULL
    if not problem.has_elastic:
        return max_min_allocation(problem, warm_start=warm_start,
                                  max_iterations=max_iterations,
                                  telemetry=telemetry)
    elastic = problem.elastic
    if elastic.all():
        return alpha_fair_allocation(problem, warm_start=warm_start,
                                     warm_prices=warm_prices,
                                     max_iterations=max_iterations,
                                     telemetry=telemetry)

    demands = problem.demands
    # Demand certificate for the whole mixed problem: nothing is congested,
    # both families take their peaks, and no composition is needed.
    bottleneck = verify_max_min(problem, demands)
    if bottleneck is not None and (bottleneck == -1).all():
        telemetry.inc("solver.demand_certificates")
        return Allocation(rates=demands.astype(np.float64).copy(),
                          bottleneck=bottleneck, iterations=0,
                          prices=np.zeros(problem.n_resources))

    inelastic = ~elastic
    hint = None
    if warm_start is not None:
        candidate = np.asarray(warm_start, dtype=np.float64)
        if candidate.shape == demands.shape:
            hint = candidate

    sub_inelastic = _column_subproblem(problem, inelastic, problem.capacities)
    inelastic_allocation = max_min_allocation(
        sub_inelastic,
        warm_start=hint[inelastic] if hint is not None else None,
        max_iterations=max_iterations,
        telemetry=telemetry,
    )

    residual = problem.capacities - problem.usage[:, inelastic] @ inelastic_allocation.rates
    residual = np.maximum(residual, 0.0)
    sub_elastic = _column_subproblem(problem, elastic, residual)
    elastic_allocation = alpha_fair_allocation(
        sub_elastic,
        warm_start=hint[elastic] if hint is not None else None,
        warm_prices=warm_prices,
        max_iterations=max_iterations,
        telemetry=telemetry,
    )

    rates = np.empty(problem.n_flows)
    rates[inelastic] = inelastic_allocation.rates
    rates[elastic] = elastic_allocation.rates
    bottleneck = np.empty(problem.n_flows, dtype=np.int64)
    bottleneck[inelastic] = inelastic_allocation.bottleneck
    bottleneck[elastic] = elastic_allocation.bottleneck
    return Allocation(
        rates=rates,
        bottleneck=bottleneck,
        iterations=inelastic_allocation.iterations + elastic_allocation.iterations,
        warm_started=(inelastic_allocation.iterations == 0
                      and elastic_allocation.iterations == 0
                      and (inelastic_allocation.warm_started
                           or elastic_allocation.warm_started)),
        prices=elastic_allocation.prices,
    )
