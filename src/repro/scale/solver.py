"""Max-min fair capacity allocation, vectorized over flows × resources.

This is the fairness model under the paper's claim that the neutral domain
serves everyone alike: when demand exceeds a neutralizer fleet's capacity,
load is shed max-min fairly per client rather than by the access ISP's
preferences.  The fluid model reduces a deployment to a small linear
structure: each *flow*
is an aggregate of identical clients (one (region, class, site) group) with a
demand rate, and each *resource* is a shared capacity (a regional uplink in
bits/s, a site uplink in bits/s, a site CPU in core-seconds/s).  The usage
matrix says how much of each resource one unit of flow rate consumes, so
feasibility is ``usage @ rates <= capacities``.

:func:`max_min_allocation` computes the classic max-min fair point by
progressive filling expressed as a fixed-point iteration on numpy arrays: all
unfrozen flows are raised by the largest common increment any resource
allows, flows that hit their demand or cross a newly saturated resource
freeze, and the loop repeats until every flow is frozen.  Each pass is O(R×F)
vectorized work and at least one flow freezes per pass, so the iteration
count is bounded by the number of flows — a few hundred groups even for a
million-client population.

Time-stepped callers (:mod:`repro.scale.timeline`) solve a long sequence of
nearby problems, so the solver also supports *warm starts*: a candidate
allocation (the previous epoch's rates clipped to the new demands, or the
demands themselves) is accepted without any filling if it satisfies the
max-min optimality condition — feasible, and every flow either meets its
demand or crosses a saturated resource on which its rate is maximal among
the resource's users (Bertsekas & Gallager's bottleneck condition).  The
check is two O(R×F) passes versus tens for a cold fill, and it either
returns exactly the max-min point or falls back to the cold fill, so warm
starts can never change the answer, only the time to reach it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..exceptions import WorkloadError

#: Relative slack used to call a resource saturated / a demand met.
#: Membership tests (does a flow use a resource at all) are exact-zero
#: comparisons instead: usage coefficients can be legitimately tiny.
_TOL = 1e-9


@dataclass
class CapacityProblem:
    """Flows with demands, resources with capacities, and the usage coupling."""

    #: Demand rate per flow (units/s; units are whatever the caller chose,
    #: e.g. "client-equivalents" so fairness is per client).
    demands: np.ndarray
    #: ``usage[r, f]``: resource-r units consumed by one unit of flow f.
    usage: np.ndarray
    #: Capacity per resource (resource units/s).
    capacities: np.ndarray
    flow_labels: List[str] = field(default_factory=list)
    resource_labels: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.demands = np.asarray(self.demands, dtype=np.float64)
        self.usage = np.atleast_2d(np.asarray(self.usage, dtype=np.float64))
        self.capacities = np.asarray(self.capacities, dtype=np.float64)
        resources, flows = self.usage.shape
        if self.demands.shape != (flows,) or self.capacities.shape != (resources,):
            raise WorkloadError(
                f"inconsistent problem: usage {self.usage.shape}, "
                f"demands {self.demands.shape}, capacities {self.capacities.shape}"
            )
        if (self.demands < 0).any() or (self.usage < 0).any() or (self.capacities < 0).any():
            raise WorkloadError("demands, usage and capacities must be non-negative")

    @property
    def n_flows(self) -> int:
        """Number of flows."""
        return self.usage.shape[1]

    @property
    def n_resources(self) -> int:
        """Number of resources."""
        return self.usage.shape[0]


@dataclass
class Allocation:
    """The max-min fair operating point of a :class:`CapacityProblem`."""

    rates: np.ndarray
    #: Index of the resource that froze each flow (-1: demand-limited).
    bottleneck: np.ndarray
    #: Fixed-point passes used until every flow froze (0: warm start accepted).
    iterations: int
    #: Whether a warm-start candidate was verified optimal, skipping the fill.
    warm_started: bool = False

    def utilization(self, problem: CapacityProblem) -> np.ndarray:
        """Per-resource load fraction under this allocation."""
        used = problem.usage @ self.rates
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(problem.capacities > 0, used / problem.capacities, 0.0)
        return out

    def satisfaction(self, problem: CapacityProblem) -> np.ndarray:
        """Per-flow allocated/demanded ratio (1.0 when demand is met)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(problem.demands > 0, self.rates / problem.demands, 1.0)


def verify_max_min(problem: CapacityProblem, rates: np.ndarray) -> Optional[np.ndarray]:
    """Check the bottleneck condition; return the attribution if ``rates`` is optimal.

    A feasible allocation is *the* max-min fair point iff every flow either
    receives its demand or crosses a saturated resource on which its rate is
    at least as large as that of every other flow using the resource.  The
    check is two O(R×F) vectorized passes.  Returns the per-flow bottleneck
    attribution (-1 for demand-limited flows) when the condition holds, or
    ``None`` when ``rates`` is not the max-min allocation.
    """
    demands = problem.demands
    usage = problem.usage
    capacities = problem.capacities
    if rates.shape != demands.shape:
        return None
    if (rates < -_TOL).any() or (rates > demands + np.maximum(demands, 1.0) * _TOL).any():
        return None
    used = usage @ rates
    if (used > capacities + np.maximum(capacities, 1.0) * _TOL).any():
        return None

    demand_limited = rates >= demands - np.maximum(demands, 1.0) * _TOL
    saturated = used >= capacities - np.maximum(capacities, 1.0) * _TOL
    crosses = usage > 0
    # Highest rate among each resource's users (0 where nobody crosses).
    peak = np.where(crosses, rates[np.newaxis, :], 0.0).max(axis=1)
    # Flow f is bottlenecked at r: r saturated, f crosses r, f's rate maximal.
    at_peak = crosses & (rates[np.newaxis, :] >= peak[:, np.newaxis]
                         - np.maximum(peak[:, np.newaxis], 1.0) * _TOL)
    bottlenecked = saturated[:, np.newaxis] & at_peak
    ok = demand_limited | bottlenecked.any(axis=0)
    if not ok.all():
        return None

    bottleneck = np.full(problem.n_flows, -1, dtype=np.int64)
    needs = ~demand_limited
    if needs.any():
        # First saturated resource that certifies each non-demand-limited flow.
        bottleneck[needs] = bottlenecked[:, needs].argmax(axis=0)
    return bottleneck


def max_min_allocation(problem: CapacityProblem,
                       max_iterations: Optional[int] = None,
                       warm_start: Optional[np.ndarray] = None) -> Allocation:
    """Progressive-filling fixed point: the max-min fair rate vector.

    Every pass raises all unfrozen flows by one common rate increment — the
    largest any resource can still accommodate, capped by the smallest
    remaining demand — then freezes the flows that met their demand and the
    flows crossing resources the increment saturated.  The returned rates are
    feasible and max-min fair: no flow can be raised without lowering a flow
    that is already no better off.

    Two verification fast paths short-circuit the fill, both returning with
    ``iterations == 0``:

    * the *demand certificate*, tried on every call: if the demands vector
      itself is feasible, nothing is congested and the answer is immediate
      (two O(R×F) passes instead of a fill pass per distinct freeze level);
    * the *warm start*: ``min(warm_start, demands)`` — a previous solution
      of a nearby problem — is accepted with ``warm_started=True`` if
      :func:`verify_max_min` certifies it.

    Otherwise the cold progressive fill runs, so the result is always the
    max-min point regardless of the hint's quality.
    """
    bottleneck = verify_max_min(problem, problem.demands)
    if bottleneck is not None:
        return Allocation(rates=problem.demands.astype(np.float64).copy(),
                          bottleneck=bottleneck, iterations=0)
    if warm_start is not None:
        hint = np.asarray(warm_start, dtype=np.float64)
        # A hint from a differently-shaped problem is useless, not fatal.
        if hint.shape == problem.demands.shape:
            candidate = np.minimum(np.maximum(hint, 0.0), problem.demands)
            bottleneck = verify_max_min(problem, candidate)
            if bottleneck is not None:
                return Allocation(rates=candidate, bottleneck=bottleneck,
                                  iterations=0, warm_started=True)
    demands = problem.demands
    usage = problem.usage
    capacities = problem.capacities.astype(np.float64).copy()
    n_flows = problem.n_flows

    rates = np.zeros(n_flows)
    bottleneck = np.full(n_flows, -1, dtype=np.int64)
    active = demands > 0
    # Flows that use a zero-capacity resource can never move: freeze at zero.
    dead = (usage[capacities <= 0] > 0).any(axis=0) if (capacities <= 0).any() else None
    if dead is not None and dead.any():
        for resource in np.flatnonzero(capacities <= 0):
            hit = active & (usage[resource] > 0) & (bottleneck == -1)
            bottleneck[hit] = resource
        active &= ~dead

    limit = max_iterations if max_iterations is not None else n_flows + problem.n_resources + 1
    iterations = 0
    while active.any():
        iterations += 1
        if iterations > limit:
            raise WorkloadError(f"max-min fill did not converge in {limit} passes")
        used = usage @ rates
        slack = capacities - used
        active_usage = usage @ active.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            headroom = np.where(active_usage > 0, slack / active_usage, np.inf)
        headroom = np.maximum(headroom, 0.0)
        remaining = demands[active] - rates[active]
        increment = min(headroom.min(initial=np.inf), remaining.min())

        rates[active] += increment

        # Demand-limited flows freeze with no bottleneck resource.
        met = active & (rates >= demands - np.maximum(demands, 1.0) * _TOL)
        active &= ~met

        # Flows crossing a resource the increment saturated freeze there.
        saturated = np.flatnonzero(
            (active_usage > 0)
            & (headroom <= increment + np.maximum(capacities, 1.0) * _TOL)
        )
        if saturated.size:
            crossing = active & (usage[saturated] > 0).any(axis=0)
            if crossing.any():
                # Attribute each frozen flow to its tightest saturated resource.
                for resource in saturated:
                    hit = crossing & (usage[resource] > 0) & (bottleneck == -1)
                    bottleneck[hit] = resource
                active &= ~crossing

    return Allocation(rates=rates, bottleneck=bottleneck, iterations=iterations)
