"""Max-min fair capacity allocation, vectorized over flows × resources.

The fluid model reduces a deployment to a small linear structure: each *flow*
is an aggregate of identical clients (one (region, class, site) group) with a
demand rate, and each *resource* is a shared capacity (a regional uplink in
bits/s, a site uplink in bits/s, a site CPU in core-seconds/s).  The usage
matrix says how much of each resource one unit of flow rate consumes, so
feasibility is ``usage @ rates <= capacities``.

:func:`max_min_allocation` computes the classic max-min fair point by
progressive filling expressed as a fixed-point iteration on numpy arrays: all
unfrozen flows are raised by the largest common increment any resource
allows, flows that hit their demand or cross a newly saturated resource
freeze, and the loop repeats until every flow is frozen.  Each pass is O(R×F)
vectorized work and at least one flow freezes per pass, so the iteration
count is bounded by the number of flows — a few hundred groups even for a
million-client population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..exceptions import WorkloadError

#: Relative slack used to call a resource saturated / a demand met.
#: Membership tests (does a flow use a resource at all) are exact-zero
#: comparisons instead: usage coefficients can be legitimately tiny.
_TOL = 1e-9


@dataclass
class CapacityProblem:
    """Flows with demands, resources with capacities, and the usage coupling."""

    #: Demand rate per flow (units/s; units are whatever the caller chose,
    #: e.g. "client-equivalents" so fairness is per client).
    demands: np.ndarray
    #: ``usage[r, f]``: resource-r units consumed by one unit of flow f.
    usage: np.ndarray
    #: Capacity per resource (resource units/s).
    capacities: np.ndarray
    flow_labels: List[str] = field(default_factory=list)
    resource_labels: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.demands = np.asarray(self.demands, dtype=np.float64)
        self.usage = np.atleast_2d(np.asarray(self.usage, dtype=np.float64))
        self.capacities = np.asarray(self.capacities, dtype=np.float64)
        resources, flows = self.usage.shape
        if self.demands.shape != (flows,) or self.capacities.shape != (resources,):
            raise WorkloadError(
                f"inconsistent problem: usage {self.usage.shape}, "
                f"demands {self.demands.shape}, capacities {self.capacities.shape}"
            )
        if (self.demands < 0).any() or (self.usage < 0).any() or (self.capacities < 0).any():
            raise WorkloadError("demands, usage and capacities must be non-negative")

    @property
    def n_flows(self) -> int:
        """Number of flows."""
        return self.usage.shape[1]

    @property
    def n_resources(self) -> int:
        """Number of resources."""
        return self.usage.shape[0]


@dataclass
class Allocation:
    """The max-min fair operating point of a :class:`CapacityProblem`."""

    rates: np.ndarray
    #: Index of the resource that froze each flow (-1: demand-limited).
    bottleneck: np.ndarray
    #: Fixed-point passes used until every flow froze.
    iterations: int

    def utilization(self, problem: CapacityProblem) -> np.ndarray:
        """Per-resource load fraction under this allocation."""
        used = problem.usage @ self.rates
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(problem.capacities > 0, used / problem.capacities, 0.0)
        return out

    def satisfaction(self, problem: CapacityProblem) -> np.ndarray:
        """Per-flow allocated/demanded ratio (1.0 when demand is met)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(problem.demands > 0, self.rates / problem.demands, 1.0)


def max_min_allocation(problem: CapacityProblem,
                       max_iterations: Optional[int] = None) -> Allocation:
    """Progressive-filling fixed point: the max-min fair rate vector.

    Every pass raises all unfrozen flows by one common rate increment — the
    largest any resource can still accommodate, capped by the smallest
    remaining demand — then freezes the flows that met their demand and the
    flows crossing resources the increment saturated.  The returned rates are
    feasible and max-min fair: no flow can be raised without lowering a flow
    that is already no better off.
    """
    demands = problem.demands
    usage = problem.usage
    capacities = problem.capacities.astype(np.float64).copy()
    n_flows = problem.n_flows

    rates = np.zeros(n_flows)
    bottleneck = np.full(n_flows, -1, dtype=np.int64)
    active = demands > 0
    # Flows that use a zero-capacity resource can never move: freeze at zero.
    dead = (usage[capacities <= 0] > 0).any(axis=0) if (capacities <= 0).any() else None
    if dead is not None and dead.any():
        for resource in np.flatnonzero(capacities <= 0):
            hit = active & (usage[resource] > 0) & (bottleneck == -1)
            bottleneck[hit] = resource
        active &= ~dead

    limit = max_iterations if max_iterations is not None else n_flows + problem.n_resources + 1
    iterations = 0
    while active.any():
        iterations += 1
        if iterations > limit:
            raise WorkloadError(f"max-min fill did not converge in {limit} passes")
        used = usage @ rates
        slack = capacities - used
        active_usage = usage @ active.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            headroom = np.where(active_usage > 0, slack / active_usage, np.inf)
        headroom = np.maximum(headroom, 0.0)
        remaining = demands[active] - rates[active]
        increment = min(headroom.min(initial=np.inf), remaining.min())

        rates[active] += increment

        # Demand-limited flows freeze with no bottleneck resource.
        met = active & (rates >= demands - np.maximum(demands, 1.0) * _TOL)
        active &= ~met

        # Flows crossing a resource the increment saturated freeze there.
        saturated = np.flatnonzero(
            (active_usage > 0)
            & (headroom <= increment + np.maximum(capacities, 1.0) * _TOL)
        )
        if saturated.size:
            crossing = active & (usage[saturated] > 0).any(axis=0)
            if crossing.any():
                # Attribute each frozen flow to its tightest saturated resource.
                for resource in saturated:
                    hit = crossing & (usage[resource] > 0) & (bottleneck == -1)
                    bottleneck[hit] = resource
                active &= ~crossing

    return Allocation(rates=rates, bottleneck=bottleneck, iterations=iterations)
