"""Process-local telemetry: metrics registry, span tracer, exporters.

The campaign stack (timeline epochs, solver fast paths, autoscale and
adversary control loops, the E12–E16 runners) needs to explain *where its
time and work go* without perturbing what it computes.  This module is that
substrate, built around one hard guarantee: **telemetry observes, never
participates**.  Enabling it changes no allocation, no epoch record, no
campaign distribution — simulation results are bit-identical with telemetry
on or off (asserted in ``tests/scale/test_telemetry.py``).  Three parts:

:class:`MetricsRegistry`
    Counters, gauges, and fixed-bucket histograms.  Everything recorded is
    *work*, never wall time — solver passes, warm-start hits, reused
    epochs, controller actions — so ``as_dict()`` is deterministic from the
    seed and two identical runs produce identical registries.  Exported as
    Prometheus text exposition (:meth:`MetricsRegistry.prometheus_text`).

:class:`Tracer`
    Hierarchical spans (``campaign → replica → epoch → {template_instantiate,
    solve, latency_proxy, autoscale_step, adversary_step, ring_remap}``)
    with strict stack discipline: a child must close inside its parent, and
    :meth:`Tracer.assert_well_formed` proves the tree has no orphans.
    Exported as a JSONL trace dump (:meth:`Tracer.write_jsonl`) and reduced
    to per-phase P50/P95 run tables by :func:`phase_breakdown` (what
    ``tools/perf_report.py`` renders and ``BENCH_*.json`` artifacts embed).

:class:`Telemetry` / :data:`NULL`
    The facade the simulator threads through.  ``Telemetry(trace=...,
    metrics=...)`` enables either half independently; the module-level
    :data:`NULL` singleton (a :class:`Telemetry` with both halves off) is
    the default everywhere.  Crucially, even a null span still *times* its
    body — two ``perf_counter`` calls, exactly what the inline bookkeeping
    it replaced cost — so ``wall_seconds``/``solve_seconds`` result fields
    stay populated through one single timing code path.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import WorkloadError

#: Default histogram bucket edges: powers of two covering solver pass
#: counts.  Fixed edges keep the exported cumulative buckets deterministic.
DEFAULT_BUCKET_EDGES: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
)


class Histogram:
    """A fixed-bucket histogram (Prometheus-style cumulative on export).

    ``edges`` are the *upper* bounds of the finite buckets; observations
    above the last edge land in the implicit ``+Inf`` bucket.  Edges are
    fixed at creation so the exported output is deterministic regardless of
    the values observed.
    """

    __slots__ = ("edges", "counts", "inf_count", "total", "n")

    def __init__(self, edges: Sequence[float] = DEFAULT_BUCKET_EDGES) -> None:
        if not edges or list(edges) != sorted(edges):
            raise WorkloadError("histogram edges must be a sorted, non-empty sequence")
        self.edges: Tuple[float, ...] = tuple(float(edge) for edge in edges)
        self.counts: List[int] = [0] * len(self.edges)
        self.inf_count = 0
        self.total = 0.0
        self.n = 0

    def observe(self, value: float) -> None:
        """Record one observation into its (non-cumulative) bucket."""
        value = float(value)
        self.total += value
        self.n += 1
        for index, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[index] += 1
                return
        self.inf_count += 1

    def as_dict(self) -> Dict[str, object]:
        """Deterministic summary: per-edge counts, +Inf, sum, count."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "inf": self.inf_count,
            "sum": self.total,
            "count": self.n,
        }

    def merge_dict(self, other: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`as_dict` summary into this one.

        Used when worker-process registries are merged back into the
        campaign's registry; both sides must share the same bucket edges —
        merging across layouts would silently mis-bucket the counts.
        """
        if tuple(float(edge) for edge in other["edges"]) != self.edges:
            raise WorkloadError(
                "cannot merge histograms with different bucket edges"
            )
        for index, count in enumerate(other["counts"]):
            self.counts[index] += int(count)
        self.inf_count += int(other["inf"])
        self.total += float(other["sum"])
        self.n += int(other["count"])


def _prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name into the Prometheus charset."""
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: object) -> str:
    """Escape a label value per the exposition format: ``\\``, ``"``, LF."""
    return (str(value).replace("\\", "\\\\")
            .replace('"', '\\"').replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text per the exposition format: ``\\`` and LF."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


class MetricsRegistry:
    """Create-or-get counters, gauges, and histograms, fully deterministic.

    Metric names are dotted (``solver.warm_start_hits``); the Prometheus
    exporter sanitizes them.  The registry records *work*, not wall time:
    callers must never feed it ``perf_counter`` values, so two runs of the
    same seeded simulation produce identical :meth:`as_dict` output — the
    property the histogram-determinism tests pin down.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording -------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` (created at zero on first use)."""
        if amount < 0:
            raise WorkloadError(f"counter {name!r} cannot decrease")
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float,
                edges: Sequence[float] = DEFAULT_BUCKET_EDGES) -> None:
        """Record ``value`` into histogram ``name`` (created on first use).

        ``edges`` only applies at creation; observing into an existing
        histogram with different edges is an error — silently switching
        bucket layouts would make the export depend on call order.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(edges)
            self._histograms[name] = histogram
        elif histogram.edges != tuple(float(edge) for edge in edges):
            raise WorkloadError(
                f"histogram {name!r} already exists with different bucket edges"
            )
        histogram.observe(value)

    # -- reading ---------------------------------------------------------------------

    def counter_value(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Deterministic snapshot: sorted names, plain python values."""
        return {
            "counters": {name: self._counters[name]
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name]
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].as_dict()
                           for name in sorted(self._histograms)},
        }

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's :meth:`as_dict` snapshot into this one.

        Counters add, histograms merge bucket-wise (same edges required),
        gauges take the incoming value (last writer wins — a gauge is a
        level, not an accumulation).  This is how a multi-worker campaign
        presents ONE registry: each worker's per-unit delta is merged into
        the campaign's registry as its results arrive, so exporters and
        ``get_current_state()`` read merged ``campaign.*``/``solver.*``
        counters exactly as they would after a single-process run.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, float(value))
        for name, summary in snapshot.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(summary["edges"])
                self._histograms[name] = histogram
            histogram.merge_dict(summary)

    @staticmethod
    def snapshot_delta(before: Dict[str, Dict[str, object]],
                       after: Dict[str, Dict[str, object]],
                       ) -> Dict[str, Dict[str, object]]:
        """The work recorded between two :meth:`as_dict` snapshots.

        Counters and histogram bucket counts subtract; gauges report their
        ``after`` level.  The result is itself a snapshot, suitable for
        :meth:`merge_snapshot` — the unit-of-work currency a worker process
        ships back with each completed campaign unit.
        """
        counters: Dict[str, float] = {}
        for name, value in after.get("counters", {}).items():
            moved = float(value) - float(before.get("counters", {}).get(name, 0.0))
            if moved:
                counters[name] = moved
        histograms: Dict[str, Dict[str, object]] = {}
        for name, summary in after.get("histograms", {}).items():
            base = before.get("histograms", {}).get(name)
            if base is None:
                histograms[name] = summary
                continue
            moved_counts = [int(now) - int(then) for now, then
                            in zip(summary["counts"], base["counts"])]
            moved_n = int(summary["count"]) - int(base["count"])
            if moved_n:
                histograms[name] = {
                    "edges": list(summary["edges"]),
                    "counts": moved_counts,
                    "inf": int(summary["inf"]) - int(base["inf"]),
                    "sum": float(summary["sum"]) - float(base["sum"]),
                    "count": moved_n,
                }
        return {
            "counters": counters,
            "gauges": dict(after.get("gauges", {})),
            "histograms": histograms,
        }

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format.

        Strict-scraper compatible: every metric carries a ``# HELP`` line
        (naming the original dotted metric, which the charset sanitizer
        would otherwise lose) and a ``# TYPE`` line, and label values go
        through the exposition-format escaping rules (``\\`` ``"`` and
        newlines).  The round-trip test in ``tests/scale/test_telemetry``
        re-parses this output with a strict grammar.
        """
        lines: List[str] = []

        def head(name: str, prom: str, kind: str) -> None:
            help_text = _escape_help(f"{kind} {name!r} "
                                     f"(deterministic work metric)")
            lines.append(f"# HELP {prom} {help_text}")
            lines.append(f"# TYPE {prom} {kind}")

        for name in sorted(self._counters):
            prom = _prometheus_name(name)
            head(name, prom, "counter")
            lines.append(f"{prom} {_format_value(self._counters[name])}")
        for name in sorted(self._gauges):
            prom = _prometheus_name(name)
            head(name, prom, "gauge")
            lines.append(f"{prom} {_format_value(self._gauges[name])}")
        for name in sorted(self._histograms):
            prom = _prometheus_name(name)
            histogram = self._histograms[name]
            head(name, prom, "histogram")
            cumulative = 0
            for edge, count in zip(histogram.edges, histogram.counts):
                cumulative += count
                le = _escape_label_value(f"{edge:g}")
                lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
            cumulative += histogram.inf_count
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{prom}_sum {_format_value(histogram.total)}")
            lines.append(f"{prom}_count {histogram.n}")
        return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Spans and the tracer
# ---------------------------------------------------------------------------


class Span:
    """One timed region.  Always times; records into a tracer when given one.

    Used as a context manager.  After exit, :attr:`seconds` holds the
    elapsed wall time — the single timing code path behind every
    ``wall_seconds``/``solve_seconds`` field, so a null-telemetry span costs
    exactly the two ``perf_counter`` calls the inline bookkeeping it
    replaced used to make.
    """

    __slots__ = ("name", "attrs", "seconds", "_tracer", "_start", "_id", "_parent")

    def __init__(self, name: str, tracer: Optional["Tracer"] = None,
                 attrs: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.attrs = attrs
        self.seconds = 0.0
        self._tracer = tracer
        self._start = 0.0
        self._id = -1
        self._parent = -1

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._id, self._parent = self._tracer._open(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._start
        if self._tracer is not None:
            self._tracer._close(self)


class SpanRecord:
    """One closed span in a tracer's trace, preorder by open time."""

    __slots__ = ("id", "parent", "name", "start_s", "dur_s", "attrs")

    def __init__(self, id: int, parent: int, name: str, start_s: float,
                 dur_s: float, attrs: Optional[Dict[str, object]]) -> None:
        self.id = id
        self.parent = parent
        self.name = name
        self.start_s = start_s
        self.dur_s = dur_s
        self.attrs = attrs

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """A hierarchical span collector with strict stack discipline.

    Spans open and close LIFO within one tracer (the simulator is
    single-threaded); closing a span that is not the innermost open one
    raises :class:`WorkloadError` — that is how the span-tree
    well-formedness tests catch instrumentation bugs at the source instead
    of in the export.  Span start offsets are relative to the tracer's
    first opened span, so traces are position-independent.
    """

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self._stack: List[Span] = []
        self._origin: Optional[float] = None
        self._next_id = 0

    # -- span lifecycle (driven by Span) ---------------------------------------------

    def _open(self, span: Span) -> Tuple[int, int]:
        if self._origin is None:
            # Anchor offsets just before the first span starts its clock,
            # so every recorded start_s is non-negative.
            self._origin = time.perf_counter()
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1]._id if self._stack else -1
        self._stack.append(span)
        return span_id, parent

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise WorkloadError(
                f"span {span.name!r} closed out of order; open stack: "
                f"{[open_span.name for open_span in self._stack]}"
            )
        self._stack.pop()
        self.spans.append(SpanRecord(
            id=span._id,
            parent=span._parent,
            name=span.name,
            start_s=span._start - self._origin,
            dur_s=span.seconds,
            attrs=span.attrs,
        ))

    # -- inspection ------------------------------------------------------------------

    @property
    def open_spans(self) -> List[str]:
        """Names of spans currently open (innermost last)."""
        return [span.name for span in self._stack]

    def assert_well_formed(self) -> None:
        """Prove the recorded trace is a forest: every child nests in its parent.

        Raises :class:`WorkloadError` when any span is still open, when a
        parent reference points at an unknown or unclosed-before-child
        span, or when a child's time range escapes its parent's.
        """
        if self._stack:
            raise WorkloadError(
                f"trace has open spans: {[span.name for span in self._stack]}"
            )
        by_id = {record.id: record for record in self.spans}
        slack = 1e-9
        for record in self.spans:
            if record.parent == -1:
                continue
            parent = by_id.get(record.parent)
            if parent is None:
                raise WorkloadError(
                    f"span {record.name!r} has unknown parent id {record.parent}"
                )
            if (record.start_s < parent.start_s - slack
                    or record.start_s + record.dur_s
                    > parent.start_s + parent.dur_s + slack):
                raise WorkloadError(
                    f"span {record.name!r} escapes its parent {parent.name!r}"
                )

    def by_name(self, name: str) -> List[SpanRecord]:
        """All closed spans called ``name``, in open order."""
        return [record for record in self.spans if record.name == name]

    # -- export ----------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The trace as JSON Lines, one span object per line, preorder."""
        return "\n".join(
            json.dumps(record.as_dict(), sort_keys=True) for record in self.spans
        ) + ("\n" if self.spans else "")

    def write_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl` to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------


class Telemetry:
    """What the simulator threads through: tracer + registry + event log.

    ``Telemetry()`` enables the passive halves; ``Telemetry(trace=False)``
    is the campaign runners' default (cheap counters for progress/work
    accounting, no span collection); ``Telemetry(trace=False,
    metrics=False)`` is the null object — see :data:`NULL`.  The third,
    opt-in half is the structured event stream: ``Telemetry(events=True)``
    attaches a fresh :class:`~repro.scale.obs.EventLog`, and passing an
    existing log shares it (how a campaign fans worker events into one
    stream).  Every recording method degrades to a no-op when its half is
    disabled, so instrumentation sites never branch.
    """

    __slots__ = ("tracer", "metrics", "events")

    def __init__(self, *, trace: bool = True, metrics: bool = True,
                 events=False) -> None:
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        if events is True:
            from .obs import EventLog
            self.events = EventLog()
        elif events is False or events is None:
            self.events = None
        else:
            # An existing EventLog to share (an empty one is falsy via
            # __len__, so identity checks above, never truthiness).
            self.events = events

    @property
    def enabled(self) -> bool:
        """Whether either passive half records anything."""
        return self.tracer is not None or self.metrics is not None

    def span(self, name: str, **attrs) -> Span:
        """A timed region; recorded into the tracer when tracing is on.

        The returned object always measures ``seconds`` (the single timing
        code path), and only additionally lands in the trace when this
        telemetry carries a tracer.
        """
        if self.tracer is None:
            return Span(name)
        return Span(name, tracer=self.tracer, attrs=attrs or None)

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter (no-op without a metrics registry)."""
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge (no-op without a metrics registry)."""
        if self.metrics is not None:
            self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float,
                edges: Sequence[float] = DEFAULT_BUCKET_EDGES) -> None:
        """Record a histogram observation (no-op without a registry)."""
        if self.metrics is not None:
            self.metrics.observe(name, value, edges)

    def counter_value(self, name: str) -> float:
        """Current counter value (0.0 without a registry)."""
        if self.metrics is None:
            return 0.0
        return self.metrics.counter_value(name)

    def emit(self, kind: str, **payload) -> None:
        """Emit a structured event (no-op without an event log)."""
        if self.events is not None:
            self.events.emit(kind, **payload)


class NullTelemetry(Telemetry):
    """The no-op default: no tracer, no registry, unmeasurable overhead.

    A :class:`Telemetry` whose halves are both off — spans still time their
    bodies (that is how result ``wall_seconds`` fields are populated), but
    nothing is collected and nothing can be exported.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(trace=False, metrics=False)


#: The module-level null singleton every instrumented call site defaults to.
NULL = NullTelemetry()


# ---------------------------------------------------------------------------
# Phase breakdown (the run-table reduction)
# ---------------------------------------------------------------------------


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


def phase_breakdown(source, extra_durations: Optional[
        Dict[str, List[float]]] = None) -> Dict[str, Dict[str, float]]:
    """Per-phase wall statistics from a tracer's spans, grouped by name.

    ``source`` is a :class:`Tracer`, a :class:`Telemetry` carrying one, or a
    plain ``{phase: [durations]}`` mapping (how worker processes ship their
    span timings home — a parallel campaign's phase table merges the parent
    trace with every worker's durations via ``extra_durations``).
    Returns ``{phase: {count, total_s, p50_s, p95_s, max_s}}`` sorted by
    total time descending — the rows ``tools/perf_report.py`` renders and
    ``BENCH_*.json`` artifacts embed under ``extra_info["phases"]``.
    """
    durations: Dict[str, List[float]] = {}
    if isinstance(source, dict):
        for name, values in source.items():
            durations.setdefault(name, []).extend(float(v) for v in values)
    else:
        tracer = source.tracer if isinstance(source, Telemetry) else source
        if tracer is None:
            raise WorkloadError("phase_breakdown needs tracing telemetry")
        for record in tracer.spans:
            durations.setdefault(record.name, []).append(record.dur_s)
    for name, values in (extra_durations or {}).items():
        durations.setdefault(name, []).extend(float(v) for v in values)
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(durations, key=lambda n: -sum(durations[n])):
        ordered = sorted(durations[name])
        out[name] = {
            "count": len(ordered),
            "total_s": sum(ordered),
            "p50_s": _percentile(ordered, 0.50),
            "p95_s": _percentile(ordered, 0.95),
            "max_s": ordered[-1],
        }
    return out


def format_phase_table(phases: Dict[str, Dict[str, float]],
                       title: str = "phases") -> str:
    """Render a phase breakdown as the fixed-width run table perf_report prints."""
    header = f"{'phase':<24} {'count':>7} {'total s':>10} {'p50 ms':>9} {'p95 ms':>9} {'max ms':>9}"
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for name, row in phases.items():
        lines.append(
            f"{name:<24} {int(row['count']):>7} {row['total_s']:>10.4f} "
            f"{row['p50_s'] * 1e3:>9.3f} {row['p95_s'] * 1e3:>9.3f} "
            f"{row['max_s'] * 1e3:>9.3f}"
        )
    if not phases:
        lines.append("(no phases recorded)")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_BUCKET_EDGES",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "NullTelemetry",
    "Span",
    "SpanRecord",
    "Telemetry",
    "Tracer",
    "format_phase_table",
    "phase_breakdown",
]
