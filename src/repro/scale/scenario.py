"""From (population, fleet, access network) to a solved fluid operating point.

The scenario builds the :class:`repro.scale.solver.CapacityProblem` for one
busy instant:

* one flow per non-empty (region, class, site) client group, whose rate
  variable is *one client's bandwidth* (the group's size enters the usage
  coefficients instead), so max-min fairness is fairness between clients,
  not between aggregates of different sizes — a 1000-client group and a
  10-client group crossing the same bottleneck leave every client with the
  same allocation;
* one resource per access region (the regional uplink, bits/s), per site
  uplink (bits/s), and per site CPU (core-seconds/s, data path priced by the
  :class:`repro.scale.costmodel.CryptoCostModel`);
* the steady key-setup load (sessions per client-hour, one RSA encryption
  each) is inelastic and small, so it is charged against site CPU capacity
  up front rather than entering the max-min fill.

Solving yields :class:`FluidResult`: per-class goodput, per-site CPU and
uplink utilization, and bottleneck attribution — the quantities the campaign
runner sweeps and tabulates.

Time-stepped callers solve the *same* structure many times with perturbed
demands and capacities, so problem construction is split in two: the
O(n_clients) part (site assignment, group counting, the usage matrix) lives
in a :class:`ProblemTemplate` that stays valid until the fleet's hash ring
changes, and the per-epoch part (:meth:`ProblemTemplate.instantiate`) only
scales small per-flow/per-site vectors — a few hundred elements regardless
of population size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..exceptions import WorkloadError
from ..units import gbps
from .fleet import NeutralizerFleet
from .population import ClientPopulation
from .solver import Allocation, CapacityProblem, max_min_allocation


@dataclass
class FluidResult:
    """The solved busy-instant operating point of one scenario."""

    n_clients: int
    demand_pps: Dict[str, float]
    goodput_pps: Dict[str, float]
    demand_bps: Dict[str, float]
    goodput_bps: Dict[str, float]
    #: Fraction of each class's demand that was served (min over groups).
    worst_group_satisfaction: Dict[str, float]
    cpu_utilization: np.ndarray
    uplink_utilization: np.ndarray
    region_utilization: np.ndarray
    key_setup_pps: float
    clients_per_site: np.ndarray
    solver_iterations: int

    @property
    def total_goodput_bps(self) -> float:
        """Delivered bits/s across every class."""
        return sum(self.goodput_bps.values())

    @property
    def total_demand_bps(self) -> float:
        """Offered bits/s across every class."""
        return sum(self.demand_bps.values())

    @property
    def delivered_fraction(self) -> float:
        """Overall goodput/demand ratio."""
        if self.total_demand_bps <= 0:
            return 1.0
        return self.total_goodput_bps / self.total_demand_bps


@dataclass
class EpochProblem:
    """One instantiated solver problem plus the scaled side-quantities."""

    problem: CapacityProblem
    #: Key-setup requests per second charged against each site's CPU.
    setups_per_site: np.ndarray


@dataclass
class ProblemTemplate:
    """The population×fleet flow structure, frozen for one hash-ring state.

    Everything that costs O(n_clients) — client-to-site assignment, group
    counting, the usage matrix — is computed once here.
    :meth:`instantiate` then produces a :class:`CapacityProblem` for any
    per-flow demand scaling (load curves, discrimination throttles) and
    per-site capacity scaling (degradation, failure) by touching only
    per-flow and per-site vectors.  The template is valid until the fleet's
    ring changes (``fleet.generation`` moves), after which clients must be
    reassigned.
    """

    population: ClientPopulation
    fleet: NeutralizerFleet
    fleet_generation: int
    region_uplink_bps: float
    #: Per-client site assignment under this ring state.
    site_index: np.ndarray
    #: Per-flow (region, class, site) structure.
    region_of: np.ndarray
    class_of: np.ndarray
    site_of: np.ndarray
    group_clients: np.ndarray
    #: Per-flow base demand (bps of one client) and wire bits per packet.
    base_demands: np.ndarray
    bits_per_packet: np.ndarray
    #: Per-flow key-setup rate (requests/s of the whole group).
    base_setups_per_flow: np.ndarray
    usage: np.ndarray
    regions: int
    sites: int
    flow_labels: list = field(default_factory=list)
    resource_labels: list = field(default_factory=list)

    @classmethod
    def build(cls, population: ClientPopulation, fleet: NeutralizerFleet,
              *, region_uplink_bps: float) -> "ProblemTemplate":
        """The one O(n_clients) pass: assign, count, and lay out the matrix."""
        site_index = fleet.assign_sites(population.ring_positions)
        counts = population.group_counts(site_index, fleet.n_sites).astype(np.float64)

        pps_per_client = population.demand_pps_per_client()
        bits_per_packet = population.packet_bits()
        cost = fleet.cost_model

        regions, classes, sites = counts.shape
        region_of, class_of, site_of = np.unravel_index(
            np.flatnonzero(counts), counts.shape
        )
        group_clients = counts[region_of, class_of, site_of]

        # Flow rate variable = bps of ONE client of the group; the group's
        # size multiplies the usage coefficients, so the max-min water level
        # is a per-client bandwidth shared by every client behind a resource.
        demand_bps_per_client = pps_per_client[class_of] * bits_per_packet[class_of]
        # CPU seconds consumed per bit of one client's traffic.
        cpu_per_bit = cost.data_packet_cost_seconds / bits_per_packet[class_of]

        n_flows = group_clients.size
        n_resources = regions + 2 * sites
        usage = np.zeros((n_resources, n_flows))
        usage[region_of, np.arange(n_flows)] = group_clients
        usage[regions + site_of, np.arange(n_flows)] = group_clients
        usage[regions + sites + site_of, np.arange(n_flows)] = group_clients * cpu_per_bit

        setup_rate_per_client = population.key_setup_rate_per_client()
        flow_labels = [
            f"r{r}/{population.mix.names[c]}/{fleet.sites[s].name}"
            for r, c, s in zip(region_of, class_of, site_of)
        ]
        resource_labels = (
            [f"region{r}-uplink" for r in range(regions)]
            + [f"{site.name}-uplink" for site in fleet.sites]
            + [f"{site.name}-cpu" for site in fleet.sites]
        )
        return cls(
            population=population,
            fleet=fleet,
            fleet_generation=fleet.generation,
            region_uplink_bps=region_uplink_bps,
            site_index=site_index,
            region_of=region_of,
            class_of=class_of,
            site_of=site_of,
            group_clients=group_clients,
            base_demands=demand_bps_per_client,
            bits_per_packet=bits_per_packet[class_of],
            base_setups_per_flow=group_clients * setup_rate_per_client[class_of],
            usage=usage,
            regions=regions,
            sites=sites,
            flow_labels=flow_labels,
            resource_labels=resource_labels,
        )

    @property
    def stale(self) -> bool:
        """Whether the fleet's ring changed since this template was built."""
        return self.fleet.generation != self.fleet_generation

    def instantiate(
        self,
        demand_scale: Optional[np.ndarray] = None,
        site_capacity_scale: Optional[np.ndarray] = None,
    ) -> EpochProblem:
        """A solver problem with scaled demands/capacities, O(flows + sites).

        ``demand_scale`` multiplies each flow's per-client demand (and its
        key-setup load — session churn tracks activity); ``site_capacity_scale``
        multiplies each site's CPU and uplink budgets.  ``None`` means 1.0.
        """
        cost = self.fleet.cost_model
        if demand_scale is None:
            demands = self.base_demands
            setups_per_flow = self.base_setups_per_flow
        else:
            if np.any(demand_scale < 0):
                raise WorkloadError("demand scale must be non-negative")
            demands = self.base_demands * demand_scale
            setups_per_flow = self.base_setups_per_flow * demand_scale
        setups_per_site = np.bincount(
            self.site_of, weights=setups_per_flow, minlength=self.sites
        )

        site_uplink = self.fleet.uplink_capacity_bps()
        site_cores = self.fleet.cpu_capacity_cores()
        if site_capacity_scale is not None:
            if np.any(site_capacity_scale < 0):
                raise WorkloadError("site capacity scale must be non-negative")
            site_uplink = site_uplink * site_capacity_scale
            site_cores = site_cores * site_capacity_scale
        # Key setups: inelastic control load charged against site CPU up front.
        cpu_capacity = np.maximum(
            site_cores - setups_per_site * cost.key_setup_cost_seconds, 0.0
        )
        capacities = np.concatenate([
            np.full(self.regions, self.region_uplink_bps),
            site_uplink,
            cpu_capacity,
        ])
        problem = CapacityProblem(
            demands=demands,
            usage=self.usage,
            capacities=capacities,
            flow_labels=self.flow_labels,
            resource_labels=self.resource_labels,
        )
        return EpochProblem(problem=problem, setups_per_site=setups_per_site)

    def interpret(self, epoch: EpochProblem, allocation: Allocation) -> FluidResult:
        """Turn a solved allocation into the per-class/per-site result object."""
        problem = epoch.problem
        names = self.population.mix.names
        demand_pps: Dict[str, float] = {}
        goodput_pps: Dict[str, float] = {}
        demand_bps: Dict[str, float] = {}
        goodput_bps: Dict[str, float] = {}
        worst: Dict[str, float] = {}
        satisfaction = allocation.satisfaction(problem)
        group_clients = self.group_clients
        bits = self.bits_per_packet
        for index, name in enumerate(names):
            members = self.class_of == index
            demand_bps[name] = float((problem.demands * group_clients)[members].sum())
            goodput_bps[name] = float((allocation.rates * group_clients)[members].sum())
            demand_pps[name] = float((problem.demands * group_clients / bits)[members].sum())
            goodput_pps[name] = float((allocation.rates * group_clients / bits)[members].sum())
            worst[name] = float(satisfaction[members].min()) if members.any() else 1.0

        utilization = allocation.utilization(problem)
        regions, sites = self.regions, self.sites
        clients_per_site = np.bincount(self.site_index, minlength=sites).astype(np.int64)
        return FluidResult(
            n_clients=self.population.n_clients,
            demand_pps=demand_pps,
            goodput_pps=goodput_pps,
            demand_bps=demand_bps,
            goodput_bps=goodput_bps,
            worst_group_satisfaction=worst,
            cpu_utilization=utilization[regions + sites:],
            uplink_utilization=utilization[regions:regions + sites],
            region_utilization=utilization[:regions],
            key_setup_pps=float(epoch.setups_per_site.sum()),
            clients_per_site=clients_per_site,
            solver_iterations=allocation.iterations,
        )


class ScaleScenario:
    """A population facing a fleet through a regional access network."""

    def __init__(
        self,
        population: ClientPopulation,
        fleet: NeutralizerFleet,
        *,
        region_uplink_bps: Optional[float] = None,
    ) -> None:
        self.population = population
        self.fleet = fleet
        #: Default regional uplink: generous enough that the fleet, not the
        #: access network, is the interesting constraint unless overridden.
        self.region_uplink_bps = region_uplink_bps if region_uplink_bps is not None else gbps(40)
        if self.region_uplink_bps <= 0:
            raise WorkloadError("region uplink must be positive")
        self._template: Optional[ProblemTemplate] = None

    # -- problem construction --------------------------------------------------------

    def build_template(self) -> ProblemTemplate:
        """The cached flow/resource structure, rebuilt when the ring changes."""
        if self._template is None or self._template.stale:
            self._template = ProblemTemplate.build(
                self.population, self.fleet, region_uplink_bps=self.region_uplink_bps
            )
        return self._template

    def build_problem(self) -> CapacityProblem:
        """Assemble the flow/resource structure for the current fleet health."""
        return self.build_template().instantiate().problem

    # -- solving ---------------------------------------------------------------------

    def solve(self, *, warm_start: Optional[np.ndarray] = None) -> FluidResult:
        """Build and solve the problem, interpreting rates as class goodputs."""
        template = self.build_template()
        epoch = template.instantiate()
        allocation = max_min_allocation(epoch.problem, warm_start=warm_start)
        return template.interpret(epoch, allocation)
