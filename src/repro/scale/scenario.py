"""From (population, fleet, access network) to a solved fluid operating point.

The scenario builds the :class:`repro.scale.solver.CapacityProblem` for one
busy instant:

* one flow per non-empty (region, class, site) client group, whose rate
  variable is *one client's bandwidth* (the group's size enters the usage
  coefficients instead), so max-min fairness is fairness between clients,
  not between aggregates of different sizes — a 1000-client group and a
  10-client group crossing the same bottleneck leave every client with the
  same allocation;
* one resource per access region (the regional uplink, bits/s), per site
  uplink (bits/s), and per site CPU (core-seconds/s, data path priced by the
  :class:`repro.scale.costmodel.CryptoCostModel`);
* the steady key-setup load (sessions per client-hour, one RSA encryption
  each) is inelastic and small, so it is charged against site CPU capacity
  up front rather than entering the max-min fill.

Solving yields :class:`FluidResult`: per-class goodput, per-site CPU and
uplink utilization, and bottleneck attribution — the quantities the campaign
runner sweeps and tabulates.

Time-stepped callers solve the *same* structure many times with perturbed
demands and capacities, so problem construction is split in two: the
O(n_clients) part (site assignment, group counting, the usage matrix) lives
in a :class:`ProblemTemplate` that stays valid until the fleet's hash ring
changes, and the per-epoch part (:meth:`ProblemTemplate.instantiate`) only
scales small per-flow/per-site vectors — a few hundred elements regardless
of population size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import WorkloadError
from ..units import gbps
from .fleet import NeutralizerFleet
from .population import ClientPopulation
from .solver import Allocation, CapacityProblem, solve_allocation


@dataclass
class FluidResult:
    """The solved busy-instant operating point of one scenario."""

    n_clients: int
    demand_pps: Dict[str, float]
    goodput_pps: Dict[str, float]
    demand_bps: Dict[str, float]
    goodput_bps: Dict[str, float]
    #: Fraction of each class's demand that was served (min over groups).
    worst_group_satisfaction: Dict[str, float]
    cpu_utilization: np.ndarray
    uplink_utilization: np.ndarray
    region_utilization: np.ndarray
    key_setup_pps: float
    clients_per_site: np.ndarray
    solver_iterations: int

    @property
    def total_goodput_bps(self) -> float:
        """Delivered bits/s across every class."""
        return sum(self.goodput_bps.values())

    @property
    def total_demand_bps(self) -> float:
        """Offered bits/s across every class."""
        return sum(self.demand_bps.values())

    @property
    def delivered_fraction(self) -> float:
        """Overall goodput/demand ratio."""
        if self.total_demand_bps <= 0:
            return 1.0
        return self.total_goodput_bps / self.total_demand_bps


@dataclass
class EpochProblem:
    """One instantiated solver problem plus the scaled side-quantities."""

    problem: CapacityProblem
    #: Key-setup requests per second charged against each site's CPU.
    setups_per_site: np.ndarray


@dataclass
class ProblemTemplate:
    """The population×fleet flow structure, frozen for one hash-ring state.

    Everything that costs O(n_clients) — client-to-site assignment, group
    counting, the usage matrix — is computed once here.
    :meth:`instantiate` then produces a :class:`CapacityProblem` for any
    per-flow demand scaling (load curves, discrimination throttles) and
    per-site capacity scaling (degradation, failure) by touching only
    per-flow and per-site vectors.  The template is valid until the fleet's
    ring changes (``fleet.generation`` moves), after which
    :meth:`rebuilt` derives a successor template in O(moved clients): the
    assignment is held as the *segment structure* of the ring over the
    population's sorted positions (:meth:`ClientPopulation.ring_sorted` /
    :meth:`NeutralizerFleet.assignment_segments`), so the diff of two ring
    states is a walk over merged segment boundaries and the group counts
    move only for the clients whose arc changed owner.
    """

    population: ClientPopulation
    fleet: NeutralizerFleet
    fleet_generation: int
    region_uplink_bps: float
    #: Segment assignment over the ring-sorted population: sorted clients
    #: ``cuts[i]:cuts[i+1]`` belong to site index ``seg_owners[i]``.
    cuts: np.ndarray
    seg_owners: np.ndarray
    #: Exact client counts per (region, class, site) under this ring state.
    counts3d: np.ndarray
    #: Clients per site (``counts3d`` summed over regions and classes).
    clients_per_site: np.ndarray
    #: Clients whose site changed relative to the parent template (0 for a
    #: from-scratch build) — the timeline's remap-churn figure.
    remapped_from_parent: int
    #: Per-flow (region, class, site) structure.
    region_of: np.ndarray
    class_of: np.ndarray
    site_of: np.ndarray
    group_clients: np.ndarray
    #: Per-flow base demand (bps of one client) and wire bits per packet.
    base_demands: np.ndarray
    bits_per_packet: np.ndarray
    #: Per-flow key-setup rate (requests/s of the whole group).
    base_setups_per_flow: np.ndarray
    usage: np.ndarray
    regions: int
    sites: int
    #: Per-flow elasticity (from the demand classes); ``None`` when the mix
    #: is purely inelastic, so the solver takes the classic max-min path.
    elastic_flows: Optional[np.ndarray] = None
    #: Per-flow alpha-fairness parameters (meaningful where elastic).
    flow_alpha: Optional[np.ndarray] = None
    #: Per-class flow index arrays (precomputed: interpret() runs per epoch).
    class_members: List[np.ndarray] = field(default_factory=list)
    _flow_labels: Optional[List[str]] = field(default=None, repr=False)

    @property
    def flow_labels(self) -> List[str]:
        """Human-readable flow names, built lazily (debugging/report use only)."""
        if self._flow_labels is None:
            self._flow_labels = [
                f"r{r}/{self.population.mix.names[c]}/{self.fleet.sites[s].name}"
                for r, c, s in zip(self.region_of, self.class_of, self.site_of)
            ]
        return self._flow_labels

    @property
    def payload_nbytes(self) -> int:
        """Bytes held by the template's own arrays (population excluded).

        This is the per-worker cache the parallel executor rebuilds in each
        process on top of the shared population segment — the number to
        check when sizing ``n_workers`` against available memory (see
        docs/parallel.md).  Lazy labels are not counted.
        """
        arrays = (
            self.cuts, self.seg_owners, self.counts3d, self.clients_per_site,
            self.region_of, self.class_of, self.site_of, self.group_clients,
            self.base_demands, self.bits_per_packet,
            self.base_setups_per_flow, self.usage,
            self.elastic_flows, self.flow_alpha, *self.class_members,
        )
        return int(sum(a.nbytes for a in arrays if a is not None))

    @property
    def resource_labels(self) -> List[str]:
        """Human-readable resource names, in capacity-vector order."""
        return (
            [f"region{r}-uplink" for r in range(self.regions)]
            + [f"{site.name}-uplink" for site in self.fleet.sites]
            + [f"{site.name}-cpu" for site in self.fleet.sites]
        )

    @classmethod
    def build(cls, population: ClientPopulation, fleet: NeutralizerFleet,
              *, region_uplink_bps: float) -> "ProblemTemplate":
        """The one O(n_clients) pass: assign, count, and lay out the matrix."""
        positions, _, _, region_class = population.ring_sorted()
        cuts, seg_owners = fleet.assignment_segments(positions)
        site_sorted = np.repeat(seg_owners, np.diff(cuts))
        fused = region_class * fleet.n_sites + site_sorted
        counts3d = np.bincount(
            fused, minlength=population.regions * population.n_classes * fleet.n_sites
        ).reshape(population.regions, population.n_classes, fleet.n_sites)
        return cls._assemble(
            population, fleet, region_uplink_bps=region_uplink_bps,
            cuts=cuts, seg_owners=seg_owners, counts3d=counts3d,
            remapped_from_parent=0,
        )

    def rebuilt(self) -> "ProblemTemplate":
        """A successor template for the fleet's *current* ring, incrementally.

        Walks the merged segment boundaries of the old and new assignments;
        wherever the owning site differs, the affected slice of the sorted
        population is histogrammed once (O(slice)) and its counts move from
        the old site to the new one.  An unchanged arc costs nothing, so a
        single site failing out of a large fleet reassigns only that site's
        clients — consistent hashing's contract, now also the rebuild cost.
        """
        population = self.population
        fleet = self.fleet
        positions, _, _, region_class = population.ring_sorted()
        new_cuts, new_owners = fleet.assignment_segments(positions)

        merged = np.unique(np.concatenate([self.cuts, new_cuts]))
        starts, ends = merged[:-1], merged[1:]
        old_of = self.seg_owners[np.searchsorted(self.cuts, starts, side="right") - 1]
        new_of = new_owners[np.searchsorted(new_cuts, starts, side="right") - 1]
        changed = np.flatnonzero((old_of != new_of) & (ends > starts))

        counts3d = self.counts3d.copy()
        bins = population.regions * population.n_classes
        moved = 0
        for k in changed:
            lo, hi = int(starts[k]), int(ends[k])
            hist = np.bincount(region_class[lo:hi], minlength=bins).reshape(
                population.regions, population.n_classes
            )
            counts3d[:, :, old_of[k]] -= hist
            counts3d[:, :, new_of[k]] += hist
            moved += hi - lo
        return type(self)._assemble(
            population, fleet, region_uplink_bps=self.region_uplink_bps,
            cuts=new_cuts, seg_owners=new_owners, counts3d=counts3d,
            remapped_from_parent=moved,
        )

    @classmethod
    def _assemble(cls, population: ClientPopulation, fleet: NeutralizerFleet,
                  *, region_uplink_bps: float, cuts: np.ndarray,
                  seg_owners: np.ndarray, counts3d: np.ndarray,
                  remapped_from_parent: int) -> "ProblemTemplate":
        """Lay out flows, usage matrix, and labels from the group counts."""
        counts = counts3d.astype(np.float64)
        pps_per_client = population.demand_pps_per_client()
        bits_per_packet = population.packet_bits()
        cost = fleet.cost_model

        regions, classes, sites = counts.shape
        region_of, class_of, site_of = np.unravel_index(
            np.flatnonzero(counts), counts.shape
        )
        group_clients = counts[region_of, class_of, site_of]

        # Flow rate variable = bps of ONE client of the group; the group's
        # size multiplies the usage coefficients, so the max-min water level
        # is a per-client bandwidth shared by every client behind a resource.
        demand_bps_per_client = pps_per_client[class_of] * bits_per_packet[class_of]
        # CPU seconds consumed per bit of one client's traffic.
        cpu_per_bit = cost.data_packet_cost_seconds / bits_per_packet[class_of]

        n_flows = group_clients.size
        n_resources = regions + 2 * sites
        usage = np.zeros((n_resources, n_flows))
        usage[region_of, np.arange(n_flows)] = group_clients
        usage[regions + site_of, np.arange(n_flows)] = group_clients
        usage[regions + sites + site_of, np.arange(n_flows)] = group_clients * cpu_per_bit

        class_elastic = population.class_elastic()
        elastic_flows = class_elastic[class_of] if class_elastic.any() else None
        flow_alpha = (population.class_alpha()[class_of]
                      if elastic_flows is not None else None)

        setup_rate_per_client = population.key_setup_rate_per_client()
        return cls(
            population=population,
            fleet=fleet,
            fleet_generation=fleet.generation,
            region_uplink_bps=region_uplink_bps,
            cuts=cuts,
            seg_owners=seg_owners,
            counts3d=counts3d,
            clients_per_site=counts3d.sum(axis=(0, 1)).astype(np.int64),
            remapped_from_parent=remapped_from_parent,
            region_of=region_of,
            class_of=class_of,
            site_of=site_of,
            group_clients=group_clients,
            base_demands=demand_bps_per_client,
            bits_per_packet=bits_per_packet[class_of],
            base_setups_per_flow=group_clients * setup_rate_per_client[class_of],
            usage=usage,
            regions=regions,
            sites=sites,
            elastic_flows=elastic_flows,
            flow_alpha=flow_alpha,
            class_members=[np.flatnonzero(class_of == index)
                           for index in range(classes)],
        )

    @property
    def stale(self) -> bool:
        """Whether the fleet's ring changed since this template was built."""
        return self.fleet.generation != self.fleet_generation

    def instantiate(
        self,
        demand_scale: Optional[np.ndarray] = None,
        site_capacity_scale: Optional[np.ndarray] = None,
        extra_setups_per_flow: Optional[np.ndarray] = None,
    ) -> EpochProblem:
        """A solver problem with scaled demands/capacities, O(flows + sites).

        ``demand_scale`` multiplies each flow's per-client demand (and its
        key-setup load — session churn tracks activity); ``site_capacity_scale``
        multiplies each site's CPU and uplink budgets.  ``None`` means 1.0.
        ``extra_setups_per_flow`` adds one-off key-setup requests/s on top of
        the steady per-class rate (e.g. neutralizer adopters re-keying
        through the ring), charged against the owning site's CPU.
        """
        cost = self.fleet.cost_model
        if demand_scale is None:
            demands = self.base_demands
            setups_per_flow = self.base_setups_per_flow
        else:
            if np.any(demand_scale < 0):
                raise WorkloadError("demand scale must be non-negative")
            demands = self.base_demands * demand_scale
            setups_per_flow = self.base_setups_per_flow * demand_scale
        if extra_setups_per_flow is not None:
            if np.any(extra_setups_per_flow < 0):
                raise WorkloadError("extra key-setup load must be non-negative")
            setups_per_flow = setups_per_flow + extra_setups_per_flow
        setups_per_site = np.bincount(
            self.site_of, weights=setups_per_flow, minlength=self.sites
        )

        site_uplink = self.fleet.uplink_capacity_bps()
        site_cores = self.fleet.cpu_capacity_cores()
        if site_capacity_scale is not None:
            if np.any(site_capacity_scale < 0):
                raise WorkloadError("site capacity scale must be non-negative")
            site_uplink = site_uplink * site_capacity_scale
            site_cores = site_cores * site_capacity_scale
        # Key setups: inelastic control load charged against site CPU up front.
        cpu_capacity = np.maximum(
            site_cores - setups_per_site * cost.key_setup_cost_seconds, 0.0
        )
        capacities = np.concatenate([
            np.full(self.regions, self.region_uplink_bps),
            site_uplink,
            cpu_capacity,
        ])
        # Labels are omitted from the per-epoch problem (they are never read
        # on the hot path); ``template.flow_labels`` builds them on demand.
        # Elastic classes ride through as the per-flow mask/alpha, with the
        # group sizes as utility weights so alpha fairness stays per client.
        problem = CapacityProblem(
            demands=demands,
            usage=self.usage,
            capacities=capacities,
            elastic=self.elastic_flows,
            weights=self.group_clients if self.elastic_flows is not None else None,
            alpha=self.flow_alpha if self.flow_alpha is not None else 2.0,
        )
        return EpochProblem(problem=problem, setups_per_site=setups_per_site)

    def interpret(self, epoch: EpochProblem, allocation: Allocation) -> FluidResult:
        """Turn a solved allocation into the per-class/per-site result object."""
        problem = epoch.problem
        names = self.population.mix.names
        demand_pps: Dict[str, float] = {}
        goodput_pps: Dict[str, float] = {}
        demand_bps: Dict[str, float] = {}
        goodput_bps: Dict[str, float] = {}
        worst: Dict[str, float] = {}
        satisfaction = allocation.satisfaction(problem)
        group_clients = self.group_clients
        flow_demand_bps = problem.demands * group_clients
        flow_goodput_bps = allocation.rates * group_clients
        flow_packets = group_clients / self.bits_per_packet
        for index, name in enumerate(names):
            members = self.class_members[index]
            demand_bps[name] = float(flow_demand_bps[members].sum())
            goodput_bps[name] = float(flow_goodput_bps[members].sum())
            demand_pps[name] = float((problem.demands[members] * flow_packets[members]).sum())
            goodput_pps[name] = float((allocation.rates[members] * flow_packets[members]).sum())
            worst[name] = float(satisfaction[members].min()) if members.size else 1.0

        utilization = allocation.utilization(problem)
        regions, sites = self.regions, self.sites
        clients_per_site = self.clients_per_site
        return FluidResult(
            n_clients=self.population.n_clients,
            demand_pps=demand_pps,
            goodput_pps=goodput_pps,
            demand_bps=demand_bps,
            goodput_bps=goodput_bps,
            worst_group_satisfaction=worst,
            cpu_utilization=utilization[regions + sites:],
            uplink_utilization=utilization[regions:regions + sites],
            region_utilization=utilization[:regions],
            key_setup_pps=float(epoch.setups_per_site.sum()),
            clients_per_site=clients_per_site,
            solver_iterations=allocation.iterations,
        )


class ScaleScenario:
    """A population facing a fleet through a regional access network."""

    def __init__(
        self,
        population: ClientPopulation,
        fleet: NeutralizerFleet,
        *,
        region_uplink_bps: Optional[float] = None,
    ) -> None:
        self.population = population
        self.fleet = fleet
        #: Default regional uplink: generous enough that the fleet, not the
        #: access network, is the interesting constraint unless overridden.
        self.region_uplink_bps = region_uplink_bps if region_uplink_bps is not None else gbps(40)
        if self.region_uplink_bps <= 0:
            raise WorkloadError("region uplink must be positive")
        self._template: Optional[ProblemTemplate] = None

    # -- problem construction --------------------------------------------------------

    def build_template(self) -> ProblemTemplate:
        """The cached flow/resource structure, rebuilt when the ring changes.

        The first build pays one O(n_clients) counting pass; every later ring
        change is absorbed by :meth:`ProblemTemplate.rebuilt`, which touches
        only the clients whose arc of the hash ring changed owner.
        """
        if self._template is None:
            self._template = ProblemTemplate.build(
                self.population, self.fleet, region_uplink_bps=self.region_uplink_bps
            )
        elif self._template.stale:
            self._template = self._template.rebuilt()
        return self._template

    def build_problem(self) -> CapacityProblem:
        """Assemble the flow/resource structure for the current fleet health."""
        return self.build_template().instantiate().problem

    # -- solving ---------------------------------------------------------------------

    def solve(self, *, warm_start: Optional[np.ndarray] = None,
              telemetry=None) -> FluidResult:
        """Build and solve the problem, interpreting rates as class goodputs.

        Dispatches through :func:`repro.scale.solver.solve_allocation`, so a
        mix with elastic classes gets the composed max-min + alpha-fair
        solve and a purely inelastic mix takes the classic fill unchanged.
        ``telemetry`` is handed to the solver for its fast-path counters.
        """
        template = self.build_template()
        epoch = template.instantiate()
        allocation = solve_allocation(epoch.problem, warm_start=warm_start,
                                      telemetry=telemetry)
        return template.interpret(epoch, allocation)
