"""From (population, fleet, access network) to a solved fluid operating point.

The scenario builds the :class:`repro.scale.solver.CapacityProblem` for one
busy instant:

* one flow per non-empty (region, class, site) client group, whose rate
  variable is *one client's bandwidth* (the group's size enters the usage
  coefficients instead), so max-min fairness is fairness between clients,
  not between aggregates of different sizes — a 1000-client group and a
  10-client group crossing the same bottleneck leave every client with the
  same allocation;
* one resource per access region (the regional uplink, bits/s), per site
  uplink (bits/s), and per site CPU (core-seconds/s, data path priced by the
  :class:`repro.scale.costmodel.CryptoCostModel`);
* the steady key-setup load (sessions per client-hour, one RSA encryption
  each) is inelastic and small, so it is charged against site CPU capacity
  up front rather than entering the max-min fill.

Solving yields :class:`FluidResult`: per-class goodput, per-site CPU and
uplink utilization, and bottleneck attribution — the quantities the campaign
runner sweeps and tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..exceptions import WorkloadError
from ..units import gbps
from .fleet import NeutralizerFleet
from .population import ClientPopulation
from .solver import CapacityProblem, max_min_allocation


@dataclass
class FluidResult:
    """The solved busy-instant operating point of one scenario."""

    n_clients: int
    demand_pps: Dict[str, float]
    goodput_pps: Dict[str, float]
    demand_bps: Dict[str, float]
    goodput_bps: Dict[str, float]
    #: Fraction of each class's demand that was served (min over groups).
    worst_group_satisfaction: Dict[str, float]
    cpu_utilization: np.ndarray
    uplink_utilization: np.ndarray
    region_utilization: np.ndarray
    key_setup_pps: float
    clients_per_site: np.ndarray
    solver_iterations: int

    @property
    def total_goodput_bps(self) -> float:
        """Delivered bits/s across every class."""
        return sum(self.goodput_bps.values())

    @property
    def total_demand_bps(self) -> float:
        """Offered bits/s across every class."""
        return sum(self.demand_bps.values())

    @property
    def delivered_fraction(self) -> float:
        """Overall goodput/demand ratio."""
        if self.total_demand_bps <= 0:
            return 1.0
        return self.total_goodput_bps / self.total_demand_bps


class ScaleScenario:
    """A population facing a fleet through a regional access network."""

    def __init__(
        self,
        population: ClientPopulation,
        fleet: NeutralizerFleet,
        *,
        region_uplink_bps: Optional[float] = None,
    ) -> None:
        self.population = population
        self.fleet = fleet
        #: Default regional uplink: generous enough that the fleet, not the
        #: access network, is the interesting constraint unless overridden.
        self.region_uplink_bps = region_uplink_bps if region_uplink_bps is not None else gbps(40)
        if self.region_uplink_bps <= 0:
            raise WorkloadError("region uplink must be positive")

    # -- problem construction --------------------------------------------------------

    def build_problem(self) -> CapacityProblem:
        """Assemble the flow/resource structure for the current fleet health."""
        population = self.population
        fleet = self.fleet
        site_index = fleet.assign_sites(population.ring_positions)
        counts = population.group_counts(site_index, fleet.n_sites).astype(np.float64)

        pps_per_client = population.demand_pps_per_client()
        bits_per_packet = population.packet_bits()
        cost = fleet.cost_model

        regions, classes, sites = counts.shape
        region_of, class_of, site_of = np.unravel_index(
            np.flatnonzero(counts), counts.shape
        )
        group_clients = counts[region_of, class_of, site_of]

        # Flow rate variable = bps of ONE client of the group; the group's
        # size multiplies the usage coefficients, so the max-min water level
        # is a per-client bandwidth shared by every client behind a resource.
        demand_bps_per_client = pps_per_client[class_of] * bits_per_packet[class_of]
        # CPU seconds consumed per bit of one client's traffic.
        cpu_per_bit = cost.data_packet_cost_seconds / bits_per_packet[class_of]

        n_flows = group_clients.size
        n_resources = regions + 2 * sites
        usage = np.zeros((n_resources, n_flows))
        usage[region_of, np.arange(n_flows)] = group_clients
        usage[regions + site_of, np.arange(n_flows)] = group_clients
        usage[regions + sites + site_of, np.arange(n_flows)] = group_clients * cpu_per_bit

        # Key setups: inelastic control load charged against site CPU up front.
        setup_rate_per_client = population.key_setup_rate_per_client()
        setups_per_site = np.zeros(sites)
        np.add.at(
            setups_per_site, site_of,
            group_clients * setup_rate_per_client[class_of],
        )
        cpu_capacity = fleet.cpu_capacity_cores() - setups_per_site * cost.key_setup_cost_seconds
        cpu_capacity = np.maximum(cpu_capacity, 0.0)

        capacities = np.concatenate([
            np.full(regions, self.region_uplink_bps),
            fleet.uplink_capacity_bps(),
            cpu_capacity,
        ])
        flow_labels = [
            f"r{r}/{population.mix.names[c]}/{fleet.sites[s].name}"
            for r, c, s in zip(region_of, class_of, site_of)
        ]
        resource_labels = (
            [f"region{r}-uplink" for r in range(regions)]
            + [f"{site.name}-uplink" for site in fleet.sites]
            + [f"{site.name}-cpu" for site in fleet.sites]
        )
        problem = CapacityProblem(
            demands=demand_bps_per_client,
            usage=usage,
            capacities=capacities,
            flow_labels=flow_labels,
            resource_labels=resource_labels,
        )
        # Stash the per-flow structure the result interpretation needs.
        self._last_meta = {
            "class_of": class_of,
            "site_of": site_of,
            "group_clients": group_clients,
            "bits_per_packet": bits_per_packet[class_of],
            "setups_per_site": setups_per_site,
            "site_index": site_index,
            "regions": regions,
            "sites": sites,
        }
        return problem

    # -- solving ---------------------------------------------------------------------

    def solve(self) -> FluidResult:
        """Build and solve the problem, interpreting rates as class goodputs."""
        population = self.population
        problem = self.build_problem()
        allocation = max_min_allocation(problem)
        meta = self._last_meta
        class_of = meta["class_of"]
        regions, sites = meta["regions"], meta["sites"]

        names = population.mix.names
        demand_pps: Dict[str, float] = {}
        goodput_pps: Dict[str, float] = {}
        demand_bps: Dict[str, float] = {}
        goodput_bps: Dict[str, float] = {}
        worst: Dict[str, float] = {}
        satisfaction = allocation.satisfaction(problem)
        group_clients = meta["group_clients"]
        bits = meta["bits_per_packet"]
        for index, name in enumerate(names):
            members = class_of == index
            demand_bps[name] = float((problem.demands * group_clients)[members].sum())
            goodput_bps[name] = float((allocation.rates * group_clients)[members].sum())
            demand_pps[name] = float((problem.demands * group_clients / bits)[members].sum())
            goodput_pps[name] = float((allocation.rates * group_clients / bits)[members].sum())
            worst[name] = float(satisfaction[members].min()) if members.any() else 1.0

        utilization = allocation.utilization(problem)
        clients_per_site = np.bincount(meta["site_index"], minlength=sites).astype(np.int64)
        return FluidResult(
            n_clients=population.n_clients,
            demand_pps=demand_pps,
            goodput_pps=goodput_pps,
            demand_bps=demand_bps,
            goodput_bps=goodput_bps,
            worst_group_satisfaction=worst,
            cpu_utilization=utilization[regions + sites:],
            uplink_utilization=utilization[regions:regions + sites],
            region_utilization=utilization[:regions],
            key_setup_pps=float(meta["setups_per_site"].sum()),
            clients_per_site=clients_per_site,
            solver_iterations=allocation.iterations,
        )
