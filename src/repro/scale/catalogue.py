"""A catalogue of named fleet-scale timeline scenarios.

Each entry is a :class:`ScenarioSpec` that builds a ready-to-run
:class:`repro.scale.timeline.FluidTimeline` for any population size: fleet
capacity is *provisioned relative to the population's nominal demand* (via
:func:`provisioned_fleet`), so "flash crowd saturates the fleet" stays true
whether the catalogue runs with 2,000 clients in a CI smoke job or a million
in the full E13 campaign.

The thirteen stock scenarios cover the transients the steady-state sweep
(E12) hides:

``flash_crowd``
    A 6× demand spike in the two largest metro regions rides up, holds, and
    decays; the fleet sheds load max-min fairly while untouched regions keep
    full service.
``regional_outage``
    A quarter of the sites fail at once (a regional power event), clients
    remap through the consistent-hash ring, survivors absorb the load, and
    recovery returns exactly the old assignment.
``diurnal_week``
    168 hourly epochs of timezone-staggered day/night sinusoid: the
    fast-path showcase — the ring never changes and most epochs are
    certified feasible straight from the demands vector, skipping the fill.
``heterogeneous_fleet``
    Half the fleet is big metro boxes, half small edge boxes, under diurnal
    load; utilization spreads and the small boxes hit their knees first.
``cascading_overload``
    Sites degrade and then fail one after another while demand ramps up —
    each casualty pushes more load onto fewer survivors.
``discrimination_rollout``
    An access-ISP coalition rolls per-region throttling of video/web across
    the regions one epoch at a time, then repeals it — the fluid-model
    rendering of the paper's discrimination story at fleet scale.
``autoscaled_diurnal``
    An elastic fleet with drained spares tracks the diurnal sinusoid under
    a predictive utilization policy — the closed-loop showcase.
``stochastic_unreliable``
    One seeded draw of the E14 stochastic processes (failures, a correlated
    outage, attack onsets) with a step-policy autoscaler backfilling.
``elastic_web_mix``
    The elastic demand mix (TCP-like web and video next to CBR VoIP) rides
    a flash crowd through an undersized fleet: the elastic classes back off
    alpha-fairly where the inelastic VoIP is shed max-min, and the latency
    proxy shows the congestion as a displaced delay tail.
``latency_slo_autoscaled``
    A latency-SLO fleet: the latency-aware autoscaler holds the
    client-weighted P95 path delay on target through a diurnal day while
    the M/G/1-PS proxy records per-epoch delay percentiles and
    SLO-violating client fractions.
``adaptive_throttler``
    A budget-constrained ISP escalates its video/web throttle as evasion
    grows while per-region neutralizer adoption answers — the E16 game at
    its default dispositions, watched epoch by epoch.
``neutralizer_arms_race``
    The full arms race: a maximally aggressive ISP escalates to the §3.6
    blanket move (throttle everything it cannot classify), cheap adoption
    floods in, collateral forces the ISP back off, and the latency proxy
    shows each phase as a moving exposed-vs-neutralized delay tail.
``targeted_class_slo``
    The ROADMAP's "discrimination story measured in delay": a high-precision
    classifier throttles *video only* while a latency-aware autoscaler holds
    the aggregate P95 on target — the throttled class's exposed tail is
    displaced while its neutralized twin and the bystander classes stay on
    the base curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import WorkloadError
from .adversary import (
    AdoptionModel,
    AdversaryGame,
    ClassifierModel,
    IspStrategy,
)
from .autoscale import (
    Autoscaler,
    PredictiveLoadPolicy,
    StepPolicy,
    TargetLatencyPolicy,
    elastic_fleet,
)
from .costmodel import CryptoCostModel
from .fleet import FleetSite, NeutralizerFleet
from .latency import LatencyModel
from .population import ClientPopulation, elastic_mix
from .stochastic import compile_events, default_processes
from .timeline import (
    CapacityDegradation,
    ConstantLoad,
    DiurnalLoad,
    FlashCrowdLoad,
    FluidTimeline,
    LinearRampLoad,
    SiteFailure,
    SiteRecovery,
    DiscriminationToggle,
)


def nominal_demand(population: ClientPopulation) -> Tuple[float, float]:
    """The population's nominal busy-instant load: (total bits/s, total packets/s).

    Callers provisioning a fleet turn packets/s into CPU cores through the
    cost model's per-packet data-path price and multiply by their headroom;
    key setups are charged separately by the scenario itself.
    """
    counts = population.class_counts().astype(float)
    pps = population.demand_pps_per_client()
    bits = population.packet_bits()
    total_bps = float((counts * pps * bits).sum())
    total_pps = float((counts * pps).sum())
    return total_bps, total_pps


def provisioned_fleet(
    population: ClientPopulation,
    n_sites: int,
    *,
    headroom: float = 1.3,
    cost_model: Optional[CryptoCostModel] = None,
    heterogeneous: bool = False,
) -> NeutralizerFleet:
    """A fleet sized to carry ``headroom`` times the population's nominal load.

    Uplinks and CPU budgets are derived from the population's aggregate
    demand, so the same scenario is equally interesting at 2 × 10^3 and
    10^6 clients.  ``heterogeneous=True`` splits the budget 3:1 between big
    metro boxes (the first half) and small edge boxes (the second half)
    instead of evenly.
    """
    if n_sites <= 0:
        raise WorkloadError("a fleet needs at least one site")
    if headroom <= 0:
        raise WorkloadError("fleet headroom must be positive")
    model = cost_model or CryptoCostModel.default()
    total_bps, total_pps = nominal_demand(population)
    total_uplink = total_bps * headroom
    total_cores = total_pps * model.data_packet_cost_seconds * headroom

    weights = [1.0] * n_sites
    if heterogeneous:
        half = n_sites // 2
        weights = [3.0] * half + [1.0] * (n_sites - half)
    weight_sum = sum(weights)
    sites = [
        FleetSite(
            f"site{i:02d}",
            cores=max(total_cores * weight / weight_sum, 1e-6),
            uplink_bps=max(total_uplink * weight / weight_sum, 1.0),
        )
        for i, weight in enumerate(weights)
    ]
    return NeutralizerFleet(sites, cost_model=model)


@dataclass(frozen=True)
class ScenarioSpec:
    """One catalogue entry: a named, self-describing timeline builder."""

    name: str
    title: str
    description: str
    build: Callable[..., FluidTimeline]

    def __call__(self, *, clients: int = 100_000, seed: int = 2006,
                 cost_model: Optional[CryptoCostModel] = None,
                 population: Optional[ClientPopulation] = None) -> FluidTimeline:
        return self.build(clients=clients, seed=seed, cost_model=cost_model,
                          population=population)


def _flash_crowd(*, clients: int, seed: int,
                 cost_model: Optional[CryptoCostModel],
                 population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.4, cost_model=cost_model)
    total_bps, _ = nominal_demand(population)
    return FluidTimeline(
        population, fleet,
        epochs=48, epoch_seconds=1800.0,
        load=FlashCrowdLoad(base=0.9, spike=6.0, start_seconds=8 * 1800.0,
                            ramp_seconds=2 * 1800.0, hold_seconds=12 * 1800.0,
                            regions_hit=(0, 1)),
        # Access uplinks sized so the spiking metro regions also stress the
        # regional aggregation, not only the fleet.
        region_uplink_bps=total_bps * 0.6,
    )


def _regional_outage(*, clients: int, seed: int,
                     cost_model: Optional[CryptoCostModel],
                     population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.5, cost_model=cost_model)
    outage = [f"site{i:02d}" for i in range(4)]
    events: List = [SiteFailure(8, name) for name in outage]
    events += [SiteRecovery(20, name) for name in outage]
    return FluidTimeline(
        population, fleet,
        epochs=36, epoch_seconds=3600.0,
        load=ConstantLoad(1.0),
        events=events,
    )


def _diurnal_week(*, clients: int, seed: int,
                  cost_model: Optional[CryptoCostModel],
                  population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.1, cost_model=cost_model)
    return FluidTimeline(
        population, fleet,
        epochs=168, epoch_seconds=3600.0,
        load=DiurnalLoad(trough=0.35, peak=1.05, timezone_spread=0.25),
    )


def _heterogeneous_fleet(*, clients: int, seed: int,
                         cost_model: Optional[CryptoCostModel],
                         population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.25,
                              cost_model=cost_model, heterogeneous=True)
    return FluidTimeline(
        population, fleet,
        epochs=48, epoch_seconds=3600.0,
        load=DiurnalLoad(trough=0.4, peak=1.1, timezone_spread=0.3),
    )


def _cascading_overload(*, clients: int, seed: int,
                        cost_model: Optional[CryptoCostModel],
                        population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 12, headroom=1.3, cost_model=cost_model)
    events: List = []
    # One box overheats, is derated, then dies; its load pushes the next one
    # over, and so on — classic cascade, four casualties deep.
    for wave, site in enumerate(("site03", "site07", "site01", "site09")):
        events.append(CapacityDegradation(4 + wave * 6, site=site, factor=0.4))
        events.append(SiteFailure(7 + wave * 6, site))
    return FluidTimeline(
        population, fleet,
        epochs=40, epoch_seconds=1800.0,
        load=LinearRampLoad(start_level=0.8, end_level=1.15,
                            t0_seconds=0.0, t1_seconds=40 * 1800.0),
        events=events,
    )


def _discrimination_rollout(*, clients: int, seed: int,
                            cost_model: Optional[CryptoCostModel],
                            population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=2.0, cost_model=cost_model)
    events: List = []
    # One access region per epoch starts throttling video+web to 30%; the
    # policy spreads across all regions, holds, then is repealed everywhere
    # (regulatory intervention) eight epochs before the end.
    for region in range(population.regions):
        events.append(DiscriminationToggle(
            2 + region * 2, region=region, factor=0.3,
            class_names=("video", "web"), until_epoch=24,
        ))
    return FluidTimeline(
        population, fleet,
        epochs=32, epoch_seconds=3600.0,
        load=ConstantLoad(1.0),
        events=events,
    )


def _autoscaled_diurnal(*, clients: int, seed: int,
                        cost_model: Optional[CryptoCostModel],
                        population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    # 16 nominal sites at 60% utilization, 8 drained spares; the predictive
    # policy reads the diurnal curve two epochs ahead so capacity lands when
    # the evening peak does, not one warm-up after it.
    fleet = elastic_fleet(population, 24, nominal_sites=16, at_utilization=0.6,
                          cost_model=cost_model)
    autoscaler = Autoscaler(
        PredictiveLoadPolicy(target=0.6, lead_epochs=2, deadband=0.06),
        min_sites=8, warmup_epochs=2, cooldown_epochs=1,
    )
    return FluidTimeline(
        population, fleet,
        epochs=72, epoch_seconds=3600.0,
        load=DiurnalLoad(trough=0.3, peak=1.15, timezone_spread=0.25),
        autoscaler=autoscaler,
    )


def _stochastic_unreliable(*, clients: int, seed: int,
                           cost_model: Optional[CryptoCostModel],
                           population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = elastic_fleet(population, 20, nominal_sites=16, at_utilization=0.7,
                          cost_model=cost_model)
    # One draw of the E14 processes, pinned to the scenario seed — a single
    # unlucky month: random single-site failures, one or two correlated
    # outages, and DoS onsets, with a step autoscaler backfilling from the
    # spare pool whenever a survivor runs hot.
    events = compile_events(
        default_processes(failure_rate=0.004, outage_rate=0.02, attack_rate=0.03),
        seed=seed, epochs=60,
        site_names=[site.name for site in fleet.sites],
    )
    autoscaler = Autoscaler(
        StepPolicy(high=0.85, low=0.45, step=2),
        min_sites=12, warmup_epochs=1, cooldown_epochs=1,
    )
    return FluidTimeline(
        population, fleet,
        epochs=60, epoch_seconds=1800.0,
        load=ConstantLoad(1.0),
        events=events,
        autoscaler=autoscaler,
    )


def _elastic_web_mix(*, clients: int, seed: int,
                     cost_model: Optional[CryptoCostModel],
                     population: Optional[ClientPopulation] = None) -> FluidTimeline:
    # The elastic mix changes the population's class structure, so this
    # scenario cannot reuse a shared default-mix population — it draws its
    # own (the build is O(n_clients), far below one congested solve).
    population = ClientPopulation(clients, mix=elastic_mix(), seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=0.95, cost_model=cost_model)
    return FluidTimeline(
        population, fleet,
        epochs=48, epoch_seconds=1800.0,
        load=FlashCrowdLoad(base=0.85, spike=4.0, start_seconds=10 * 1800.0,
                            ramp_seconds=3 * 1800.0, hold_seconds=10 * 1800.0,
                            regions_hit=(0, 1, 2)),
        latency=LatencyModel(),
        # Tight enough that the crowd's queueing tail actually breaches it:
        # the scenario reports a growing violating-client fraction while
        # the spike holds, not just a throughput dip.
        latency_slo_seconds=0.04,
    )


def _latency_slo_autoscaled(*, clients: int, seed: int,
                            cost_model: Optional[CryptoCostModel],
                            population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    # 16 nominal sites at 60% with 8 drained spares; the controller reads
    # the previous epoch's client-weighted P95 and inverts the queueing
    # proxy to hold it at 55 ms through the diurnal swing.
    fleet = elastic_fleet(population, 24, nominal_sites=16, at_utilization=0.6,
                          cost_model=cost_model)
    model = LatencyModel()
    autoscaler = Autoscaler(
        TargetLatencyPolicy.for_model(model, target_p95_seconds=0.055),
        min_sites=8, warmup_epochs=1, cooldown_epochs=2,
    )
    return FluidTimeline(
        population, fleet,
        epochs=72, epoch_seconds=3600.0,
        load=DiurnalLoad(trough=0.35, peak=1.2, timezone_spread=0.25),
        autoscaler=autoscaler,
        latency=model,
        latency_slo_seconds=0.08,
    )


def _adaptive_throttler(*, clients: int, seed: int,
                        cost_model: Optional[CryptoCostModel],
                        population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.3, cost_model=cost_model)
    # The E16 default dispositions: a mid-aggressiveness ISP that escalates
    # as adoption erodes what its classifier can see, against moderately
    # price-sensitive clients — the canonical single game run.
    game = AdversaryGame(
        isp=IspStrategy(aggressiveness=0.6, allow_blanket=False),
        adoption=AdoptionModel(sensitivity=6.0, adoption_cost=0.05),
    )
    return FluidTimeline(
        population, fleet,
        epochs=60, epoch_seconds=1800.0,
        load=ConstantLoad(1.0),
        adversary=game,
        latency=LatencyModel(),
        latency_slo_seconds=0.08,
    )


def _neutralizer_arms_race(*, clients: int, seed: int,
                           cost_model: Optional[CryptoCostModel],
                           population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = provisioned_fleet(population, 16, headroom=1.3, cost_model=cost_model)
    # Maximal ISP vs cheap neutralization, blanket endgame allowed: throttle
    # hard, lose the classifier to adoption, go blanket (throttle everything
    # unclassifiable), bleed collateral, back off — the full §3.6 cycle.
    game = AdversaryGame(
        isp=IspStrategy(
            aggressiveness=1.0, allow_blanket=True,
            blanket_evasion=0.6, backoff_collateral=0.25,
        ),
        adoption=AdoptionModel(sensitivity=14.0, adoption_cost=0.03),
    )
    return FluidTimeline(
        population, fleet,
        epochs=72, epoch_seconds=1800.0,
        load=ConstantLoad(1.0),
        adversary=game,
        latency=LatencyModel(),
        latency_slo_seconds=0.08,
    )


def _targeted_class_slo(*, clients: int, seed: int,
                        cost_model: Optional[CryptoCostModel],
                        population: Optional[ClientPopulation] = None) -> FluidTimeline:
    population = population or ClientPopulation(clients, seed=seed)
    fleet = elastic_fleet(population, 24, nominal_sites=16, at_utilization=0.6,
                          cost_model=cost_model)
    model = LatencyModel()
    # A precise classifier throttles video alone while the latency-aware
    # autoscaler keeps the aggregate P95 on target — the throttled class's
    # *exposed* tail is displaced anyway: capacity cannot buy back a
    # policer queue, only neutralization can.
    autoscaler = Autoscaler(
        TargetLatencyPolicy.for_model(model, target_p95_seconds=0.055),
        min_sites=8, warmup_epochs=1, cooldown_epochs=2,
    )
    game = AdversaryGame(
        isp=IspStrategy(
            aggressiveness=0.7, target_classes=("video",),
            classifier=ClassifierModel(true_positive=0.97, false_positive=0.01,
                                       neutralized_leakage=0.03),
            allow_blanket=False,
        ),
        adoption=AdoptionModel(sensitivity=8.0, adoption_cost=0.05),
    )
    return FluidTimeline(
        population, fleet,
        epochs=48, epoch_seconds=3600.0,
        load=DiurnalLoad(trough=0.4, peak=1.1, timezone_spread=0.25),
        autoscaler=autoscaler,
        adversary=game,
        latency=model,
        latency_slo_seconds=0.08,
    )


CATALOGUE: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="flash_crowd",
            title="Flash crowd in two metro regions (6x spike)",
            description="demand in regions 0-1 ramps to 6x nominal, holds six "
                        "hours, and decays; the fleet and the regional uplinks "
                        "shed load max-min fairly",
            build=_flash_crowd,
        ),
        ScenarioSpec(
            name="regional_outage",
            title="Regional outage: 4 of 16 sites fail, then recover",
            description="a quarter of the fleet fails at epoch 8; the hash ring "
                        "remaps exactly the failed sites' clients, recovery at "
                        "epoch 20 restores the old assignment",
            build=_regional_outage,
        ),
        ScenarioSpec(
            name="diurnal_week",
            title="A week of timezone-staggered diurnal load",
            description="168 hourly epochs of day/night sinusoid; the ring never "
                        "changes, and off-peak epochs certify straight from the "
                        "demands vector instead of refilling",
            build=_diurnal_week,
        ),
        ScenarioSpec(
            name="heterogeneous_fleet",
            title="Heterogeneous fleet: metro boxes 3x the edge boxes",
            description="half the fleet carries three quarters of the budget; "
                        "diurnal peaks drive the small edge boxes to their "
                        "knees first",
            build=_heterogeneous_fleet,
        ),
        ScenarioSpec(
            name="cascading_overload",
            title="Cascading overload: degrade-then-fail, four waves",
            description="under a rising ramp, sites are derated then lost one "
                        "wave at a time, concentrating load on fewer survivors",
            build=_cascading_overload,
        ),
        ScenarioSpec(
            name="discrimination_rollout",
            title="Per-region discrimination rollout and repeal",
            description="access ISPs throttle video+web to 30% region by "
                        "region, hold, and repeal — the paper's policy story "
                        "as a fleet-scale transient",
            build=_discrimination_rollout,
        ),
        ScenarioSpec(
            name="autoscaled_diurnal",
            title="Predictive autoscaler riding three diurnal days",
            description="an elastic fleet (16 nominal sites, 8 drained "
                        "spares) tracks the day/night sinusoid under a "
                        "predictive utilization policy: spares warm up ahead "
                        "of the evening peak and drain off overnight, paying "
                        "remap churn for the saved core-hours",
            build=_autoscaled_diurnal,
        ),
        ScenarioSpec(
            name="stochastic_unreliable",
            title="One unlucky month: seeded failures, outages, attacks",
            description="a single draw of the E14 stochastic processes "
                        "(Poisson site failures, a correlated regional "
                        "outage, DoS onsets) against a step-policy "
                        "autoscaler backfilling from the spare pool",
            build=_stochastic_unreliable,
        ),
        ScenarioSpec(
            name="elastic_web_mix",
            title="Elastic web/video vs CBR VoIP through a flash crowd",
            description="TCP-like web and video back off alpha-fairly while "
                        "inelastic VoIP is shed max-min; the latency proxy "
                        "shows the spike as a displaced delay tail, not just "
                        "lost throughput",
            build=_elastic_web_mix,
        ),
        ScenarioSpec(
            name="latency_slo_autoscaled",
            title="Latency-SLO fleet: P95 path delay held on target",
            description="a latency-aware autoscaler inverts the M/G/1-PS "
                        "queueing proxy each epoch to keep the "
                        "client-weighted P95 delay at 55 ms across a "
                        "diurnal day, paying sites for milliseconds",
            build=_latency_slo_autoscaled,
        ),
        ScenarioSpec(
            name="adaptive_throttler",
            title="Adaptive ISP throttling vs neutralizer adoption",
            description="a budget-constrained ISP escalates its video/web "
                        "throttle as evasion grows while per-region "
                        "adoption answers — the E16 game, watched epoch "
                        "by epoch",
            build=_adaptive_throttler,
        ),
        ScenarioSpec(
            name="neutralizer_arms_race",
            title="The full arms race: escalate, blanket, bleed, back off",
            description="a maximally aggressive ISP escalates to the §3.6 "
                        "blanket throttle, cheap adoption floods in, "
                        "collateral forces a retreat; the latency proxy "
                        "tracks the exposed-vs-neutralized tails through "
                        "every phase",
            build=_neutralizer_arms_race,
        ),
        ScenarioSpec(
            name="targeted_class_slo",
            title="Targeted class under a latency SLO: delay as the harm",
            description="a high-precision classifier throttles video only "
                        "while the latency-aware autoscaler holds the "
                        "aggregate P95 on target — the throttled class's "
                        "exposed tail is displaced, its neutralized twin "
                        "is not",
            build=_targeted_class_slo,
        ),
    )
}


def scenario_names() -> List[str]:
    """The catalogue's scenario names, in definition order."""
    return list(CATALOGUE)


def build_scenario(name: str, *, clients: int = 100_000, seed: int = 2006,
                   cost_model: Optional[CryptoCostModel] = None,
                   population: Optional[ClientPopulation] = None,
                   telemetry=None) -> FluidTimeline:
    """Instantiate one named scenario for the given population size.

    ``population`` short-circuits the O(n_clients) population build — a
    campaign running several scenarios over the same clients/seed passes one
    shared :class:`ClientPopulation` instead of re-drawing it per scenario
    (populations are read-only to the timeline, so sharing is safe).
    ``telemetry`` attaches a :class:`repro.scale.telemetry.Telemetry` to the
    built timeline — spans and counters only, never simulation input.
    """
    try:
        spec = CATALOGUE[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; catalogue has {', '.join(CATALOGUE)}"
        ) from None
    timeline = spec(clients=clients, seed=seed, cost_model=cost_model,
                    population=population)
    if telemetry is not None:
        timeline.telemetry = telemetry
    return timeline


def run_scenario(name: str, *, clients: int = 100_000, seed: int = 2006,
                 cost_model: Optional[CryptoCostModel] = None,
                 population: Optional[ClientPopulation] = None,
                 telemetry=None):
    """Build and run one named scenario, returning its TimelineResult."""
    return build_scenario(name, clients=clients, seed=seed,
                          cost_model=cost_model, population=population,
                          telemetry=telemetry).run()
