"""A catalogue of named fleet-scale timeline scenarios.

Each entry is a :class:`ScenarioSpec` that builds a ready-to-run
:class:`repro.scale.timeline.FluidTimeline` for any population size: fleet
capacity is *provisioned relative to the population's nominal demand* (via
:func:`provisioned_fleet`), so "flash crowd saturates the fleet" stays true
whether the catalogue runs with 2,000 clients in a CI smoke job or a million
in the full E13 campaign.

The thirteen stock scenarios cover the transients the steady-state sweep
(E12) hides:

``flash_crowd``
    A 6× demand spike in the two largest metro regions rides up, holds, and
    decays; the fleet sheds load max-min fairly while untouched regions keep
    full service.
``regional_outage``
    A quarter of the sites fail at once (a regional power event), clients
    remap through the consistent-hash ring, survivors absorb the load, and
    recovery returns exactly the old assignment.
``diurnal_week``
    168 hourly epochs of timezone-staggered day/night sinusoid: the
    fast-path showcase — the ring never changes and most epochs are
    certified feasible straight from the demands vector, skipping the fill.
``heterogeneous_fleet``
    Half the fleet is big metro boxes, half small edge boxes, under diurnal
    load; utilization spreads and the small boxes hit their knees first.
``cascading_overload``
    Sites degrade and then fail one after another while demand ramps up —
    each casualty pushes more load onto fewer survivors.
``discrimination_rollout``
    An access-ISP coalition rolls per-region throttling of video/web across
    the regions one epoch at a time, then repeals it — the fluid-model
    rendering of the paper's discrimination story at fleet scale.
``autoscaled_diurnal``
    An elastic fleet with drained spares tracks the diurnal sinusoid under
    a predictive utilization policy — the closed-loop showcase.
``stochastic_unreliable``
    One seeded draw of the E14 stochastic processes (failures, a correlated
    outage, attack onsets) with a step-policy autoscaler backfilling.
``elastic_web_mix``
    The elastic demand mix (TCP-like web and video next to CBR VoIP) rides
    a flash crowd through an undersized fleet: the elastic classes back off
    alpha-fairly where the inelastic VoIP is shed max-min, and the latency
    proxy shows the congestion as a displaced delay tail.
``latency_slo_autoscaled``
    A latency-SLO fleet: the latency-aware autoscaler holds the
    client-weighted P95 path delay on target through a diurnal day while
    the M/G/1-PS proxy records per-epoch delay percentiles and
    SLO-violating client fractions.
``adaptive_throttler``
    A budget-constrained ISP escalates its video/web throttle as evasion
    grows while per-region neutralizer adoption answers — the E16 game at
    its default dispositions, watched epoch by epoch.
``neutralizer_arms_race``
    The full arms race: a maximally aggressive ISP escalates to the §3.6
    blanket move (throttle everything it cannot classify), cheap adoption
    floods in, collateral forces the ISP back off, and the latency proxy
    shows each phase as a moving exposed-vs-neutralized delay tail.
``targeted_class_slo``
    The ROADMAP's "discrimination story measured in delay": a high-precision
    classifier throttles *video only* while a latency-aware autoscaler holds
    the aggregate P95 on target — the throttled class's exposed tail is
    displaced while its neutralized twin and the bystander classes stay on
    the base curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import WorkloadError
from .config import ConfigError, ScenarioConfig, load_config
from .costmodel import CryptoCostModel
from .fleet import FleetSite, NeutralizerFleet
from .population import ClientPopulation
from .timeline import FluidTimeline


def nominal_demand(population: ClientPopulation) -> Tuple[float, float]:
    """The population's nominal busy-instant load: (total bits/s, total packets/s).

    Callers provisioning a fleet turn packets/s into CPU cores through the
    cost model's per-packet data-path price and multiply by their headroom;
    key setups are charged separately by the scenario itself.
    """
    counts = population.class_counts().astype(float)
    pps = population.demand_pps_per_client()
    bits = population.packet_bits()
    total_bps = float((counts * pps * bits).sum())
    total_pps = float((counts * pps).sum())
    return total_bps, total_pps


def provisioned_fleet(
    population: ClientPopulation,
    n_sites: int,
    *,
    headroom: float = 1.3,
    cost_model: Optional[CryptoCostModel] = None,
    heterogeneous: bool = False,
    site_weights: Optional[Tuple[float, ...]] = None,
    tiers: Optional[Tuple[str, ...]] = None,
) -> NeutralizerFleet:
    """A fleet sized to carry ``headroom`` times the population's nominal load.

    Uplinks and CPU budgets are derived from the population's aggregate
    demand, so the same scenario is equally interesting at 2 × 10^3 and
    10^6 clients.  ``heterogeneous=True`` splits the budget 3:1 between big
    metro boxes (the first half) and small edge boxes (the second half)
    instead of evenly; ``site_weights`` gives an arbitrary per-site split
    instead.  ``tiers`` labels each site ``"reserved"`` or ``"spot"`` for the
    provisioning cost model (capacity is tier-blind; only the bill differs).
    """
    if n_sites <= 0:
        raise WorkloadError("a fleet needs at least one site")
    if headroom <= 0:
        raise WorkloadError("fleet headroom must be positive")
    if heterogeneous and site_weights is not None:
        raise WorkloadError("give either heterogeneous or site_weights, not both")
    if site_weights is not None:
        if len(site_weights) != n_sites:
            raise WorkloadError(f"needs exactly {n_sites} site weights")
        if any(weight <= 0 for weight in site_weights):
            raise WorkloadError("site weights must be positive")
    if tiers is not None and len(tiers) != n_sites:
        raise WorkloadError(f"needs exactly {n_sites} site tiers")
    model = cost_model or CryptoCostModel.default()
    total_bps, total_pps = nominal_demand(population)
    total_uplink = total_bps * headroom
    total_cores = total_pps * model.data_packet_cost_seconds * headroom

    weights = list(site_weights) if site_weights is not None else [1.0] * n_sites
    if heterogeneous:
        half = n_sites // 2
        weights = [3.0] * half + [1.0] * (n_sites - half)
    weight_sum = sum(weights)
    sites = [
        FleetSite(
            f"site{i:02d}",
            cores=max(total_cores * weight / weight_sum, 1e-6),
            uplink_bps=max(total_uplink * weight / weight_sum, 1.0),
            tier=tiers[i] if tiers is not None else "reserved",
        )
        for i, weight in enumerate(weights)
    ]
    return NeutralizerFleet(sites, cost_model=model)


@dataclass(frozen=True)
class ScenarioSpec:
    """One catalogue entry: a named, self-describing timeline builder.

    ``config`` is the declarative :class:`~repro.scale.config.ScenarioConfig`
    document the entry was loaded from (``src/repro/scale/catalogue_data/``);
    ``build`` is its bound build method, so every catalogue timeline carries
    the document as ``timeline.config`` and is live-reconfigurable through
    :class:`~repro.scale.config.ConfigTransaction`.
    """

    name: str
    title: str
    description: str
    config: ScenarioConfig
    build: Callable[..., FluidTimeline]

    def __call__(self, *, clients: int = 100_000, seed: int = 2006,
                 cost_model: Optional[CryptoCostModel] = None,
                 population: Optional[ClientPopulation] = None) -> FluidTimeline:
        return self.build(clients=clients, seed=seed, cost_model=cost_model,
                          population=population)


#: Where the scenario documents live; the numeric filename prefix pins the
#: catalogue's definition order (sorted glob == catalogue order).
CATALOGUE_DATA_DIR = Path(__file__).with_name("catalogue_data")


def _load_catalogue() -> Dict[str, ScenarioSpec]:
    specs: Dict[str, ScenarioSpec] = {}
    for path in sorted(CATALOGUE_DATA_DIR.glob("*.json")):
        config = load_config(path)
        if config.name in specs:
            raise ConfigError(
                f"{path.name}: duplicate scenario {config.name!r}")
        specs[config.name] = ScenarioSpec(
            name=config.name,
            title=config.title,
            description=config.description,
            config=config,
            build=config.build,
        )
    if not specs:
        raise ConfigError(f"no scenario documents under {CATALOGUE_DATA_DIR}")
    return specs


CATALOGUE: Dict[str, ScenarioSpec] = _load_catalogue()


def scenario_names() -> List[str]:
    """The catalogue's scenario names, in definition order."""
    return list(CATALOGUE)


def build_scenario(name: str, *, clients: int = 100_000, seed: int = 2006,
                   cost_model: Optional[CryptoCostModel] = None,
                   population: Optional[ClientPopulation] = None,
                   telemetry=None) -> FluidTimeline:
    """Instantiate one named scenario for the given population size.

    ``population`` short-circuits the O(n_clients) population build — a
    campaign running several scenarios over the same clients/seed passes one
    shared :class:`ClientPopulation` instead of re-drawing it per scenario
    (populations are read-only to the timeline, so sharing is safe).
    ``telemetry`` attaches a :class:`repro.scale.telemetry.Telemetry` to the
    built timeline — spans and counters only, never simulation input.
    """
    try:
        spec = CATALOGUE[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; catalogue has {', '.join(CATALOGUE)}",
            field_path="name",
        ) from None
    timeline = spec(clients=clients, seed=seed, cost_model=cost_model,
                    population=population)
    if telemetry is not None:
        timeline.telemetry = telemetry
    return timeline


def run_scenario(name: str, *, clients: int = 100_000, seed: int = 2006,
                 cost_model: Optional[CryptoCostModel] = None,
                 population: Optional[ClientPopulation] = None,
                 telemetry=None):
    """Build and run one named scenario, returning its TimelineResult."""
    return build_scenario(name, clients=clients, seed=seed,
                          cost_model=cost_model, population=population,
                          telemetry=telemetry).run()
