"""The typed operator control plane: one declarative schema per scenario.

Real fleets are not rebuilt from python constructors — they are *operated*:
described in a validated configuration document, reconfigured live through
transactions that either commit atomically or roll back, and diffed so every
change is reviewable.  This module brings that discipline (the YANG/NETCONF
shape of the operations literature in PAPERS.md) to ``repro.scale``:

:class:`ScenarioConfig`
    One document describing a whole scenario — population, fleet (including
    heterogeneous site weights and spot-vs-reserved cost tiers), load curve,
    fleet events, stochastic processes, autoscaler, adversary game, latency
    proxy — serializable to/from plain JSON data files.  The 13 catalogue
    scenarios under ``src/repro/scale/catalogue_data/`` are exactly these
    documents; building one yields a :class:`~repro.scale.timeline.FluidTimeline`
    byte-identical (via ``canonical_result_bytes``) to the former python
    builders.
:class:`ConfigError`
    Every schema violation carries a precise ``field_path``
    (``"autoscaler.policy.lead_epochs"``), so tools and the future campaign
    service can render diagnostics instead of a bare string.
:class:`ConfigTransaction`
    The reconfiguration engine: stage a changed document against a running
    timeline, ``diff()`` it, ``commit()`` it — which validates the whole
    document, maps the diff onto a whitelist of live-reconfigurable fields,
    and schedules a single atomic :class:`~repro.scale.timeline.ReconfigEvent`
    at an epoch boundary — or ``rollback()`` to the base document.  Diffs
    touching anything outside the whitelist are rejected with the offending
    field path and leave the timeline untouched.

The (de)serializer is a generic dataclass codec: the schema *is* the
existing typed, validated dataclasses (load curves, fleet events, autoscale
policies, stochastic processes, the adversary game), walked through their
type hints, with polymorphic families dispatched on an explicit ``kind``
tag.  Unknown fields, wrong types, and failed ``__post_init__`` validators
all surface as :class:`ConfigError` with the full path.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ReproError, WorkloadError
from .adversary import AdoptionModel, AdversaryGame, ClassifierModel, IspStrategy
from .autoscale import (
    Autoscaler,
    AutoscalePolicy,
    PredictiveLoadPolicy,
    StepPolicy,
    TargetLatencyPolicy,
    TargetUtilizationPolicy,
)
from .costmodel import CryptoCostModel, ProvisioningCostModel
from .fleet import FleetSite, NeutralizerFleet
from .latency import LatencyModel
from .population import ClientPopulation, elastic_mix
from .stochastic import (
    AttackOnset,
    CorrelatedRegionalOutage,
    EventProcess,
    PoissonSiteFailures,
)
from .timeline import (
    CapacityDegradation,
    CompositeLoad,
    ConstantLoad,
    DiscriminationToggle,
    DiurnalLoad,
    FlashCrowdLoad,
    FleetEvent,
    FluidTimeline,
    LinearRampLoad,
    LoadCurve,
    ReconfigEvent,
    SiteFailure,
    SiteRecovery,
)

SCHEMA_VERSION = 1

#: Site cost tiers the provisioning model distinguishes.
SITE_TIERS = ("reserved", "spot")


class ConfigError(WorkloadError):
    """A schema violation, annotated with the offending field path.

    Subclasses :class:`~repro.exceptions.WorkloadError` so existing callers
    catching workload errors keep working; ``field_path`` is the dotted
    (and ``[i]``-indexed) location inside the document, e.g.
    ``"autoscaler.policy.lead_epochs"`` or ``"fleet.sites[3].tier"``.
    """

    def __init__(self, message: str, *, field_path: str = "") -> None:
        self.field_path = field_path
        self.bare_message = message
        if field_path:
            message = f"{field_path}: {message}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Polymorphic families: dispatched on an explicit "kind" tag
# ---------------------------------------------------------------------------

_LOAD_KINDS: Dict[str, type] = {
    "constant": ConstantLoad,
    "diurnal": DiurnalLoad,
    "flash_crowd": FlashCrowdLoad,
    "linear_ramp": LinearRampLoad,
    "composite": CompositeLoad,
}
_EVENT_KINDS: Dict[str, type] = {
    "site_failure": SiteFailure,
    "site_recovery": SiteRecovery,
    "capacity_degradation": CapacityDegradation,
    "discrimination_toggle": DiscriminationToggle,
}
_POLICY_KINDS: Dict[str, type] = {
    "target_utilization": TargetUtilizationPolicy,
    "step": StepPolicy,
    "predictive_load": PredictiveLoadPolicy,
    "target_latency": TargetLatencyPolicy,
}
_PROCESS_KINDS: Dict[str, type] = {
    "poisson_site_failures": PoissonSiteFailures,
    "correlated_regional_outage": CorrelatedRegionalOutage,
    "attack_onset": AttackOnset,
}

#: Abstract base -> kind registry, for decode dispatch.
_FAMILIES: Dict[type, Dict[str, type]] = {
    LoadCurve: _LOAD_KINDS,
    FleetEvent: _EVENT_KINDS,
    AutoscalePolicy: _POLICY_KINDS,
    EventProcess: _PROCESS_KINDS,
}
#: Concrete class -> kind tag, for encode.
_KIND_OF: Dict[type, str] = {
    cls: kind for registry in _FAMILIES.values() for kind, cls in registry.items()
}


# ---------------------------------------------------------------------------
# The generic dataclass codec
# ---------------------------------------------------------------------------


def _join(path: str, name: str) -> str:
    return f"{path}.{name}" if path else name


def _encode(value):
    """A dataclass tree as JSON-ready plain data (kind tags included)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, object] = {}
        kind = _KIND_OF.get(type(value))
        if kind is not None:
            out["kind"] = kind
        for item in dataclasses.fields(value):
            out[item.name] = _encode(getattr(value, item.name))
        return out
    raise ConfigError(f"cannot serialize a {type(value).__name__}")


def _expected(hint) -> str:
    return getattr(hint, "__name__", None) or str(hint)


def _decode(hint, data, path: str):
    """Plain data back into the hinted type, strictly, with path errors."""
    origin = typing.get_origin(hint)
    if origin is typing.Union:
        members = [arg for arg in typing.get_args(hint) if arg is not type(None)]
        if data is None:
            if len(members) < len(typing.get_args(hint)):
                return None
            raise ConfigError("may not be null", field_path=path)
        if len(members) == 1:
            return _decode(members[0], data, path)
        raise ConfigError(f"unsupported union {hint}", field_path=path)
    if origin in (tuple, Tuple):
        args = typing.get_args(hint)
        if not isinstance(data, list):
            raise ConfigError("expected a list", field_path=path)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(
                _decode(args[0], item, f"{path}[{index}]")
                for index, item in enumerate(data)
            )
        raise ConfigError(f"unsupported tuple hint {hint}", field_path=path)
    if hint is bool:
        if not isinstance(data, bool):
            raise ConfigError("expected a boolean", field_path=path)
        return data
    if hint is int:
        if isinstance(data, bool) or not isinstance(data, int):
            raise ConfigError("expected an integer", field_path=path)
        return data
    if hint is float:
        if isinstance(data, bool) or not isinstance(data, (int, float)):
            raise ConfigError("expected a number", field_path=path)
        return float(data)
    if hint is str:
        if not isinstance(data, str):
            raise ConfigError("expected a string", field_path=path)
        return data
    if hint is np.ndarray:
        if not isinstance(data, list):
            raise ConfigError("expected a (nested) list matrix", field_path=path)
        return np.asarray(data, dtype=np.float64)
    if isinstance(hint, type) and hint in _FAMILIES:
        registry = _FAMILIES[hint]
        if not isinstance(data, dict):
            raise ConfigError("expected an object with a 'kind' tag",
                              field_path=path)
        kind = data.get("kind")
        if not isinstance(kind, str) or kind not in registry:
            known = ", ".join(sorted(registry))
            raise ConfigError(
                f"unknown kind {kind!r}; expected one of {known}",
                field_path=_join(path, "kind"),
            )
        body = {key: item for key, item in data.items() if key != "kind"}
        return _decode_dataclass(registry[kind], body, path)
    if isinstance(hint, type) and dataclasses.is_dataclass(hint):
        if not isinstance(data, dict):
            raise ConfigError(f"expected a {hint.__name__} object", field_path=path)
        return _decode_dataclass(hint, data, path)
    raise ConfigError(f"unsupported schema type {_expected(hint)}", field_path=path)


def _decode_dataclass(cls: type, data: Dict[str, object], path: str):
    hints = typing.get_type_hints(cls)
    known = {item.name: item for item in dataclasses.fields(cls)}
    for key in data:
        if key not in known:
            raise ConfigError(
                f"unknown field (schema {cls.__name__} has: "
                f"{', '.join(known)})",
                field_path=_join(path, str(key)),
            )
    kwargs: Dict[str, object] = {}
    for name, item in known.items():
        if name in data:
            kwargs[name] = _decode(hints[name], data[name], _join(path, name))
        elif (item.default is dataclasses.MISSING
              and item.default_factory is dataclasses.MISSING):
            raise ConfigError("missing required field", field_path=_join(path, name))
    try:
        return cls(**kwargs)
    except ConfigError as exc:
        # A nested validator raises with a path relative to its own object;
        # re-anchor it at this object's position in the document.
        raise ConfigError(exc.bare_message,
                          field_path=_join(path, exc.field_path)
                          if exc.field_path else path) from exc
    except ReproError as exc:
        raise ConfigError(str(exc), field_path=path or cls.__name__) from exc


# ---------------------------------------------------------------------------
# Document sections
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PopulationSpec:
    """How the client population is drawn (size and seed come at build time)."""

    #: Demand-class mix: ``"default"`` (CBR-shaped) or ``"elastic"``
    #: (TCP-like web/video next to CBR VoIP).
    mix: str = "default"
    regions: int = 8

    def __post_init__(self) -> None:
        if self.mix not in ("default", "elastic"):
            raise ConfigError("mix must be 'default' or 'elastic'",
                              field_path="mix")
        if self.regions < 1:
            raise ConfigError("needs at least one region", field_path="regions")

    def build(self, clients: int, seed: int,
              shared: Optional[ClientPopulation]) -> ClientPopulation:
        if self.mix == "elastic":
            # A non-default mix changes the class structure, so a shared
            # default-mix population cannot be reused (matching the former
            # elastic_web_mix builder).
            return ClientPopulation(clients, mix=elastic_mix(),
                                    regions=self.regions, seed=seed)
        if shared is not None:
            return shared
        return ClientPopulation(clients, regions=self.regions, seed=seed)


@dataclass(frozen=True)
class SiteSpec:
    """One explicitly described neutralizer site."""

    name: str
    cores: float
    uplink_bps: float
    tier: str = "reserved"
    active: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("site needs a name", field_path="name")
        if self.cores <= 0:
            raise ConfigError("cores must be positive", field_path="cores")
        if self.uplink_bps <= 0:
            raise ConfigError("uplink must be positive", field_path="uplink_bps")
        if self.tier not in SITE_TIERS:
            raise ConfigError(f"tier must be one of {', '.join(SITE_TIERS)}",
                              field_path="tier")


@dataclass(frozen=True)
class FleetSpec:
    """The fleet: generated relative to the population, or explicit sites.

    ``mode="provisioned"`` sizes ``n_sites`` for ``headroom`` times nominal
    demand (optionally heterogeneous 3:1, or with explicit ``site_weights``);
    ``mode="elastic"`` builds ``max_sites`` homogeneous sites of which
    ``nominal_sites`` start active (autoscaler spares drained);
    ``mode="explicit"`` lists every site.  ``tiers`` labels generated sites
    spot vs reserved (per-site, in site order); ``active_sites`` overrides
    which sites start active — the field live region-add/drain transactions
    edit.
    """

    mode: str = "provisioned"
    n_sites: int = 16
    headroom: float = 1.3
    heterogeneous: bool = False
    site_weights: Optional[Tuple[float, ...]] = None
    max_sites: int = 0
    nominal_sites: int = 0
    at_utilization: float = 0.65
    sites: Tuple[SiteSpec, ...] = ()
    tiers: Optional[Tuple[str, ...]] = None
    active_sites: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.mode not in ("provisioned", "elastic", "explicit"):
            raise ConfigError(
                "mode must be 'provisioned', 'elastic' or 'explicit'",
                field_path="mode")
        if self.mode == "provisioned":
            if self.n_sites < 1:
                raise ConfigError("needs at least one site", field_path="n_sites")
            if self.headroom <= 0:
                raise ConfigError("headroom must be positive",
                                  field_path="headroom")
            if self.site_weights is not None:
                if self.heterogeneous:
                    raise ConfigError(
                        "give either heterogeneous or site_weights, not both",
                        field_path="site_weights")
                if len(self.site_weights) != self.n_sites:
                    raise ConfigError(
                        f"needs exactly n_sites={self.n_sites} weights",
                        field_path="site_weights")
                if any(weight <= 0 for weight in self.site_weights):
                    raise ConfigError("weights must be positive",
                                      field_path="site_weights")
        elif self.mode == "elastic":
            if self.max_sites < 1 or not 0 < self.nominal_sites <= self.max_sites:
                raise ConfigError(
                    "needs 0 < nominal_sites <= max_sites",
                    field_path="nominal_sites")
            if not 0 < self.at_utilization <= 1:
                raise ConfigError("must be in (0, 1]", field_path="at_utilization")
        else:
            if not self.sites:
                raise ConfigError("explicit mode needs at least one site",
                                  field_path="sites")
            names = [site.name for site in self.sites]
            if len(set(names)) != len(names):
                raise ConfigError("site names must be unique", field_path="sites")
            if self.tiers is not None:
                raise ConfigError(
                    "explicit sites carry their own tier field",
                    field_path="tiers")
        if self.tiers is not None:
            if len(self.tiers) != len(self.site_names()):
                raise ConfigError("needs one tier per site", field_path="tiers")
            bad = [tier for tier in self.tiers if tier not in SITE_TIERS]
            if bad:
                raise ConfigError(
                    f"unknown tier {bad[0]!r}; use one of {', '.join(SITE_TIERS)}",
                    field_path="tiers")
        if self.active_sites is not None:
            if not self.active_sites:
                raise ConfigError("at least one site must stay active",
                                  field_path="active_sites")
            known = set(self.site_names())
            unknown = [name for name in self.active_sites if name not in known]
            if unknown:
                raise ConfigError(f"unknown site {unknown[0]!r}",
                                  field_path="active_sites")
            if len(set(self.active_sites)) != len(self.active_sites):
                raise ConfigError("duplicate site name", field_path="active_sites")

    def site_names(self) -> List[str]:
        """Every site's name (generated modes use ``siteNN``), in site order."""
        if self.mode == "explicit":
            return [site.name for site in self.sites]
        count = self.n_sites if self.mode == "provisioned" else self.max_sites
        return [f"site{index:02d}" for index in range(count)]

    def resolved_active(self) -> List[str]:
        """Which sites start active, after the ``active_sites`` override."""
        if self.active_sites is not None:
            ordered = set(self.active_sites)
            return [name for name in self.site_names() if name in ordered]
        if self.mode == "explicit":
            return [site.name for site in self.sites if site.active]
        if self.mode == "elastic":
            return self.site_names()[: self.nominal_sites]
        return self.site_names()

    def build(self, population: ClientPopulation,
              cost_model: Optional[CryptoCostModel]) -> NeutralizerFleet:
        from .autoscale import elastic_fleet
        from .catalogue import provisioned_fleet

        if self.mode == "provisioned":
            fleet = provisioned_fleet(
                population, self.n_sites, headroom=self.headroom,
                cost_model=cost_model, heterogeneous=self.heterogeneous,
                site_weights=self.site_weights, tiers=self.tiers,
            )
        elif self.mode == "elastic":
            fleet = elastic_fleet(
                population, self.max_sites, nominal_sites=self.nominal_sites,
                at_utilization=self.at_utilization, cost_model=cost_model,
            )
            if self.tiers is not None:
                for site, tier in zip(fleet.sites, self.tiers):
                    site.tier = tier
        else:
            sites = [
                FleetSite(site.name, cores=site.cores, uplink_bps=site.uplink_bps,
                          active=site.active, tier=site.tier)
                for site in self.sites
            ]
            fleet = NeutralizerFleet(
                sites, cost_model=cost_model or CryptoCostModel.default()
            )
        if self.active_sites is not None:
            want = set(self.active_sites)
            # Activations first so drains can never empty the ring mid-way.
            for site in fleet.sites:
                if site.name in want and not site.active:
                    fleet.activate_site(site.name)
            for site in fleet.sites:
                if site.name not in want and site.active:
                    fleet.drain_site(site.name)
        return fleet


@dataclass(frozen=True)
class ScenarioConfig:
    """One scenario as a single declarative, serializable document."""

    name: str
    title: str = ""
    description: str = ""
    schema_version: int = SCHEMA_VERSION
    population: PopulationSpec = field(default_factory=PopulationSpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    epochs: int = 24
    epoch_seconds: float = 3600.0
    load: LoadCurve = field(default_factory=ConstantLoad)
    events: Tuple[FleetEvent, ...] = ()
    #: Stochastic processes compiled to fleet events at build time with the
    #: build seed (one draw over the timeline's horizon).
    stochastic: Tuple[EventProcess, ...] = ()
    autoscaler: Optional[Autoscaler] = None
    adversary: Optional[AdversaryGame] = None
    latency: Optional[LatencyModel] = None
    latency_slo_seconds: float = 0.1
    provisioning: Optional[ProvisioningCostModel] = None
    #: Regional access-uplink capacity: absolute bits/s, or a fraction of
    #: the population's nominal total demand (at most one of the two).
    region_uplink_bps: Optional[float] = None
    region_uplink_nominal_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario needs a name", field_path="name")
        if self.schema_version != SCHEMA_VERSION:
            raise ConfigError(
                f"unsupported schema version (this build reads "
                f"{SCHEMA_VERSION})", field_path="schema_version")
        if self.epochs < 1:
            raise ConfigError("needs at least one epoch", field_path="epochs")
        if self.epoch_seconds <= 0:
            raise ConfigError("must be positive", field_path="epoch_seconds")
        if self.latency_slo_seconds <= 0:
            raise ConfigError("must be positive", field_path="latency_slo_seconds")
        if (self.region_uplink_bps is not None
                and self.region_uplink_nominal_fraction is not None):
            raise ConfigError(
                "give region_uplink_bps or region_uplink_nominal_fraction, "
                "not both", field_path="region_uplink_bps")
        if self.region_uplink_bps is not None and self.region_uplink_bps <= 0:
            raise ConfigError("must be positive", field_path="region_uplink_bps")
        if (self.region_uplink_nominal_fraction is not None
                and self.region_uplink_nominal_fraction <= 0):
            raise ConfigError("must be positive",
                              field_path="region_uplink_nominal_fraction")

    # -- (de)serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The document as JSON-ready plain data (full field emission)."""
        return _encode(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioConfig":
        """Strictly decode a document; unknown fields fail with their path."""
        if not isinstance(data, dict):
            raise ConfigError("a scenario document must be an object")
        return _decode_dataclass(cls, data, "")

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- building --------------------------------------------------------------------

    def build(self, *, clients: int = 100_000, seed: int = 2006,
              cost_model: Optional[CryptoCostModel] = None,
              population: Optional[ClientPopulation] = None) -> FluidTimeline:
        """A ready-to-run timeline; the document rides along as ``.config``."""
        from .catalogue import nominal_demand
        from .stochastic import compile_events

        built = self.population.build(clients, seed, population)
        fleet = self.fleet.build(built, cost_model)
        events: List[FleetEvent] = list(self.events)
        if self.stochastic:
            events += compile_events(
                self.stochastic, seed=seed, epochs=self.epochs,
                site_names=[site.name for site in fleet.sites],
            )
        region_uplink: Optional[float] = self.region_uplink_bps
        if self.region_uplink_nominal_fraction is not None:
            total_bps, _ = nominal_demand(built)
            region_uplink = total_bps * self.region_uplink_nominal_fraction
        timeline = FluidTimeline(
            built, fleet,
            epochs=self.epochs,
            epoch_seconds=self.epoch_seconds,
            load=self.load,
            events=events,
            region_uplink_bps=region_uplink,
            autoscaler=self.autoscaler,
            provisioning_cost=self.provisioning,
            latency=self.latency,
            latency_slo_seconds=self.latency_slo_seconds,
            adversary=self.adversary,
        )
        timeline.config = self
        return timeline


def load_config(path) -> ScenarioConfig:
    """Read one scenario document from a JSON data file."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        return ScenarioConfig.from_json(text)
    except ConfigError as exc:
        raise ConfigError(f"{path}: {exc}", field_path=exc.field_path) from exc


def dump_config(config: ScenarioConfig, path) -> None:
    """Write one scenario document as a JSON data file."""
    Path(path).write_text(config.to_json(), encoding="utf-8")


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldChange:
    """One changed leaf (or atomically swapped subtree) between documents."""

    path: str
    before: object
    after: object

    def __str__(self) -> str:
        return f"{self.path}: {self.before!r} -> {self.after!r}"


def _diff_value(before, after, path: str, out: List[FieldChange]) -> None:
    if isinstance(before, dict) and isinstance(after, dict):
        # A polymorphic object that changed kind is one atomic swap, not a
        # field-by-field merge of two unrelated schemas.
        if before.get("kind") != after.get("kind"):
            out.append(FieldChange(path, before, after))
            return
        for key in sorted(set(before) | set(after)):
            child = _join(path, str(key))
            if key not in before:
                out.append(FieldChange(child, None, after[key]))
            elif key not in after:
                out.append(FieldChange(child, before[key], None))
            else:
                _diff_value(before[key], after[key], child, out)
        return
    if isinstance(before, list) and isinstance(after, list):
        if len(before) != len(after):
            out.append(FieldChange(path, before, after))
            return
        for index, (left, right) in enumerate(zip(before, after)):
            _diff_value(left, right, f"{path}[{index}]", out)
        return
    if before != after:
        out.append(FieldChange(path, before, after))


def diff_configs(base: ScenarioConfig,
                 changed: ScenarioConfig) -> Tuple[FieldChange, ...]:
    """Every changed field path between two documents, sorted by path."""
    out: List[FieldChange] = []
    _diff_value(base.to_dict(), changed.to_dict(), "", out)
    return tuple(out)


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

#: Document paths a committed transaction may change on a *running*
#: timeline.  Anything else describes structure the run already froze
#: (population draw, fleet sizing, horizon...) and is rejected with its path.
_RECONFIGURABLE_PREFIXES = (
    "autoscaler.policy",
    "autoscaler.min_sites",
    "autoscaler.max_sites",
    "fleet.active_sites",
    "adversary.adoption.",
)
#: Cosmetic paths a transaction may change without any runtime effect.
_COSMETIC_PREFIXES = ("title", "description")


def _is_active_flag(path: str) -> bool:
    """Whether a path is an explicit site's ``active`` flag."""
    return (path.startswith("fleet.sites[") and path.endswith("].active"))


class ConfigTransaction:
    """Validate -> diff -> commit/rollback reconfiguration of a live timeline.

    The timeline must carry a :class:`ScenarioConfig` (``timeline.config``,
    set by :meth:`ScenarioConfig.build` and the catalogue).  ``set()`` edits
    the staged document by field path, ``stage()`` replaces it wholesale;
    ``commit()`` validates the staged document, maps the diff onto the
    live-reconfigurable whitelist, and schedules one atomic
    :class:`~repro.scale.timeline.ReconfigEvent` at ``at_epoch`` — or raises
    :class:`ConfigError` with the offending field path, leaving the timeline
    untouched.  ``rollback()`` undoes a commit (or discards staged edits),
    so commit -> rollback -> commit converges on the same scheduled state.
    """

    def __init__(self, timeline: FluidTimeline, *, at_epoch: int) -> None:
        base = getattr(timeline, "config", None)
        if base is None:
            raise ConfigError(
                "the timeline carries no ScenarioConfig; build it from a "
                "config (ScenarioConfig.build or the catalogue) to "
                "reconfigure it")
        if not 0 <= at_epoch < timeline.epochs:
            raise ConfigError(
                f"must be an epoch boundary in [0, {timeline.epochs})",
                field_path="at_epoch")
        self.timeline = timeline
        self.at_epoch = int(at_epoch)
        self.base: ScenarioConfig = base
        self._staged: Dict[str, object] = base.to_dict()
        self._committed_event: Optional[ReconfigEvent] = None
        self._committed_config: Optional[ScenarioConfig] = None

    # -- staging ---------------------------------------------------------------------

    def stage(self, config: ScenarioConfig) -> None:
        """Replace the staged document wholesale."""
        if self._committed_event is not None:
            raise ConfigError("transaction already committed; roll back first")
        self._staged = config.to_dict()

    def set(self, path: str, value: object) -> None:
        """Edit one staged field by path (e.g. ``autoscaler.min_sites``).

        The value is plain data (as in the serialized document).  Setting an
        unknown field is allowed here and rejected — with the path — when the
        document is next validated (``staged_config``, ``diff``, ``commit``).
        """
        if self._committed_event is not None:
            raise ConfigError("transaction already committed; roll back first")
        container, key = self._resolve(path)
        container[key] = _encode_plain(value)

    def _resolve(self, path: str):
        """The (container, final key) a path addresses in the staged dict."""
        if not path:
            raise ConfigError("empty field path")
        node: object = self._staged
        parts: List[object] = []
        for segment in path.split("."):
            name, indices = _split_indices(segment, path)
            parts.append(name)
            parts.extend(indices)
        for step in parts[:-1]:
            if isinstance(step, str):
                if not isinstance(node, dict) or step not in node:
                    raise ConfigError("no such field on the staged document",
                                      field_path=path)
                node = node[step]
            else:
                if not isinstance(node, list) or not 0 <= step < len(node):
                    raise ConfigError("index out of range", field_path=path)
                node = node[step]
        last = parts[-1]
        if isinstance(last, str):
            if not isinstance(node, dict):
                raise ConfigError("cannot set a field through a non-object",
                                  field_path=path)
        else:
            if not isinstance(node, list) or not 0 <= last < len(node):
                raise ConfigError("index out of range", field_path=path)
        return node, last

    def staged_config(self) -> ScenarioConfig:
        """The staged document, schema-validated."""
        return ScenarioConfig.from_dict(self._staged)

    def diff(self) -> Tuple[FieldChange, ...]:
        """Validate the staged document and diff it against the base."""
        return diff_configs(self.base, self.staged_config())

    # -- commit / rollback -----------------------------------------------------------

    def commit(self) -> Tuple[FieldChange, ...]:
        """Atomically schedule the staged changes at the epoch boundary.

        Returns the committed diff (empty for a no-op, which schedules
        nothing — bit-identical to never opening the transaction).  Raises
        :class:`ConfigError` without touching the timeline if the staged
        document is invalid or the diff leaves the reconfigurable whitelist.
        """
        if self._committed_event is not None:
            raise ConfigError("transaction already committed; roll back first")
        changed = self.staged_config()
        changes = diff_configs(self.base, changed)
        if not changes:
            return ()
        event = self._plan_event(changed, changes)
        if event is not None:
            self.timeline.schedule_event(event)
        self.timeline.config = changed
        self._committed_event = event
        self._committed_config = changed
        return changes

    def rollback(self) -> None:
        """Undo the commit (if any) and reset the staged document to base."""
        if self._committed_event is not None:
            self.timeline.unschedule_event(self._committed_event)
        if self._committed_config is not None:
            self.timeline.config = self.base
        self._committed_event = None
        self._committed_config = None
        self._staged = self.base.to_dict()

    def _plan_event(self, changed: ScenarioConfig,
                    changes: Tuple[FieldChange, ...]) -> Optional[ReconfigEvent]:
        """Map a validated diff onto one atomic reconfig event (or reject)."""
        policy = None
        min_sites = None
        max_sites = None
        adoption = None
        active_changed = False
        cosmetic_only = True
        for change in changes:
            path = change.path
            if any(path == prefix or path.startswith(prefix + ".")
                   for prefix in _COSMETIC_PREFIXES):
                continue
            cosmetic_only = False
            if path.startswith("autoscaler.policy"):
                if self.base.autoscaler is None or changed.autoscaler is None:
                    raise ConfigError(
                        "cannot add or remove the autoscaler mid-run",
                        field_path=path)
                policy = changed.autoscaler.policy
            elif path == "autoscaler.min_sites":
                min_sites = changed.autoscaler.min_sites
            elif path == "autoscaler.max_sites":
                max_sites = changed.autoscaler.max_sites
            elif path == "fleet.active_sites" or _is_active_flag(path):
                active_changed = True
            elif path.startswith("adversary.adoption."):
                adoption = changed.adversary.adoption
            else:
                editable = ", ".join(_RECONFIGURABLE_PREFIXES)
                raise ConfigError(
                    f"not reconfigurable on a running timeline "
                    f"(live-editable fields: {editable} and "
                    f"fleet.sites[i].active)", field_path=path)
        if cosmetic_only:
            return None
        if (policy is not None or min_sites is not None
                or max_sites is not None) and self.base.autoscaler is None:
            raise ConfigError("the running timeline has no autoscaler",
                              field_path="autoscaler")
        if adoption is not None and self.base.adversary is None:
            raise ConfigError("the running timeline has no adversary game",
                              field_path="adversary.adoption")
        activate: Tuple[str, ...] = ()
        drain: Tuple[str, ...] = ()
        if active_changed:
            before = set(self.base.fleet.resolved_active())
            after = set(changed.fleet.resolved_active())
            activate = tuple(sorted(after - before))
            drain = tuple(sorted(before - after))
        return ReconfigEvent(
            self.at_epoch,
            policy=policy,
            min_sites=min_sites,
            max_sites=max_sites,
            activate_sites=activate,
            drain_sites=drain,
            adoption=adoption,
        )


def _encode_plain(value):
    """Accept either plain data or schema dataclasses in ``set()`` values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _encode(value)
    if isinstance(value, (list, tuple)):
        return [_encode_plain(item) for item in value]
    return value


def _split_indices(segment: str, path: str) -> Tuple[str, List[int]]:
    """``"sites[3]"`` -> ``("sites", [3])``; plain names pass through."""
    name, _, rest = segment.partition("[")
    indices: List[int] = []
    while rest:
        digits, bracket, rest = rest.partition("]")
        if not bracket or not digits.lstrip("-").isdigit():
            raise ConfigError("malformed index", field_path=path)
        indices.append(int(digits))
        if rest.startswith("["):
            rest = rest[1:]
        elif rest:
            raise ConfigError("malformed index", field_path=path)
    if not name:
        raise ConfigError("malformed field path", field_path=path)
    return name, indices
