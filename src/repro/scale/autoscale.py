"""Closed-loop autoscaling of the neutralizer fleet.

The paper's scaling story (§4 of the HotNets paper: per-box crypto cost ×
anycast spread) is usually read as a *static* provisioning exercise; this
module closes the loop instead.  A fleet is built with spare, drained sites
(:func:`elastic_fleet`), and each epoch of a
:class:`repro.scale.timeline.FluidTimeline` run the controller observes the
previous epoch's utilization and commissions or drains sites through the
consistent-hash ring — paying real churn (remapped clients re-do key setup)
and real dollars (:class:`repro.scale.costmodel.ProvisioningCostModel`) for
every decision.

Three stock policies cover the classic control shapes:

:class:`TargetUtilizationPolicy`
    Proportional control toward a utilization set point, with a deadband so
    steady load does not flap.
:class:`StepPolicy`
    Threshold/hysteresis control: step up above ``high``, step down below
    ``low``, hold inside the band.
:class:`PredictiveLoadPolicy`
    Feed-forward from the scenario's load curve: scales the observed
    utilization by the forecast demand ``lead_epochs`` ahead, so capacity
    lands when the diurnal peak does rather than one warm-up late.
:class:`TargetLatencyPolicy`
    Set-point control on the *latency SLO itself*: inverts the queueing
    proxy of :mod:`repro.scale.latency` to find the utilization at which
    the observed P95 path delay would sit on target, and sizes the fleet
    for it.

The split between :class:`Autoscaler` (the frozen configuration: policy,
bounds, warm-up and cooldown) and :class:`AutoscaleRun` (the mutable per-run
state: the warming queue, the activation order, the cooldown clock) keeps
timelines re-runnable — ``FluidTimeline.run()`` builds a fresh
:class:`AutoscaleRun` every time, exactly as it restores fleet health.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from ..exceptions import WorkloadError
from .costmodel import CryptoCostModel
from .fleet import FleetSite, NeutralizerFleet
from .population import ClientPopulation
from .telemetry import NULL, Telemetry

#: A demand forecast: offered-demand multiplier (1.0 = the population's
#: nominal busy instant) ``lead`` epochs ahead of the current one.
Forecast = Callable[[int], float]


@dataclass(frozen=True)
class EpochMetrics:
    """The solved operating point of one epoch, as the controller measures it.

    Produced by the timeline after every solve and consumed one epoch later
    (real controllers read yesterday's telemetry too).  Utilization is the
    per-site max of CPU and uplink load, summarized over the
    ``served_sites`` that were actually in service when it was measured.
    """

    served_sites: int
    mean_utilization: float
    peak_utilization: float
    delivered_fraction: float
    #: Offered demand relative to the population's nominal busy instant.
    demand_multiplier: float
    #: Client-weighted P95 path delay of the measured epoch (0.0 when the
    #: timeline runs without a latency model).
    latency_p95_seconds: float = 0.0
    #: Neutralizer-adoption fraction in effect in the measured epoch (0.0
    #: without an adversary game) — adoption waves bring key-setup load, so
    #: capacity policies may want to see them coming.
    adoption_fraction: float = 0.0


@dataclass(frozen=True)
class AutoscaleObservation:
    """What a policy decides from: lagged measurements plus current commitment.

    ``served_sites`` and the utilizations describe the *previous* epoch's
    operating point (the basis for inverting toward a utilization target);
    ``committed`` is the *current* paid-for fleet — in-service plus warming —
    which is what "hold" decisions should return, so capacity already on its
    way is not ordered twice.
    """

    epoch: int
    #: Sites that served the measured epoch (basis of the utilizations).
    served_sites: int
    #: Sites currently paid for: in service plus warming.
    committed: int
    #: Mean over serving sites of max(CPU, uplink) utilization.
    mean_utilization: float
    #: Max over serving sites of max(CPU, uplink) utilization.
    peak_utilization: float
    delivered_fraction: float
    #: Offered demand relative to the population's nominal busy instant.
    demand_multiplier: float
    #: Client-weighted P95 path delay of the measured epoch (0.0 = no
    #: latency model; latency-aware policies must hold in that case).
    latency_p95_seconds: float = 0.0
    #: Neutralizer-adoption fraction of the measured epoch (0.0 = no
    #: adversary game running).
    adoption_fraction: float = 0.0


class AutoscalePolicy:
    """Strategy interface: how many sites should be committed next epoch."""

    def desired_sites(self, observation: AutoscaleObservation,
                      forecast: Forecast) -> int:
        """Target committed-site count (clamped to bounds by the engine)."""
        raise NotImplementedError


@dataclass(frozen=True)
class TargetUtilizationPolicy(AutoscalePolicy):
    """Drive mean utilization toward ``target``, ignoring a ``deadband``.

    The set-point inversion ``in_service × utilization / target`` is exact
    for the homogeneous fleets :func:`elastic_fleet` builds (consistent
    hashing spreads clients near-uniformly); the deadband keeps steady load
    from flapping one site up and down around the fixed point.
    """

    target: float = 0.6
    deadband: float = 0.08

    def __post_init__(self) -> None:
        if not 0 < self.target <= 1:
            raise WorkloadError("utilization target must be in (0, 1]")
        if not 0 <= self.deadband < self.target:
            raise WorkloadError("deadband must be non-negative and below the target")

    def desired_sites(self, observation: AutoscaleObservation,
                      forecast: Forecast) -> int:
        utilization = observation.mean_utilization
        if abs(utilization - self.target) <= self.deadband:
            return observation.committed
        return math.ceil(observation.served_sites * utilization / self.target)


@dataclass(frozen=True)
class StepPolicy(AutoscalePolicy):
    """Hysteresis control: ``step`` up above ``high``, down below ``low``.

    The band between the thresholds is the hysteresis that keeps the fleet
    from oscillating when load sits near one threshold; peak (not mean)
    utilization is used so a single hot site is enough to trigger growth.
    """

    high: float = 0.8
    low: float = 0.35
    step: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.low < self.high:
            raise WorkloadError("step policy needs 0 <= low < high")
        if self.step < 1:
            raise WorkloadError("step size must be at least one site")

    def desired_sites(self, observation: AutoscaleObservation,
                      forecast: Forecast) -> int:
        if observation.peak_utilization > self.high:
            return observation.committed + self.step
        if observation.peak_utilization < self.low:
            return observation.committed - self.step
        return observation.committed


@dataclass(frozen=True)
class PredictiveLoadPolicy(AutoscalePolicy):
    """Feed-forward from the load curve: provision for ``lead_epochs`` ahead.

    Reactive policies are always one warm-up late on a rising edge; this one
    multiplies the observed utilization by the forecast demand ratio so the
    scale-up is issued *before* the peak arrives.  With ``lead_epochs`` equal
    to the autoscaler's warm-up, capacity lands exactly when the load does.
    """

    target: float = 0.6
    lead_epochs: int = 2
    deadband: float = 0.05

    def __post_init__(self) -> None:
        if not 0 < self.target <= 1:
            raise WorkloadError("utilization target must be in (0, 1]")
        if self.lead_epochs < 1:
            raise WorkloadError("predictive policy needs lead_epochs >= 1")
        if not 0 <= self.deadband < self.target:
            raise WorkloadError("deadband must be non-negative and below the target")

    def desired_sites(self, observation: AutoscaleObservation,
                      forecast: Forecast) -> int:
        current = max(observation.demand_multiplier, 1e-9)
        expected = observation.mean_utilization * forecast(self.lead_epochs) / current
        if abs(expected - self.target) <= self.deadband:
            return observation.committed
        return math.ceil(observation.served_sites * expected / self.target)


@dataclass(frozen=True)
class TargetLatencyPolicy(AutoscalePolicy):
    """Drive the client-weighted P95 path delay toward a target.

    Queueing delay is convex in utilization, so the controller works in
    utilization space: from the observed (P95 delay, mean utilization) pair
    it infers the epoch's base (uncongestible) delay under the proxy's
    M/G/1 shape, inverts the same shape to find the utilization at which
    the P95 would sit exactly on target, and scales the serving-site count
    proportionally — the latency twin of
    :class:`TargetUtilizationPolicy`'s set-point inversion.
    ``utilization_ceiling`` refuses scale-downs that would push utilization
    into the saturated regime even when the latency headroom looks large
    (base-delay-dominated paths tolerate high utilization right up until
    they do not); ``deadband_fraction`` keeps on-target epochs from
    flapping.  Without latency telemetry (no model attached) the policy
    holds the committed fleet.
    """

    target_p95_seconds: float = 0.08
    deadband_fraction: float = 0.15
    utilization_ceiling: float = 0.9
    #: Service-time/arrival CVs and utilization clamp assumed by the
    #: inversion; match the timeline's
    #: :class:`repro.scale.latency.LatencyModel` (its ``service_cv`` /
    #: ``arrival_cv`` / ``max_utilization``) for an exact inverse — a
    #: mismatched clamp mis-splits the observed P95 into base vs queueing
    #: exactly in the saturated regime the policy exists to escape.
    service_cv: float = 1.0
    arrival_cv: float = 1.0
    max_utilization: float = 0.98
    #: Actuator deadband: corrections of at most this many sites are held.
    #: Ring membership itself moves the measured P95 (reassigned clients
    #: change their geometric base RTT), so single-site nudges can chase
    #: their own tail forever on small or noisy fleets.
    hold_sites: int = 1
    #: Fraction of the computed correction applied per action.  The
    #: utilization inversion ignores the *geometric* response of the P95 to
    #: membership (more sites = shorter base RTTs), so a full-gain
    #: correction overshoots and limit-cycles; half-gain converges on the
    #: same fixed point without the ringing.
    gain: float = 0.5

    def __post_init__(self) -> None:
        if self.target_p95_seconds <= 0:
            raise WorkloadError("the latency target must be positive")
        if not 0 <= self.deadband_fraction < 1:
            raise WorkloadError("the deadband must be a fraction in [0, 1)")
        if not 0 < self.utilization_ceiling < 1:
            raise WorkloadError("the utilization ceiling must be in (0, 1)")
        if self.service_cv < 0:
            raise WorkloadError("service-time CV must be non-negative")
        if self.arrival_cv < 0:
            raise WorkloadError("arrival-process CV must be non-negative")
        if not 0 < self.max_utilization < 1:
            raise WorkloadError("the utilization clamp must be in (0, 1)")
        if self.hold_sites < 0:
            raise WorkloadError("the actuator deadband must be non-negative")
        if not 0 < self.gain <= 1:
            raise WorkloadError("the controller gain must be in (0, 1]")

    @classmethod
    def for_model(cls, model, **kwargs) -> "TargetLatencyPolicy":
        """A policy calibrated to a :class:`repro.scale.latency.LatencyModel`.

        Copies the model's ``service_cv``, ``arrival_cv`` and
        ``max_utilization`` so the inversion is the exact inverse of the
        proxy that produced the telemetry; every other knob passes through
        ``kwargs``.
        """
        return cls(service_cv=model.service_cv,
                   arrival_cv=getattr(model, "arrival_cv", 1.0),
                   max_utilization=model.max_utilization, **kwargs)

    def _queue_factor(self, rho: float) -> float:
        from .latency import allen_cunneen_factor

        return float(allen_cunneen_factor(
            rho, self.arrival_cv, self.service_cv, self.max_utilization
        ))

    def desired_sites(self, observation: AutoscaleObservation,
                      forecast: Forecast) -> int:
        observed = observation.latency_p95_seconds
        if observed <= 0:
            return observation.committed  # no telemetry: hold, never guess
        rho = min(max(observation.mean_utilization, 0.0), self.max_utilization)
        # Split the observed P95 into base delay and queueing under the
        # proxy's shape: observed = base x (1 + qf(rho)) approximately,
        # since queueing delay scales with the same service times that set
        # the transmission part of the base.
        base = observed / (1.0 + self._queue_factor(rho))
        target = self.target_p95_seconds
        if abs(observed - target) <= target * self.deadband_fraction:
            return observation.committed
        if target <= base:
            # The target is below what geography alone costs: run at the
            # ceiling — more sites cannot shorten the speed of light.
            rho_star = self.utilization_ceiling
        else:
            # Invert qf(rho*) = target/base - 1 for the utilization that
            # lands the P95 on target, then cap at the ceiling.
            need = target / base - 1.0
            shape = (self.arrival_cv ** 2 + self.service_cv ** 2) / 2.0
            rho_star = min(need / (need + shape), self.utilization_ceiling)
        rho_star = max(rho_star, 1e-3)
        desired = math.ceil(observation.served_sites * rho / rho_star)
        correction = round((desired - observation.committed) * self.gain)
        if abs(correction) <= self.hold_sites:
            return observation.committed
        return observation.committed + correction


@dataclass(frozen=True)
class Autoscaler:
    """The frozen controller configuration a timeline runs with.

    ``min_sites``/``max_sites`` bound the *committed* fleet (in-service plus
    warming); ``warmup_epochs`` is the provisioning lag between a scale-up
    decision and the site joining the ring (0 = instant); ``cooldown_epochs``
    is how many epochs the controller holds still after acting, the standard
    guard against control-loop ringing.  ``max_sites=None`` means the whole
    fleet (every site, drained spares included) is available.
    """

    policy: AutoscalePolicy
    min_sites: int = 1
    max_sites: Optional[int] = None
    warmup_epochs: int = 1
    cooldown_epochs: int = 0

    def __post_init__(self) -> None:
        if self.min_sites < 1:
            raise WorkloadError("autoscaler needs min_sites >= 1")
        if self.max_sites is not None and self.max_sites < self.min_sites:
            raise WorkloadError("autoscaler needs max_sites >= min_sites")
        if self.warmup_epochs < 0 or self.cooldown_epochs < 0:
            raise WorkloadError("warm-up and cooldown must be non-negative")


class AutoscaleRun:
    """Mutable controller state for one timeline run.

    Owns the warming queue (site → epoch it becomes ready), the LIFO
    activation order used to pick drain victims, and the cooldown clock.
    Created by ``FluidTimeline.run()`` so that re-running a timeline starts
    from a clean controller, mirroring the fleet-health restore.
    """

    def __init__(self, spec: Autoscaler, fleet: NeutralizerFleet,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.spec = spec
        self.fleet = fleet
        #: Observation only: counts actions by kind, never steers them.
        self.telemetry = telemetry if telemetry is not None else NULL
        self.max_sites = min(spec.max_sites or fleet.n_sites, fleet.n_sites)
        self.min_sites = min(spec.min_sites, self.max_sites)
        #: site name -> epoch at which its warm-up completes.
        self.warming: Dict[str, int] = {}
        #: Active sites, oldest first; drains pop from the end (LIFO).
        self.active_order: List[str] = [
            site.name for site in fleet.sites if site.active
        ]
        self.cooldown_until = 0

    # -- bookkeeping -----------------------------------------------------------------

    @property
    def committed(self) -> int:
        """Sites being paid for: in service, plus warming ones."""
        return self._in_service_count() + len(self.warming)

    def _in_service_count(self) -> int:
        return self.fleet.n_in_service

    def _spare_candidates(self) -> List[str]:
        """Healthy, drained, not-yet-warming sites, in stable site order."""
        return [
            site.name for site in self.fleet.sites
            if site.healthy and not site.active and site.name not in self.warming
        ]

    # -- live reconfiguration --------------------------------------------------------

    def reconfigure(self, *, policy: Optional[AutoscalePolicy] = None,
                    min_sites: Optional[int] = None,
                    max_sites: Optional[int] = None) -> None:
        """Swap the policy and/or bounds mid-run (a committed reconfig event).

        The spec is rebuilt through :class:`Autoscaler`'s own validators, so
        an inconsistent swap (``min_sites > max_sites``) fails before any
        state changes; the effective bounds are re-clamped to the fleet like
        at construction.  Warming queue, activation order and the cooldown
        clock carry over — an operator retunes the controller, not the fleet.
        """
        updates: Dict[str, object] = {}
        if policy is not None:
            updates["policy"] = policy
        if min_sites is not None:
            updates["min_sites"] = min_sites
        if max_sites is not None:
            updates["max_sites"] = max_sites
        if not updates:
            return
        spec = replace(self.spec, **updates)
        self.spec = spec
        self.max_sites = min(spec.max_sites or self.fleet.n_sites,
                             self.fleet.n_sites)
        self.min_sites = min(spec.min_sites, self.max_sites)

    def note_external_activation(self, name: str) -> None:
        """Register a site an operator activated outside the controller."""
        self.warming.pop(name, None)
        if name not in self.active_order:
            self.active_order.append(name)

    def note_external_drain(self, name: str) -> None:
        """Register a site an operator drained outside the controller."""
        self.warming.pop(name, None)
        if name in self.active_order:
            self.active_order.remove(name)

    # -- the control step ------------------------------------------------------------

    def step(self, epoch: int, metrics: Optional[EpochMetrics],
             forecast: Forecast, ring_guard: Callable[[], None]) -> List[str]:
        """One controller tick at the top of ``epoch``.

        Completes due warm-ups, then (outside cooldown, once a previous
        epoch's :class:`EpochMetrics` exists) asks the policy for a
        committed-site target and commissions or drains toward it.
        ``ring_guard`` is called before the first ring-changing action so the
        timeline can lazily snapshot the ring for churn accounting.  Returns
        human-readable action labels for the epoch record.
        """
        actions: List[str] = []
        for name in [n for n, ready in self.warming.items() if epoch >= ready]:
            del self.warming[name]
            # A spare that failed while warming is still commissioned (it is
            # paid for and counts toward committed once repaired), but it
            # does not enter the ring, so no snapshot is needed and the
            # action log must not claim it went live.
            healthy = self.fleet.site(name).healthy
            if healthy:
                ring_guard()
            self.fleet.activate_site(name)
            self.active_order.append(name)
            actions.append(f"up {name} live" if healthy else f"up {name} failed")

        if metrics is None or epoch < self.cooldown_until:
            self._count_actions(actions)
            return actions

        observation = AutoscaleObservation(
            epoch=epoch,
            served_sites=metrics.served_sites,
            committed=self.committed,
            mean_utilization=metrics.mean_utilization,
            peak_utilization=metrics.peak_utilization,
            delivered_fraction=metrics.delivered_fraction,
            demand_multiplier=metrics.demand_multiplier,
            latency_p95_seconds=metrics.latency_p95_seconds,
            adoption_fraction=metrics.adoption_fraction,
        )
        desired = self.spec.policy.desired_sites(observation, forecast)
        desired = max(self.min_sites, min(desired, self.max_sites))
        committed = self.committed
        decided = len(actions)  # warm-up completions don't restart cooldown
        if desired > committed:
            self._scale_up(epoch, desired - committed, actions)
        elif desired < committed:
            self._scale_down(committed - desired, actions, ring_guard)
        if len(actions) > decided:
            self.cooldown_until = epoch + 1 + self.spec.cooldown_epochs
        self._count_actions(actions)
        return actions

    def _count_actions(self, actions: List[str]) -> None:
        telemetry = self.telemetry
        telemetry.inc("autoscale.actions", len(actions))
        for label in actions:
            if label.startswith("up "):
                telemetry.inc("autoscale.scale_ups")
            elif label.startswith("drain "):
                telemetry.inc("autoscale.drains")
            elif label.startswith("cancel "):
                telemetry.inc("autoscale.cancels")

    def _scale_up(self, epoch: int, count: int, actions: List[str]) -> None:
        for name in self._spare_candidates()[:count]:
            if self.spec.warmup_epochs == 0:
                self.fleet.activate_site(name)
                self.active_order.append(name)
                actions.append(f"up {name} live")
            else:
                self.warming[name] = epoch + self.spec.warmup_epochs
                actions.append(f"up {name} warming")

    def _scale_down(self, count: int, actions: List[str],
                    ring_guard: Callable[[], None]) -> None:
        # Cancelling a warm-up is free (the site never joined the ring), so
        # newest warm-ups go first; then drain serving sites LIFO, failed
        # ones first — they contribute nothing, so dropping them costs no
        # churn and frees budget for a healthy replacement.
        for name in list(reversed(self.warming))[:count]:
            del self.warming[name]
            actions.append(f"cancel {name}")
            count -= 1
        if count <= 0:
            return
        failed_active = [name for name in self.active_order
                         if not self.fleet.site(name).healthy]
        healthy_active = [name for name in self.active_order
                          if self.fleet.site(name).healthy]
        victims = (failed_active[::-1] + healthy_active[::-1])[:count]
        for name in victims:
            if self._in_service_count() <= 1 and self.fleet.site(name).in_service:
                break  # never drain the last serving site
            ring_guard()
            self.fleet.drain_site(name)
            self.active_order.remove(name)
            actions.append(f"drain {name}")


def elastic_fleet(
    population: ClientPopulation,
    max_sites: int,
    *,
    nominal_sites: int,
    at_utilization: float = 0.65,
    cost_model: Optional[CryptoCostModel] = None,
) -> NeutralizerFleet:
    """A homogeneous fleet with drained spares, sized for autoscaling.

    Each site's CPU and uplink budget is fixed so that ``nominal_sites``
    in-service sites carry the population's nominal busy-instant demand at
    ``at_utilization`` — the autoscaler's working range, provisioned relative
    to the population like :func:`repro.scale.catalogue.provisioned_fleet`.
    The first ``nominal_sites`` sites start active; the rest are drained
    spares the controller can commission.
    """
    from .catalogue import nominal_demand

    if max_sites <= 0 or not 0 < nominal_sites <= max_sites:
        raise WorkloadError("elastic fleet needs 0 < nominal_sites <= max_sites")
    if not 0 < at_utilization <= 1:
        raise WorkloadError("nominal operating utilization must be in (0, 1]")
    model = cost_model or CryptoCostModel.default()
    total_bps, total_pps = nominal_demand(population)
    per_site_uplink = total_bps / (nominal_sites * at_utilization)
    per_site_cores = total_pps * model.data_packet_cost_seconds / (
        nominal_sites * at_utilization
    )
    sites = [
        FleetSite(
            f"site{i:02d}",
            cores=max(per_site_cores, 1e-6),
            uplink_bps=max(per_site_uplink, 1.0),
            active=i < nominal_sites,
        )
        for i in range(max_sites)
    ]
    return NeutralizerFleet(sites, cost_model=model)
