"""Live campaign observability plane: event stream + streaming detectors.

This module is the *active* half of observability, layered on the passive
telemetry facade (:mod:`repro.scale.telemetry`).  It provides:

* :class:`EventLog` — an append-only, deterministic structured event
  stream.  Every event is a typed ``(seq, kind, payload)`` record with a
  schema version; the NDJSON export is canonical (sorted keys, fixed
  separators) so two logs are comparable byte-for-byte.  Payloads carry
  no wall-clock timestamps: like the rest of the telemetry plane, the
  stream observes the simulation but never participates in it, and the
  same campaign produces the same bytes on any machine and any worker
  count.
* An in-process pub/sub API — :meth:`EventLog.subscribe` — so a
  long-lived service can tail a live campaign without polling
  ``get_current_state()`` or touching the campaign's results.  The final
  ``campaign_complete`` event marks termination, so consumers never need
  a poll loop to detect the end of a run.
* Streaming health detectors over the event feed:
  :class:`BlackHoleDetector` (CUSUM change detection on per-site served
  capacity, naming the site and onset epoch of a persistent black hole),
  :class:`SloBreachDetector` (consecutive latency-SLO violations), and
  :class:`AutoscaleOscillationDetector` (rapid scale-direction flips).
  Detector verdicts are themselves events (``kind="detector"``) emitted
  into the same log, so they inherit the stream's determinism: identical
  input streams produce identical verdicts at identical positions.

Event kinds emitted by the simulator (all payload values are plain JSON
scalars/lists; see ``docs/observability.md`` for the full schema):

``campaign_started`` / ``campaign_complete``
    Campaign lifecycle, with ``experiment`` and ``units``.
``unit_started`` / ``unit_complete``
    Per-unit lifecycle with the unit index and a human-readable label.
``timeline_started`` / ``timeline_complete``
    Timeline lifecycle with the site roster and SLO parameters.
``epoch``
    One record per epoch: delivered fraction, latency percentile,
    per-site served capacity, and the commissioned-site mask.
``fleet_event`` / ``reconfig`` / ``autoscale`` / ``adversary``
    Scripted fleet events, control-plane transactions, autoscaler
    actions, and adversary moves, at the epoch they fire.
``detector``
    A detector verdict (never consumed by detectors themselves).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "AutoscaleOscillationDetector",
    "BlackHoleDetector",
    "DetectorSuite",
    "Event",
    "EventLog",
    "SloBreachDetector",
    "Subscription",
    "attach_detectors",
    "verdicts",
]

#: Version stamped into every exported event.  Bump when a payload field
#: changes meaning or type; additive fields do not require a bump.
EVENT_SCHEMA_VERSION = 1

#: Envelope keys an event payload may not shadow.
_RESERVED_KEYS = frozenset({"seq", "kind", "schema"})


class Event:
    """One immutable record in an :class:`EventLog`.

    ``seq`` is the event's position in its log (assigned at emit time),
    ``kind`` the event type, and ``payload`` the type-specific fields.
    """

    __slots__ = ("seq", "kind", "payload")

    def __init__(self, seq: int, kind: str, payload: Mapping[str, object]):
        self.seq = seq
        self.kind = kind
        self.payload = payload

    def to_json(self) -> str:
        """Canonical single-line JSON: sorted keys, no whitespace."""
        record = dict(self.payload)
        record["seq"] = self.seq
        record["kind"] = self.kind
        record["schema"] = EVENT_SCHEMA_VERSION
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(seq={self.seq}, kind={self.kind!r}, payload={dict(self.payload)!r})"


class Subscription:
    """Handle returned by :meth:`EventLog.subscribe`; call :meth:`cancel`
    (or use as a context manager) to stop receiving events."""

    __slots__ = ("_log", "_token")

    def __init__(self, log: "EventLog", token: int):
        self._log = log
        self._token = token

    @property
    def active(self) -> bool:
        return self._token in self._log._subscribers

    def cancel(self) -> None:
        self._log._subscribers.pop(self._token, None)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cancel()


class EventLog:
    """Append-only deterministic event stream with in-process pub/sub.

    Events are assigned consecutive ``seq`` numbers at emit time and
    delivered synchronously to subscribers in subscription order.  A
    subscriber may itself emit (detectors emit verdicts while observing),
    in which case the nested event is appended — and delivered — before
    the outer notification loop resumes; the *log* order is therefore
    always the canonical order, even when callback delivery nests.

    Determinism contract: payloads must be pure functions of the
    simulation state (no wall-clock, no PIDs, no memory addresses), so
    :meth:`to_ndjson` is byte-identical across runs, machines, and
    worker counts.
    """

    __slots__ = ("events", "_subscribers", "_next_token")

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._subscribers: Dict[int, Callable[[Event], None]] = {}
        self._next_token = 0

    # -- emission ------------------------------------------------------

    def emit(self, kind: str, **payload: object) -> Event:
        """Append an event and synchronously notify subscribers."""
        bad = _RESERVED_KEYS.intersection(payload)
        if bad:
            raise ValueError(f"payload may not shadow envelope keys: {sorted(bad)}")
        event = Event(len(self.events), kind, payload)
        self.events.append(event)
        for callback in list(self._subscribers.values()):
            callback(event)
        return event

    def extend_raw(self, batch: Iterable[Tuple[str, Mapping[str, object]]]) -> None:
        """Re-emit ``(kind, payload)`` pairs drained from a worker log.

        Sequence numbers are reassigned locally, so flushing worker
        batches in unit order reproduces the serial stream exactly.
        """
        for kind, payload in batch:
            self.emit(kind, **payload)

    def drain_raw(self) -> List[Tuple[str, Mapping[str, object]]]:
        """Return all events as ``(kind, payload)`` pairs and clear the log.

        Used on the worker side of the process pool: sequence numbers are
        parent-assigned, so only the kind/payload travel across.
        """
        batch = [(event.kind, event.payload) for event in self.events]
        self.events.clear()
        return batch

    # -- consumption ---------------------------------------------------

    def subscribe(self, callback: Callable[[Event], None], *,
                  replay: bool = False) -> Subscription:
        """Register ``callback`` for every future event.

        With ``replay=True`` the callback first receives all events
        already in the log, so late subscribers see the full stream.
        """
        if replay:
            for event in list(self.events):
                callback(event)
        token = self._next_token
        self._next_token += 1
        self._subscribers[token] = callback
        return Subscription(self, token)

    def tail(self, since_seq: int = -1) -> Tuple[Event, ...]:
        """Events strictly after ``since_seq``, in seq order.

        The cursor contract every paged/streaming consumer relies on
        (``/events?since_seq=N`` and SSE ``Last-Event-ID`` resume in
        :mod:`repro.scale.monitor`): pass the last ``seq`` you have
        consumed — ``-1`` (the default) for the whole stream — and
        receive every event with ``seq > since_seq``, exactly once, with
        no gaps and no duplicates.  This holds even when subscribers
        emit nested events mid-delivery, because ``seq`` is assigned in
        log order at emit time and the log is append-only; repeatedly
        calling ``tail(last_seen)`` and advancing the cursor to the last
        returned ``seq`` therefore reconstructs the exact canonical
        stream (the Hypothesis property test in
        ``tests/scale/test_obs.py`` pins this down).  A cursor at or
        past the last event yields an empty tuple, never an error.
        """
        start = since_seq + 1
        if start <= 0:
            return tuple(self.events)
        return tuple(self.events[start:])

    def to_ndjson(self) -> str:
        """The whole stream as canonical NDJSON (one event per line)."""
        return "".join(event.to_json() + "\n" for event in self.events)

    def write_ndjson(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_ndjson())

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)


def verdicts(log: EventLog) -> Tuple[Event, ...]:
    """All detector verdict events currently in ``log``."""
    return tuple(event for event in log if event.kind == "detector")


# ---------------------------------------------------------------------------
# Streaming detectors
# ---------------------------------------------------------------------------


class BlackHoleDetector:
    """CUSUM availability black-hole detector with per-site localization.

    Watches the per-site served-capacity series in ``epoch`` events.  A
    commissioned site's served capacity is its in-service flag times its
    capacity-degradation scale, so a healthy site reads 1.0, a degraded
    one reads its factor, and a black-holed (failed but commissioned)
    site reads 0.0.  Per site the detector keeps a one-sided CUSUM

        S <- max(0, S + (threshold - served))

    and emits one verdict per excursion the first epoch ``S`` reaches
    ``alarm``, naming the site, its index, and the onset epoch (the first
    epoch of the excursion).  With the defaults (``threshold = alarm =
    0.25``) a single fully-black-holed epoch alarms — outage downtimes
    can be one epoch long — while the catalogue's legitimate capacity
    degradations (factors >= 0.4) never do.

    False-positive contract: a verdict is emitted only for a
    *commissioned* site (drained and warming sites are masked out by the
    ``site_active`` field, so autoscaler scale-downs are never flagged)
    whose served capacity integrates at least ``alarm`` below
    ``threshold``.  On the scenario catalogue this fires exactly inside
    injected failure windows and nowhere else.

    When several sites alarm with the same onset epoch — the signature of
    a :class:`~repro.scale.stochastic.CorrelatedRegionalOutage` — a
    grouping verdict (``detector="black_hole_region"``) names the whole
    site block in addition to the per-site verdicts.
    """

    def __init__(self, *, threshold: float = 0.25, alarm: float = 0.25):
        self.threshold = threshold
        self.alarm = alarm
        self._sites: Tuple[str, ...] = ()
        self._cusum: List[float] = []
        self._onset: List[Optional[int]] = []
        self._alarmed: List[bool] = []

    def _reset(self, sites: Sequence[str]) -> None:
        self._sites = tuple(sites)
        self._cusum = [0.0] * len(self._sites)
        self._onset = [None] * len(self._sites)
        self._alarmed = [False] * len(self._sites)

    def observe(self, event: Event, log: EventLog) -> None:
        if event.kind == "timeline_started":
            self._reset(event.payload.get("sites", ()))  # type: ignore[arg-type]
            return
        if event.kind != "epoch" or not self._sites:
            return
        payload = event.payload
        served = payload.get("site_served")
        active = payload.get("site_active")
        if served is None or active is None:
            return
        epoch = payload["epoch"]
        new_alarms: List[Tuple[int, str, int]] = []
        for index, name in enumerate(self._sites):
            if not active[index]:
                # Not commissioned to serve (drained or still warming):
                # no expectation of capacity, so no excursion can run.
                self._cusum[index] = 0.0
                self._onset[index] = None
                self._alarmed[index] = False
                continue
            score = max(0.0, self._cusum[index] + (self.threshold - served[index]))
            if score > 0.0 and self._cusum[index] == 0.0:
                self._onset[index] = epoch
            if score == 0.0:
                self._onset[index] = None
                self._alarmed[index] = False
            # Cap at the alarm level: growing further adds no information
            # and would delay re-arming after recovery, hiding a second
            # outage that follows a long one closely.
            self._cusum[index] = min(score, self.alarm)
            if score >= self.alarm and not self._alarmed[index]:
                self._alarmed[index] = True
                onset = self._onset[index]
                onset = epoch if onset is None else onset
                new_alarms.append((index, name, onset))
                log.emit(
                    "detector",
                    detector="black_hole",
                    site=name,
                    site_index=index,
                    onset_epoch=onset,
                    epoch=epoch,
                    served=float(served[index]),
                )
        if len(new_alarms) >= 2:
            onsets = {onset for _, _, onset in new_alarms}
            if len(onsets) == 1:
                log.emit(
                    "detector",
                    detector="black_hole_region",
                    sites=[name for _, name, _ in new_alarms],
                    site_indices=[index for index, _, _ in new_alarms],
                    onset_epoch=new_alarms[0][2],
                    epoch=epoch,
                )


class SloBreachDetector:
    """Latency-SLO breach detector over the epoch latency percentile.

    Reads the SLO target from ``timeline_started`` and alarms once per
    breach episode after ``min_epochs`` *consecutive* epochs with
    ``latency_p95_seconds`` above the SLO — a single-epoch spike is not
    a breach.  The verdict names the onset epoch (first epoch of the
    episode); a below-SLO epoch closes the episode and re-arms the
    detector.
    """

    def __init__(self, *, min_epochs: int = 3):
        self.min_epochs = min_epochs
        self._slo: Optional[float] = None
        self._streak = 0
        self._onset: Optional[int] = None

    def observe(self, event: Event, log: EventLog) -> None:
        if event.kind == "timeline_started":
            self._slo = event.payload.get("latency_slo_seconds")  # type: ignore[assignment]
            self._streak = 0
            self._onset = None
            return
        if event.kind != "epoch" or self._slo is None:
            return
        p95 = event.payload.get("latency_p95_seconds")
        if p95 is None:
            return
        if p95 > self._slo:
            if self._streak == 0:
                self._onset = event.payload["epoch"]  # type: ignore[assignment]
            self._streak += 1
            if self._streak == self.min_epochs:
                log.emit(
                    "detector",
                    detector="slo_breach",
                    onset_epoch=self._onset,
                    epoch=event.payload["epoch"],
                    latency_p95_seconds=float(p95),
                    latency_slo_seconds=float(self._slo),
                    consecutive_epochs=self._streak,
                )
        else:
            self._streak = 0
            self._onset = None


class AutoscaleOscillationDetector:
    """Flags rapid scale-direction flip-flopping by the autoscaler.

    Each ``autoscale`` event's actions are reduced to a direction: +1 if
    the epoch only scales up (``up ...``), -1 if it only shrinks
    (``drain ...`` / ``cancel ...``), 0 if mixed.  A *flip* is an epoch
    whose direction opposes the previous non-zero direction.  When
    ``min_flips`` flips land within a ``window``-epoch sliding window,
    one oscillation verdict fires and the detector cools down until the
    window has fully drained, so a sustained oscillation yields one
    verdict per window rather than one per flip.
    """

    def __init__(self, *, window: int = 12, min_flips: int = 3):
        self.window = window
        self.min_flips = min_flips
        self._last_direction = 0
        self._flips: deque = deque()
        self._quiet_until = -1

    def observe(self, event: Event, log: EventLog) -> None:
        if event.kind == "timeline_started":
            self._last_direction = 0
            self._flips.clear()
            self._quiet_until = -1
            return
        if event.kind != "autoscale":
            return
        actions = event.payload.get("actions", ())
        epoch = event.payload["epoch"]
        ups = sum(1 for action in actions if action.startswith("up "))
        downs = sum(1 for action in actions
                    if action.startswith(("drain ", "cancel ")))
        direction = (ups > 0) - (downs > 0)
        if direction == 0:
            return
        while self._flips and self._flips[0] <= epoch - self.window:
            self._flips.popleft()
        if self._last_direction and direction != self._last_direction:
            self._flips.append(epoch)
        self._last_direction = direction
        if len(self._flips) >= self.min_flips and epoch >= self._quiet_until:
            log.emit(
                "detector",
                detector="autoscale_oscillation",
                onset_epoch=int(self._flips[0]),
                epoch=epoch,
                flips=len(self._flips),
                window_epochs=self.window,
            )
            self._quiet_until = epoch + self.window


class DetectorSuite:
    """A bundle of detectors attached to one :class:`EventLog`.

    Detectors receive every event except their own verdicts (``kind ==
    "detector"`` is filtered here, so a detector can never feed back into
    itself or its peers) and emit verdicts into the same log.
    """

    def __init__(self, detectors: Optional[Sequence[object]] = None):
        if detectors is None:
            detectors = (
                BlackHoleDetector(),
                SloBreachDetector(),
                AutoscaleOscillationDetector(),
            )
        self.detectors = tuple(detectors)
        self._subscriptions: Tuple[Subscription, ...] = ()

    def attach(self, log: EventLog) -> "DetectorSuite":
        subscriptions = []
        for detector in self.detectors:
            def callback(event: Event, detector=detector) -> None:
                if event.kind != "detector":
                    detector.observe(event, log)
            subscriptions.append(log.subscribe(callback))
        self._subscriptions = tuple(subscriptions)
        return self

    def detach(self) -> None:
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions = ()


def attach_detectors(log: EventLog,
                     detectors: Optional[Sequence[object]] = None) -> DetectorSuite:
    """Attach the default (or a custom) detector suite to ``log``."""
    return DetectorSuite(detectors).attach(log)
