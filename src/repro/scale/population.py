"""Client populations as vectorized aggregate demand.

This is the demand side of the paper's §4 scaling argument ("an ISP with
millions of subscribers"): a population is millions of clients, each
belonging to one *demand class*
(VoIP, web, video — rates and packet sizes taken from the corresponding
:mod:`repro.apps` models plus the neutralizer's wire overhead) and one access
*region* (an aggregate of access links sharing a regional uplink).  Nothing
is simulated per client; the population is three numpy arrays — class index,
region index, ring position — drawn deterministically from a seed, and every
downstream consumer (fleet assignment, demand aggregation) is a vectorized
reduction over them.  A million clients fit in a few megabytes and aggregate
in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ..apps.voip import DEFAULT_PACKET_INTERVAL, DEFAULT_PAYLOAD_BYTES
from ..core.shim import expected_data_overhead_bytes
from ..exceptions import WorkloadError
from ..packet.headers import IPV4_HEADER_LEN, UDP_HEADER_LEN
from ..units import BITS_PER_BYTE

#: Bytes the neutralized data shim adds on the wire, straight from the shim
#: layout so the fluid model can never drift from the packet-level one.
SHIM_DATA_OVERHEAD_BYTES = expected_data_overhead_bytes()


def neutralized_wire_bytes(payload_bytes: int) -> int:
    """On-the-wire size of a neutralized UDP payload of ``payload_bytes``."""
    return IPV4_HEADER_LEN + SHIM_DATA_OVERHEAD_BYTES + UDP_HEADER_LEN + payload_bytes


@dataclass(frozen=True)
class DemandClass:
    """Aggregate traffic description of one application class.

    ``packets_per_second`` and ``packet_bytes`` describe one *active* client;
    ``duty_cycle`` is the fraction of subscribed clients active at the busy
    instant, so a class's fluid demand is ``clients × duty × rate``.

    ``elastic`` marks a congestion-controlled (TCP-like) class: its rate is
    the *peak* one client takes when uncongested, and under congestion the
    class backs off to the alpha-fair share (``alpha`` ~2 is TCP-like, 1 is
    proportional fairness, ``math.inf`` is max-min) instead of having its
    fixed offered rate shed max-min by the domain.
    """

    name: str
    packets_per_second: float
    packet_bytes: int
    duty_cycle: float = 1.0
    #: Fresh key setups per client-hour (sessions, refreshes, mobility).
    key_setups_per_hour: float = 4.0
    #: Whether the class adapts to congestion (TCP-like) or offers a fixed
    #: rate (CBR media).
    elastic: bool = False
    #: Fairness parameter of an elastic class's congestion response.
    alpha: float = 2.0

    def __post_init__(self) -> None:
        if self.packets_per_second <= 0 or self.packet_bytes <= 0:
            raise WorkloadError("demand class rate and packet size must be positive")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise WorkloadError("duty cycle must be in (0, 1]")
        if self.alpha <= 0:
            raise WorkloadError("alpha must be positive")

    @property
    def bits_per_second(self) -> float:
        """Wire bits per second of one active client."""
        return self.packets_per_second * self.packet_bytes * BITS_PER_BYTE

    @property
    def mean_packets_per_second(self) -> float:
        """Busy-instant mean rate of one subscribed client (duty applied)."""
        return self.packets_per_second * self.duty_cycle


def voip_class() -> DemandClass:
    """G.711-like VoIP: the codec of :mod:`repro.apps.voip`, always on-call."""
    return DemandClass(
        name="voip",
        packets_per_second=1.0 / DEFAULT_PACKET_INTERVAL,
        packet_bytes=neutralized_wire_bytes(DEFAULT_PAYLOAD_BYTES),
        duty_cycle=0.05,
        key_setups_per_hour=6.0,
    )


def web_class() -> DemandClass:
    """Bursty page fetches: the paced 1200-byte responses of :mod:`repro.apps.web`."""
    return DemandClass(
        name="web",
        packets_per_second=40.0,
        packet_bytes=neutralized_wire_bytes(1200),
        duty_cycle=0.08,
        key_setups_per_hour=12.0,
    )


def video_class() -> DemandClass:
    """CBR streaming: the 2 Mb/s, 1200-byte segments of :mod:`repro.apps.video`."""
    segment_bytes = 1200
    bitrate_bps = 2_000_000.0
    return DemandClass(
        name="video",
        packets_per_second=bitrate_bps / (segment_bytes * BITS_PER_BYTE),
        packet_bytes=neutralized_wire_bytes(segment_bytes),
        duty_cycle=0.10,
        key_setups_per_hour=2.0,
    )


@dataclass(frozen=True)
class PopulationMix:
    """Named demand classes plus the fraction of clients subscribed to each."""

    classes: Tuple[DemandClass, ...]
    fractions: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.classes) != len(self.fractions) or not self.classes:
            raise WorkloadError("mix needs one fraction per class")
        total = sum(self.fractions)
        if abs(total - 1.0) > 1e-9 or min(self.fractions) < 0:
            raise WorkloadError(f"mix fractions must be non-negative and sum to 1, got {total}")

    @property
    def names(self) -> List[str]:
        """Class names in mix order."""
        return [cls.name for cls in self.classes]


def default_mix() -> PopulationMix:
    """The default subscriber mix: mostly web, a video tail, some VoIP."""
    return PopulationMix(
        classes=(voip_class(), web_class(), video_class()),
        fractions=(0.2, 0.5, 0.3),
    )


def elastic_mix(*, web_alpha: float = 2.0, video_alpha: float = 2.0) -> PopulationMix:
    """The default mix with TCP-like web and video, CBR VoIP kept inelastic.

    The realistic split: page fetches and streaming ride congestion control
    (their rates are peaks they back off from), while the VoIP codec keeps
    emitting at its fixed rate and the domain sheds its excess max-min.
    """
    return PopulationMix(
        classes=(
            voip_class(),
            replace(web_class(), elastic=True, alpha=web_alpha),
            replace(video_class(), elastic=True, alpha=video_alpha),
        ),
        fractions=(0.2, 0.5, 0.3),
    )


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """The splitmix64 mixer, vectorized: uniform uint64 ring positions."""
    z = (values + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class ClientPopulation:
    """A seeded population of clients, materialized as numpy arrays."""

    def __init__(
        self,
        n_clients: int,
        *,
        mix: Optional[PopulationMix] = None,
        regions: int = 8,
        seed: int = 2006,
    ) -> None:
        if n_clients <= 0:
            raise WorkloadError("population must have at least one client")
        if regions <= 0:
            raise WorkloadError("population needs at least one access region")
        self.n_clients = int(n_clients)
        self.mix = mix or default_mix()
        self.regions = int(regions)
        self.seed = int(seed)

        rng = np.random.default_rng(self.seed)
        self.class_index = rng.choice(
            len(self.mix.classes), size=self.n_clients, p=np.asarray(self.mix.fractions)
        ).astype(np.int32)
        # Regions are deliberately uneven (metro vs rural): weights 1/(k+1).
        weights = 1.0 / (np.arange(self.regions, dtype=np.float64) + 1.0)
        self.region_index = rng.choice(
            self.regions, size=self.n_clients, p=weights / weights.sum()
        ).astype(np.int32)
        # Ring positions come from client identity, not the rng stream, so a
        # client keeps its site when the population is re-drawn larger.
        identities = np.arange(self.n_clients, dtype=np.uint64) + np.uint64(self.seed) * np.uint64(
            0x1000003
        )
        self.ring_positions = _splitmix64(identities)
        self._ring_sorted: Optional[Tuple[np.ndarray, ...]] = None

    @classmethod
    def from_arrays(
        cls,
        *,
        mix: Optional[PopulationMix],
        regions: int,
        seed: int,
        class_index: np.ndarray,
        region_index: np.ndarray,
        ring_positions: np.ndarray,
        ring_sorted: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray,
                                    np.ndarray]] = None,
    ) -> "ClientPopulation":
        """A population wrapping already-materialized arrays, no RNG draw.

        The parallel campaign executor maps one population's arrays into
        shared memory and every worker process reconstructs its view through
        here — same clients, same ring positions, zero per-worker drawing or
        copying.  ``ring_sorted`` optionally pre-seeds the sorted-order cache
        so workers also skip the O(n log n) sort.  The arrays are adopted
        as-is (typically read-only shared-memory views); callers must pass
        the exact arrays a seeded :class:`ClientPopulation` build produced,
        or downstream determinism guarantees are off.
        """
        if class_index.shape != region_index.shape or \
                class_index.shape != ring_positions.shape:
            raise WorkloadError("population arrays must have matching shapes")
        population = cls.__new__(cls)
        population.n_clients = int(class_index.size)
        population.mix = mix or default_mix()
        population.regions = int(regions)
        population.seed = int(seed)
        population.class_index = class_index
        population.region_index = region_index
        population.ring_positions = ring_positions
        population._ring_sorted = ring_sorted
        return population

    # -- aggregation -----------------------------------------------------------------

    @property
    def n_classes(self) -> int:
        """Number of demand classes in the mix."""
        return len(self.mix.classes)

    def class_counts(self) -> np.ndarray:
        """Subscribed clients per demand class."""
        return np.bincount(self.class_index, minlength=self.n_classes)

    def region_counts(self) -> np.ndarray:
        """Subscribed clients per access region."""
        return np.bincount(self.region_index, minlength=self.regions)

    def group_counts(self, site_index: np.ndarray, n_sites: int) -> np.ndarray:
        """Client counts per (region, class, site) given a site assignment.

        Returns a dense ``(regions, classes, sites)`` array computed by one
        ``bincount`` over a fused index — the only per-client pass needed to
        build a fluid problem.
        """
        if site_index.shape != (self.n_clients,):
            raise WorkloadError("site assignment must cover every client")
        fused = (
            (self.region_index.astype(np.int64) * self.n_classes + self.class_index)
            * n_sites
            + site_index.astype(np.int64)
        )
        counts = np.bincount(fused, minlength=self.regions * self.n_classes * n_sites)
        return counts.reshape(self.regions, self.n_classes, n_sites)

    def ring_sorted(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The population reordered by ring position, cached after first use.

        Returns ``(positions, region_index, class_index, region_class)``, all
        in ascending ring-position order; ``region_class`` is the fused
        ``region * n_classes + class`` index used for group counting.  With
        clients sorted this way, a consistent-hash assignment is a *segment
        structure* — ``searchsorted`` of the ring's points into the client
        positions — so fleet membership changes cost O(ring points + moved
        clients) instead of a full O(n_clients) pass
        (:meth:`repro.scale.fleet.NeutralizerFleet.assignment_segments`).
        The one O(n log n) sort is paid once and shared by every scenario,
        timeline, and Monte-Carlo replica built on this population.
        """
        if self._ring_sorted is None:
            order = np.argsort(self.ring_positions, kind="stable")
            region_sorted = self.region_index[order].astype(np.int64)
            class_sorted = self.class_index[order].astype(np.int64)
            self._ring_sorted = (
                self.ring_positions[order],
                region_sorted,
                class_sorted,
                region_sorted * self.n_classes + class_sorted,
            )
        return self._ring_sorted

    def demand_pps_per_client(self) -> np.ndarray:
        """Busy-instant packets/s of one subscribed client, per class."""
        return np.array([cls.mean_packets_per_second for cls in self.mix.classes])

    def packet_bits(self) -> np.ndarray:
        """Wire bits per packet, per class."""
        return np.array(
            [cls.packet_bytes * BITS_PER_BYTE for cls in self.mix.classes], dtype=np.float64
        )

    def key_setup_rate_per_client(self) -> np.ndarray:
        """Key-setup requests per second of one subscribed client, per class."""
        return np.array([cls.key_setups_per_hour / 3600.0 for cls in self.mix.classes])

    def class_elastic(self) -> np.ndarray:
        """Per-class elasticity flags (True = TCP-like congestion response)."""
        return np.array([cls.elastic for cls in self.mix.classes], dtype=bool)

    def class_alpha(self) -> np.ndarray:
        """Per-class alpha-fairness parameters."""
        return np.array([cls.alpha for cls in self.mix.classes], dtype=np.float64)

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        per_class = ", ".join(
            f"{name}={count}" for name, count in zip(self.mix.names, self.class_counts())
        )
        return (
            f"population of {self.n_clients} clients over {self.regions} regions "
            f"(seed {self.seed}): {per_class}"
        )
