"""Stub resolver: the client side of the bootstrap lookup.

A :class:`StubResolver` lives on an end host.  It can talk to its access ISP's
default resolver in cleartext (the vulnerable configuration) or to a
configured third-party resolver over the encrypted transport (the §3.1
recommendation).  Lookups are asynchronous — the simulator is event driven —
and deliver either a raw record list or an assembled
:class:`repro.dns.records.BootstrapInfo` to the caller's callback.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..crypto.randomness import DEFAULT_SOURCE, RandomSource
from ..crypto.rsa import RsaPublicKey
from ..exceptions import DnsError
from ..netsim.node import Host
from ..packet.addresses import IPv4Address
from ..packet.builder import udp_packet
from ..packet.packet import Packet
from .messages import DNS_PORT, DnsQuery, DnsResponse
from .records import BootstrapInfo, RecordType, ResourceRecord
from .secure import SecureQueryState, decrypt_response, encrypt_query

#: Default client-side UDP port for receiving responses.
DEFAULT_CLIENT_PORT = 35353

#: Callback receiving (records, error-string-or-None).
LookupCallback = Callable[[List[ResourceRecord], Optional[str]], None]
#: Callback receiving (BootstrapInfo, error-string-or-None).
BootstrapCallback = Callable[[Optional[BootstrapInfo], Optional[str]], None]


@dataclass
class _PendingQuery:
    name: str
    callback: LookupCallback
    secure_state: Optional[SecureQueryState] = None
    timeout_event: Optional[object] = None
    sent_at: float = 0.0


@dataclass
class ResolverConfig:
    """Where the stub sends queries and how."""

    address: IPv4Address
    port: int = DNS_PORT
    #: Public key of the resolver; required when ``use_secure_transport``.
    public_key: Optional[RsaPublicKey] = None
    use_secure_transport: bool = False

    def __post_init__(self) -> None:
        if self.use_secure_transport and self.public_key is None:
            raise DnsError("secure transport requires the resolver's public key")


class StubResolver:
    """Client-side resolver attached to one host."""

    def __init__(
        self,
        host: Host,
        config: ResolverConfig,
        *,
        client_port: int = DEFAULT_CLIENT_PORT,
        timeout_seconds: float = 2.0,
        rng: Optional[RandomSource] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.host = host
        self.config = config
        self.client_port = client_port
        self.timeout_seconds = timeout_seconds
        self._rng = rng or DEFAULT_SOURCE
        self._backend = backend
        self._query_ids = itertools.count(1)
        self._pending: Dict[int, _PendingQuery] = {}
        self.lookups_sent = 0
        self.responses_received = 0
        self.timeouts = 0
        self.latencies: List[float] = []
        host.register_port_handler(client_port, self._handle_response)

    # -- public API -----------------------------------------------------------------

    def lookup(
        self, name: str, callback: LookupCallback, rtype: Optional[RecordType] = None
    ) -> int:
        """Send a query for ``name``; the callback fires on response or timeout."""
        query_id = next(self._query_ids)
        query = DnsQuery(query_id=query_id, name=name, rtype=rtype)
        payload = query.pack()
        secure_state = None
        if self.config.use_secure_transport:
            assert self.config.public_key is not None
            payload, secure_state = encrypt_query(
                self.config.public_key, payload, self._rng, self._backend
            )
        pending = _PendingQuery(
            name=name,
            callback=callback,
            secure_state=secure_state,
            sent_at=self.host.sim.now,
        )
        pending.timeout_event = self.host.sim.schedule(
            self.timeout_seconds, self._handle_timeout, query_id
        )
        self._pending[query_id] = pending
        packet = udp_packet(
            self.host.address,
            self.config.address,
            payload,
            source_port=self.client_port,
            destination_port=self.config.port,
        )
        self.lookups_sent += 1
        self.host.send(packet)
        return query_id

    def lookup_bootstrap(self, name: str, callback: BootstrapCallback) -> int:
        """Query all bootstrap records for ``name`` and assemble a BootstrapInfo."""

        def on_records(records: List[ResourceRecord], error: Optional[str]) -> None:
            if error is not None:
                callback(None, error)
                return
            info = BootstrapInfo.from_records(name, records)
            if not info.is_complete:
                callback(None, f"no address records for {name!r}")
                return
            callback(info, None)

        return self.lookup(name, on_records)

    @property
    def pending_count(self) -> int:
        """Number of queries still awaiting an answer."""
        return len(self._pending)

    @property
    def mean_latency(self) -> float:
        """Mean lookup latency over completed queries (seconds)."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    # -- internals ---------------------------------------------------------------------

    def _handle_response(self, packet: Packet, host: Host) -> None:
        payload = packet.payload
        # Try to match the response to a pending query; secure responses need
        # the per-query state to decrypt before the id is visible, so probe.
        for query_id, pending in list(self._pending.items()):
            try:
                if pending.secure_state is not None:
                    plaintext = decrypt_response(pending.secure_state, payload, self._backend)
                else:
                    plaintext = payload
                response = DnsResponse.unpack(plaintext)
            except DnsError:
                continue
            if response.query_id != query_id:
                continue
            self._complete(query_id, pending, response)
            return

    def _complete(self, query_id: int, pending: _PendingQuery, response: DnsResponse) -> None:
        del self._pending[query_id]
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        self.responses_received += 1
        self.latencies.append(self.host.sim.now - pending.sent_at)
        if response.is_ok:
            pending.callback(list(response.records), None)
        else:
            pending.callback([], f"rcode {response.rcode} for {pending.name!r}")

    def _handle_timeout(self, query_id: int) -> None:
        pending = self._pending.pop(query_id, None)
        if pending is None:
            return
        self.timeouts += 1
        pending.callback([], f"timeout resolving {pending.name!r}")
